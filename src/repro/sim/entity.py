"""Simulation entities and protocols.

An :class:`Entity` is anything that lives on the simulation timeline and can
schedule callbacks (a node, a heralding station, a channel).  A
:class:`Protocol` is an entity with an explicit ``start``/``stop`` lifecycle —
the MHP and EGP are protocols.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventHandle, SimulationEngine


class Entity:
    """Base class for objects that participate in a simulation.

    Parameters
    ----------
    engine:
        The simulation engine this entity schedules events on.
    name:
        Human-readable identifier used in logs and error messages.
    """

    def __init__(self, engine: SimulationEngine, name: str = "") -> None:
        self._engine = engine
        self.name = name or self.__class__.__name__

    @property
    def engine(self) -> SimulationEngine:
        """The simulation engine this entity is attached to."""
        return self._engine

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        # Read the attribute, not the engine property: this sits on the
        # per-event hot path (hundreds of thousands of reads per simulated
        # minute).
        return self._engine._now

    def call_at(self, time: float, callback: Callable[..., None],
                name: str = "", args: tuple = ()) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        return self._engine.schedule_at(time, callback,
                                        name=name or self.name, args=args)

    def call_after(self, delay: float, callback: Callable[..., None],
                   name: str = "", args: tuple = ()) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        return self._engine.schedule_after(delay, callback,
                                           name=name or self.name, args=args)

    def call_now(self, callback: Callable[..., None],
                 name: str = "", args: tuple = ()) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time."""
        return self._engine.schedule_now(callback, name=name or self.name,
                                         args=args)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"<{self.__class__.__name__} {self.name!r} t={self.now:.6f}>"


class Protocol(Entity):
    """An entity with a start/stop lifecycle.

    Subclasses override :meth:`on_start` and :meth:`on_stop`.
    """

    def __init__(self, engine: SimulationEngine, name: str = "") -> None:
        super().__init__(engine, name=name)
        self._started = False

    @property
    def is_running(self) -> bool:
        """Whether the protocol has been started and not stopped."""
        return self._started

    def start(self) -> None:
        """Start the protocol.  Idempotent."""
        if self._started:
            return
        self._started = True
        self.on_start()

    def stop(self) -> None:
        """Stop the protocol.  Idempotent."""
        if not self._started:
            return
        self._started = False
        self.on_stop()

    def on_start(self) -> None:
        """Hook called when the protocol starts."""

    def on_stop(self) -> None:
        """Hook called when the protocol stops."""
