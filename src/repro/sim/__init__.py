"""Discrete-event simulation substrate.

This package provides the simulation engine that every other subsystem of the
reproduction runs on top of.  It plays the role of NetSquid/DynAA in the
original paper: a timestamped event queue, simulation entities that schedule
callbacks, and classical/quantum channels with configurable delay and loss
models.

Public API
----------
``SimulationEngine``
    The event loop.  Create one per simulation run.
``Entity`` / ``Protocol``
    Base classes for things that live on the timeline.
``ClassicalChannel`` / ``QuantumChannel``
    Point-to-point connections with delay and loss.
``Clock``
    Periodic trigger used for MHP cycles.
"""

from repro.sim.engine import (
    Event,
    EventHandle,
    PeriodicHandle,
    ReusableTimer,
    SimulationEngine,
    SimulationError,
)
from repro.sim.entity import Entity, Protocol
from repro.sim.channel import ClassicalChannel, QuantumChannel, ChannelDelivery
from repro.sim.clock import Clock
from repro.sim.queues import (
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
    LadderEventQueue,
    available_engines,
    default_engine_name,
    make_event_queue,
    resolve_engine_name,
)

__all__ = [
    "SimulationEngine",
    "SimulationError",
    "Event",
    "EventHandle",
    "PeriodicHandle",
    "ReusableTimer",
    "Entity",
    "Protocol",
    "ClassicalChannel",
    "QuantumChannel",
    "ChannelDelivery",
    "Clock",
    "EventQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "LadderEventQueue",
    "available_engines",
    "default_engine_name",
    "make_event_queue",
    "resolve_engine_name",
]
