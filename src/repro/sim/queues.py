"""Pluggable event-queue implementations for the simulation engine.

The engine's job is to pop timestamped events in ``(time, sequence)`` order;
*how* the pending events are stored is a pluggable strategy behind the
:class:`EventQueue` contract, mirroring the physics-backend registry
(``repro.backends``).  Three implementations are provided:

``"heap"`` (default)
    The reference binary heap (``heapq``) with lazy cancellation and global
    compaction — exactly the seed engine's behaviour.
``"calendar"``
    A calendar queue (Brown 1988) tuned to the MHP workload: the dominant
    GEN/REPLY/poll pattern schedules near-future events at a regular cycle
    cadence, which a bucket-per-time-slice calendar serves with O(1)
    amortised enqueue/dequeue.  Bucket width and count recalibrate
    automatically from the observed inter-event gaps, and far-future timers
    (request timeouts, EXPIRE retries) wait on an overflow ladder that is
    promoted into the calendar year by year.
``"ladder"``
    A ladder/tie-bucket hybrid: events sharing an exact timestamp are
    appended to one FIFO rung (same-timestamp events are almost always
    scheduled back-to-back, so the append is O(1) and already in sequence
    order), and a small lazy heap orders the rung head times.  Cancelling
    every event of a rung drops the whole rung in O(1).

Every implementation is **order-equivalent**: for the same sequence of
``push``/``pop``/``note_cancelled`` operations they yield the same events in
the same total ``(time, sequence)`` order, which the engine-equivalence
tests pin event-for-event.

Selection mirrors the backend plumbing: every entry point accepts an engine
name or :class:`EventQueue` instance, and when none is given the
``REPRO_ENGINE`` environment variable decides, falling back to ``"heap"``.
Unlike physics backends, queue instances are *stateful* and therefore never
shared: :func:`make_event_queue` returns a fresh instance per call.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from bisect import insort
from heapq import heapify, heappop, heappush
from math import floor, isfinite
from typing import Callable, Optional, Union

#: Environment variable consulted when no engine is passed explicitly.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Name of the reference event-queue implementation.
DEFAULT_ENGINE = "heap"


class Event:
    """A single scheduled callback (slim ``__slots__`` record).

    Events order by ``(time, sequence)`` only — the sequence is unique per
    engine, so the order is total and simultaneous events run in the order
    they were scheduled.  The event object doubles as the cancellation
    handle returned by the ``schedule_*`` methods: it stays valid after the
    event fired (cancel becomes a no-op) and after ``engine.reset()``
    (handles from before a reset are inert, see
    :meth:`SimulationEngine.reset`).
    """

    __slots__ = ("time", "sequence", "callback", "args", "name",
                 "cancelled", "popped", "engine")

    def __init__(self, time: float, sequence: int,
                 callback: Callable[..., None], args: tuple = (),
                 name: str = "", engine=None) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.name = name
        #: Set by :meth:`cancel`; a cancelled event is skipped by the engine.
        self.cancelled = False
        #: True once the event has left the queue (executed, skipped or
        #: discarded); cancelling it afterwards must not touch the queue
        #: accounting.
        self.popped = True
        self.engine = engine

    def __lt__(self, other: "Event") -> bool:
        # Hand-rolled (time, sequence) comparison: the dataclass-generated
        # __lt__ built two tuples per call, and this runs millions of times
        # per simulated minute.
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    @property
    def is_pending(self) -> bool:
        """Whether the event is still queued and will fire."""
        return not self.popped and not self.cancelled

    def cancel(self) -> None:
        """Cancel the event.  A cancelled event is skipped by the engine.

        Cancelling an event that already fired, was discarded, or belongs to
        a previous engine epoch (before a ``reset()``) is a harmless no-op
        for the queue accounting.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if not self.popped and self.engine is not None:
            self.engine._note_cancelled(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        state = ("cancelled" if self.cancelled
                 else "popped" if self.popped else "pending")
        return (f"<Event t={self.time!r} seq={self.sequence} "
                f"{self.name!r} {state}>")


#: Backwards-compatible alias: the slim event *is* its own handle.
EventHandle = Event


class EventQueue(ABC):
    """Storage strategy for the engine's pending events.

    The contract is intentionally small: ``push`` accepts an event whose
    ``popped`` flag the queue clears, ``peek``/``pop`` return the next
    **live** event in ``(time, sequence)`` order (discarding cancelled
    residents as they surface, marking them ``popped``), and
    ``note_cancelled`` lets the implementation keep cancelled events from
    accumulating — bucket-locally where the structure allows it.

    ``len(queue)`` counts *resident* events (live plus not-yet-discarded
    cancelled ones); :attr:`live_count` counts only live events and is what
    the engine reports as ``pending_events``.
    """

    #: Registry name of the implementation.
    name: str = "base"

    @abstractmethod
    def push(self, event: Event) -> None:
        """Insert ``event`` (the queue clears ``event.popped``)."""

    @abstractmethod
    def peek(self) -> Optional[Event]:
        """The next live event, or ``None``; cancelled residents surfacing
        at the head are discarded (marked ``popped``)."""

    @abstractmethod
    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None``."""

    def pop_due(self, until: Optional[float]) -> Optional[Event]:
        """Pop the next live event if it is due (``time <= until``).

        Returns ``None`` when the queue is empty *or* the next event lies
        beyond ``until`` — the engine's run loop treats both as "stop here".
        Implementations override this to fuse the peek/pop pair into one
        call on the per-event hot path.
        """
        event = self.peek()
        if event is None or (until is not None and event.time > until):
            return None
        return self.pop()

    @abstractmethod
    def note_cancelled(self, event: Event) -> None:
        """Record that a resident event was cancelled."""

    @abstractmethod
    def clear(self, floor_time: float = 0.0) -> None:
        """Discard every resident event (marking them ``popped``) and reset
        internal state; ``floor_time`` is the new lower bound on event
        times."""

    @abstractmethod
    def __len__(self) -> int:
        """Resident events, including cancelled ones awaiting discard."""

    @property
    @abstractmethod
    def live_count(self) -> int:
        """Events that are still scheduled to fire."""


class HeapEventQueue(EventQueue):
    """The reference binary-heap queue (the seed engine's behaviour).

    Cancelled events stay in the heap until popped; once they outnumber the
    live events the heap is rebuilt without them (amortised O(1) per
    cancellation).
    """

    name = "heap"

    #: Minimum number of cancelled events in the heap before a compaction is
    #: even considered (avoids churn on tiny queues).
    COMPACTION_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._cancelled = 0

    def push(self, event: Event) -> None:
        event.popped = False
        heappush(self._heap, event)

    def peek(self) -> Optional[Event]:
        heap = self._heap
        while heap and heap[0].cancelled:
            heappop(heap).popped = True
            self._cancelled -= 1
        return heap[0] if heap else None

    def pop(self) -> Optional[Event]:
        heap = self._heap
        while heap:
            event = heappop(heap)
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            return event
        return None

    def pop_due(self, until) -> Optional[Event]:
        heap = self._heap
        while heap:
            head = heap[0]
            if head.cancelled:
                heappop(heap).popped = True
                self._cancelled -= 1
                continue
            if until is not None and head.time > until:
                return None
            heappop(heap).popped = True
            return head
        return None

    def note_cancelled(self, event: Event) -> None:
        self._cancelled += 1
        if (self._cancelled >= self.COMPACTION_MIN_CANCELLED
                and 2 * self._cancelled > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        # Event ordering is total — (time, sequence) with a unique sequence
        # — so rebuilding the heap cannot change the firing order.
        live = []
        for event in self._heap:
            if event.cancelled:
                event.popped = True
            else:
                live.append(event)
        self._heap = live
        heapify(self._heap)
        self._cancelled = 0

    def clear(self, floor_time: float = 0.0) -> None:
        for event in self._heap:
            event.popped = True
        self._heap.clear()
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def live_count(self) -> int:
        return len(self._heap) - self._cancelled


class CalendarEventQueue(EventQueue):
    """Calendar queue with automatic recalibration and an overflow ladder.

    Time is divided into fixed-width *days*; day ``d`` covers
    ``[d * width, (d + 1) * width)`` and maps to bucket ``d % num_buckets``.
    Each bucket is a list kept sorted by ``(time, sequence)`` (``insort``),
    so within the roughly one-event-per-day regime the calendar is tuned
    for, both enqueue and dequeue are O(1) amortised.

    Events more than one calendar *year* (``num_buckets * width``) ahead of
    the current limit wait on the **overflow ladder** — a small heap that is
    promoted into the calendar one year at a time whenever the calendar
    drains.  Whenever the resident population outgrows (or undershoots) the
    bucket count, the calendar rebuilds: the bucket count doubles/halves and
    the width recalibrates to the observed inter-event gap near the head.

    Cancellation is O(1): the owning bucket is found arithmetically from the
    event's time, and only that bucket is compacted when its cancelled
    population dominates (bucket-local, never a full-queue sweep).
    """

    name = "calendar"

    MIN_BUCKETS = 8
    MAX_BUCKETS = 1 << 15
    #: Bucket compaction threshold: compact a bucket once it holds at least
    #: this many cancelled events and they outnumber the live ones.
    BUCKET_COMPACT_MIN = 8
    #: Overflow-ladder compaction threshold (the ladder is one heap, so the
    #: rule mirrors the heap queue's global one).
    OVERFLOW_COMPACT_MIN = 64
    #: Gap-sample size used to recalibrate the bucket width on rebuild.
    WIDTH_SAMPLE = 64
    #: Target days per event: width ~= TARGET_SPREAD * average gap.
    TARGET_SPREAD = 3.0

    def __init__(self) -> None:
        self._n = self.MIN_BUCKETS
        self._width = 1.0
        self._buckets: list[list[Event]] = [[] for _ in range(self._n)]
        self._bucket_cancelled = [0] * self._n
        #: Resident events currently held in buckets (live + cancelled).
        self._resident = 0
        #: Live events across buckets and overflow.
        self._live = 0
        #: Day of the last popped event — pushes are never earlier.
        self._day = 0
        #: First day served by the overflow ladder instead of the calendar.
        self._limit_day = self._n
        self._overflow: list[Event] = []
        self._overflow_cancelled = 0
        #: Cached next live event (valid until popped or cancelled).
        self._head: Optional[Event] = None
        self._floor = 0.0

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def push(self, event: Event) -> None:
        event.popped = False
        self._live += 1
        day = floor(event.time / self._width)
        if day >= self._limit_day:
            # Overflow events can never precede any calendar resident (their
            # day is >= the limit), so the head cache needs no update.
            heappush(self._overflow, event)
            return
        insort(self._buckets[day % self._n], event)
        self._resident += 1
        if self._resident > 2 * self._n and self._n < self.MAX_BUCKETS:
            self._rebuild()
            return
        head = self._head
        # A ``None`` head means "unknown", not "empty" — only an event that
        # beats the *known* head may replace it; the next peek rescans.
        if head is not None and event < head:
            self._head = event

    def peek(self) -> Optional[Event]:
        head = self._head
        if head is not None:
            return head
        head = self._scan()
        self._head = head
        return head

    def pop(self) -> Optional[Event]:
        return self.pop_due(None)

    def pop_due(self, until) -> Optional[Event]:
        # The engine's per-event hot path, kept flat so one call covers
        # locate + bound-check + unlink + head re-cache.
        head = self._head
        if head is None:
            head = self._scan()
            if head is None:
                return None
            self._head = head
        if until is not None and head.time > until:
            return None
        width = self._width
        n = self._n
        day = floor(head.time / width)
        bucket = self._buckets[day % n]
        # Cancelled residents with a smaller (time, sequence) may still sit
        # in front of the head inside its bucket; discard them on the way.
        while bucket[0] is not head:
            self._discard_front(bucket, day % n)
        del bucket[0]
        head.popped = True
        self._resident -= 1
        self._live -= 1
        self._day = day
        self._floor = head.time
        # Cheap head re-cache: the new bucket front is the global minimum
        # whenever it is live and belongs to the same day (every other
        # bucket only holds later days) — the common case for clustered
        # cycle-cadence events, sparing a full scan per pop.
        if (bucket and not bucket[0].cancelled
                and floor(bucket[0].time / width) == day):
            self._head = bucket[0]
        else:
            self._head = None
        if (n > self.MIN_BUCKETS
                and self._resident + len(self._overflow) < n // 4):
            self._rebuild()
        return head

    def note_cancelled(self, event: Event) -> None:
        self._live -= 1
        if event is self._head:
            self._head = None
        day = floor(event.time / self._width)
        if day >= self._limit_day:
            self._overflow_cancelled += 1
            if (self._overflow_cancelled >= self.OVERFLOW_COMPACT_MIN
                    and 2 * self._overflow_cancelled > len(self._overflow)):
                self._compact_overflow()
            return
        index = day % self._n
        self._bucket_cancelled[index] += 1
        cancelled = self._bucket_cancelled[index]
        if (cancelled >= self.BUCKET_COMPACT_MIN
                and 2 * cancelled > len(self._buckets[index])):
            self._compact_bucket(index)

    def clear(self, floor_time: float = 0.0) -> None:
        for bucket in self._buckets:
            for event in bucket:
                event.popped = True
        for event in self._overflow:
            event.popped = True
        self._n = self.MIN_BUCKETS
        self._width = 1.0
        self._buckets = [[] for _ in range(self._n)]
        self._bucket_cancelled = [0] * self._n
        self._resident = 0
        self._live = 0
        self._floor = floor_time
        self._day = floor(floor_time / self._width)
        self._limit_day = self._day + self._n
        self._overflow = []
        self._overflow_cancelled = 0
        self._head = None

    def __len__(self) -> int:
        return self._resident + len(self._overflow)

    @property
    def live_count(self) -> int:
        return self._live

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _discard_front(self, bucket: list[Event], index: int) -> None:
        """Physically drop the (cancelled) front event of ``bucket``."""
        event = bucket.pop(0)
        event.popped = True
        self._resident -= 1
        self._bucket_cancelled[index] -= 1

    def _scan(self) -> Optional[Event]:
        """Locate the next live event, discarding surfaced cancelled ones.

        Sweeps day by day from the current day; after a fruitless whole-year
        sweep it jumps straight to the earliest bucket head (so a
        ``run(until=...)`` landing in a long empty stretch costs one jump,
        not a walk over every empty bucket), and when the calendar is empty
        it promotes the next year of the overflow ladder.
        """
        while True:
            if self._resident == 0:
                if not self._promote_overflow():
                    return None
            # _day is kept equal to floor(_floor / _width) (or the overflow
            # promotion base) by every mutator, so the sweep resumes exactly
            # where the last pop left off.
            day = self._day
            width = self._width
            n = self._n
            buckets = self._buckets
            scanned = 0
            found = None
            while found is None:
                bucket = buckets[day % n]
                while bucket:
                    head = bucket[0]
                    if head.cancelled:
                        self._discard_front(bucket, day % n)
                        continue
                    # Live residents always have day >= the sweep start (a
                    # push is never earlier than the last popped time), so
                    # <= only ever matches the sweep day itself; the bound
                    # is defensive.
                    if floor(head.time / width) <= day:
                        found = head
                    break
                if found is not None:
                    break
                day += 1
                scanned += 1
                if scanned >= n:
                    # A whole year with nothing due: jump to the earliest
                    # bucket head instead of walking day by day.
                    heads = [b[0] for b in buckets if b]
                    if not heads:
                        break  # everything left was cancelled and discarded
                    earliest = min(heads)
                    day = floor(earliest.time / width)
                    scanned = 0
            if found is not None:
                return found
            # The calendar drained during the sweep (cancelled discards);
            # loop around to promote overflow or report empty.
            if self._resident == 0 and not self._overflow:
                return None

    def _promote_overflow(self) -> bool:
        """Move the next year of overflow events into the calendar.

        ``_day`` is deliberately left alone: it must never exceed the day
        of a *future* push (pushes are bounded below by the engine clock,
        not by the overflow year), so the follow-up scan walks forward
        from the current day and reaches the promoted year through its
        empty-year jump.
        """
        overflow = self._overflow
        while overflow and overflow[0].cancelled:
            heappop(overflow).popped = True
            self._overflow_cancelled -= 1
        if not overflow:
            return False
        base = floor(overflow[0].time / self._width)
        self._limit_day = base + self._n
        while overflow and floor(overflow[0].time / self._width) < self._limit_day:
            event = heappop(overflow)
            if event.cancelled:
                event.popped = True
                self._overflow_cancelled -= 1
                continue
            insort(self._buckets[
                floor(event.time / self._width) % self._n], event)
            self._resident += 1
        return self._resident > 0 or bool(overflow)

    def _compact_bucket(self, index: int) -> None:
        bucket = self._buckets[index]
        live = []
        for event in bucket:
            if event.cancelled:
                event.popped = True
            else:
                live.append(event)
        self._resident -= len(bucket) - len(live)
        self._buckets[index] = live
        self._bucket_cancelled[index] = 0

    def _compact_overflow(self) -> None:
        live = []
        for event in self._overflow:
            if event.cancelled:
                event.popped = True
            else:
                live.append(event)
        self._overflow = live
        heapify(self._overflow)
        self._overflow_cancelled = 0

    def _rebuild(self) -> None:
        """Resize the bucket array and recalibrate the bucket width.

        Gathers every resident event (buckets and overflow), drops the
        cancelled ones, re-derives the width from the average gap between
        the earliest events, and redistributes.  Rebuilds are triggered on
        power-of-two population thresholds, so their cost is amortised O(1)
        per operation.
        """
        events: list[Event] = []
        for bucket in self._buckets:
            for event in bucket:
                if event.cancelled:
                    event.popped = True
                else:
                    events.append(event)
        for event in self._overflow:
            if event.cancelled:
                event.popped = True
            else:
                events.append(event)
        size = len(events)
        n = self._n
        while size > 2 * n and n < self.MAX_BUCKETS:
            n *= 2
        while size < n // 4 and n > self.MIN_BUCKETS:
            n //= 2
        self._n = n
        self._width = self._calibrate_width(events)
        self._buckets = [[] for _ in range(n)]
        self._bucket_cancelled = [0] * n
        self._overflow = []
        self._overflow_cancelled = 0
        self._resident = 0
        self._day = floor(self._floor / self._width)
        self._limit_day = self._day + n
        self._head = None
        self._live = 0  # push re-increments per event
        for event in events:
            self.push(event)

    def _calibrate_width(self, events: list[Event]) -> float:
        """Bucket width from the observed event spacing near the head."""
        if len(events) < 2:
            return self._width
        times = sorted(event.time for event in events)
        sample = times[:self.WIDTH_SAMPLE]
        gaps = [b - a for a, b in zip(sample, sample[1:]) if b > a]
        if not gaps:
            return self._width
        width = self.TARGET_SPREAD * (sum(gaps) / len(gaps))
        if not isfinite(width) or width <= 0.0:
            return self._width
        # Guard against a width so small that day numbers lose integer
        # precision in float division.
        head = abs(times[0])
        if head > 0 and head / width > 2 ** 52:
            width = head / 2 ** 52
        return width


class _TieRung:
    """One rung of the ladder queue: a FIFO of same-timestamp events."""

    __slots__ = ("events", "head", "cancelled")

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.head = 0
        self.cancelled = 0

    def remaining(self) -> int:
        return len(self.events) - self.head


class LadderEventQueue(EventQueue):
    """Ladder/tie-bucket hybrid keyed on exact timestamps.

    Most same-timestamp events are scheduled back-to-back (a protocol
    scheduling several actions "now"), so each distinct timestamp gets one
    FIFO *rung*: appending preserves sequence order for free, dequeue is a
    pointer bump, and a lazy heap of rung times orders the rungs.  A rung
    whose events are all cancelled is dropped in O(1) — cancelled watchdog
    timers never pile up.
    """

    name = "ladder"

    #: Rung compaction threshold (mirrors the calendar's bucket-local rule).
    RUNG_COMPACT_MIN = 8

    def __init__(self) -> None:
        self._rungs: dict[float, _TieRung] = {}
        #: Lazy min-heap of rung times; may contain stale entries for rungs
        #: that were exhausted or dropped.
        self._times: list[float] = []
        self._live = 0
        self._size = 0

    def push(self, event: Event) -> None:
        event.popped = False
        rung = self._rungs.get(event.time)
        if rung is None:
            rung = _TieRung()
            self._rungs[event.time] = rung
            heappush(self._times, event.time)
        # The engine's sequence counter is monotone, so appending keeps the
        # rung sorted by sequence without a comparison.
        rung.events.append(event)
        self._live += 1
        self._size += 1

    def _front(self) -> Optional[_TieRung]:
        """The rung holding the next live event (discarding as needed)."""
        times = self._times
        while times:
            time = times[0]
            rung = self._rungs.get(time)
            if rung is not None:
                events = rung.events
                head = rung.head
                while head < len(events):
                    event = events[head]
                    if not event.cancelled:
                        rung.head = head
                        return rung
                    event.popped = True
                    head += 1
                    rung.cancelled -= 1
                    self._size -= 1
                rung.head = head
                del self._rungs[time]
            heappop(times)
        return None

    def peek(self) -> Optional[Event]:
        rung = self._front()
        if rung is None:
            return None
        return rung.events[rung.head]

    def pop(self) -> Optional[Event]:
        rung = self._front()
        if rung is None:
            return None
        event = rung.events[rung.head]
        rung.head += 1
        event.popped = True
        self._live -= 1
        self._size -= 1
        return event

    def pop_due(self, until) -> Optional[Event]:
        rung = self._front()
        if rung is None:
            return None
        event = rung.events[rung.head]
        if until is not None and event.time > until:
            return None
        rung.head += 1
        event.popped = True
        self._live -= 1
        self._size -= 1
        return event

    def note_cancelled(self, event: Event) -> None:
        self._live -= 1
        rung = self._rungs.get(event.time)
        if rung is None:  # pragma: no cover - defensive; residents have rungs
            return
        rung.cancelled += 1
        remaining = rung.remaining()
        if rung.cancelled >= remaining:
            # Whole rung cancelled: drop it now; its heap entry goes stale
            # and is skipped lazily.
            for pending in rung.events[rung.head:]:
                pending.popped = True
            self._size -= remaining
            del self._rungs[event.time]
        elif (rung.cancelled >= self.RUNG_COMPACT_MIN
                and 2 * rung.cancelled > remaining):
            live = [e for e in rung.events[rung.head:] if not e.cancelled]
            dropped = remaining - len(live)
            for pending in rung.events[rung.head:]:
                if pending.cancelled:
                    pending.popped = True
            rung.events = live
            rung.head = 0
            rung.cancelled = 0
            self._size -= dropped

    def clear(self, floor_time: float = 0.0) -> None:
        for rung in self._rungs.values():
            for event in rung.events[rung.head:]:
                event.popped = True
        self._rungs.clear()
        self._times.clear()
        self._live = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def live_count(self) -> int:
        return self._live


_QUEUE_TYPES: dict[str, type[EventQueue]] = {
    "heap": HeapEventQueue,
    "calendar": CalendarEventQueue,
    "ladder": LadderEventQueue,
}


def available_engines() -> list[str]:
    """Engine names accepted by :func:`make_event_queue`."""
    return sorted(_QUEUE_TYPES)


def default_engine_name() -> str:
    """Engine name selected by the environment (``REPRO_ENGINE``)."""
    return os.environ.get(ENGINE_ENV_VAR, DEFAULT_ENGINE).strip() or \
        DEFAULT_ENGINE


def resolve_engine_name(engine: Union[None, str, EventQueue]) -> str:
    """The concrete engine name ``engine`` resolves to.

    Used wherever the name must be recorded (results, resume-cache entries,
    cost features) before/without instantiating a queue.
    """
    if engine is None:
        name = default_engine_name()
    elif isinstance(engine, EventQueue):
        return engine.name
    else:
        name = str(engine)
    if name not in _QUEUE_TYPES:
        raise ValueError(f"unknown event engine {name!r}; "
                         f"available: {available_engines()}")
    return name


def make_event_queue(engine: Union[None, str, EventQueue] = None) -> EventQueue:
    """Build a fresh event queue (or pass through an instance).

    Queues are stateful, so — unlike physics backends — they are never
    shared between engines.
    """
    if isinstance(engine, EventQueue):
        return engine
    return _QUEUE_TYPES[resolve_engine_name(engine)]()


__all__ = [
    "CalendarEventQueue",
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "Event",
    "EventHandle",
    "EventQueue",
    "HeapEventQueue",
    "LadderEventQueue",
    "available_engines",
    "default_engine_name",
    "make_event_queue",
    "resolve_engine_name",
]
