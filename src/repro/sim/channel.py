"""Point-to-point channels with delay and loss.

Two channel families are provided:

``ClassicalChannel``
    Carries classical messages (MHP GEN/REPLY frames, DQP frames, EGP
    EXPIRE frames).  Each message is delayed by the propagation delay of the
    connection and independently dropped with a configurable loss
    probability — the knob used for the robustness study of Section 6.1.

``QuantumChannel``
    Carries "flying qubit" payloads (the photonic qubits travelling to the
    heralding station).  Losses on the quantum channel are *not* modelled
    here — photon loss is part of the optical model applied by the hardware
    layer (amplitude damping on the presence/absence encoding), so the
    quantum channel only contributes propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.sim.engine import SimulationEngine
from repro.sim.entity import Entity

#: Speed of light in optical fibre, km/s (value used in the paper, Appendix A.4).
FIBRE_LIGHT_SPEED_KM_S = 206753.0


def fibre_delay(length_km: float) -> float:
    """Propagation delay in seconds over ``length_km`` of standard fibre."""
    if length_km < 0:
        raise ValueError(f"negative fibre length {length_km}")
    return length_km / FIBRE_LIGHT_SPEED_KM_S


@dataclass
class ChannelDelivery:
    """Record of a single delivery attempt on a channel (for diagnostics)."""

    sent_at: float
    delivered_at: Optional[float]
    lost: bool
    payload: Any


class ClassicalChannel(Entity):
    """Unidirectional classical channel with fixed delay and i.i.d. loss.

    Parameters
    ----------
    engine:
        Simulation engine.
    delay:
        One-way propagation delay in seconds.
    loss_probability:
        Probability that an individual message is silently dropped.  The
        paper's robustness experiment sweeps this from 0 up to 1e-4.
    rng:
        Numpy random generator; if omitted a default generator is created.
    name:
        Identifier used in diagnostics.
    """

    def __init__(self, engine: SimulationEngine, delay: float,
                 loss_probability: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "") -> None:
        super().__init__(engine, name=name or "ClassicalChannel")
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(f"loss probability {loss_probability} not in [0, 1]")
        self.delay = float(delay)
        self.loss_probability = float(loss_probability)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._receiver: Optional[Callable[[Any], None]] = None
        #: Event name built once — sends are the hot path, and a per-send
        #: f-string shows up in profiles.
        self._deliver_name = f"{self.name}.deliver"
        self.history: list[ChannelDelivery] = []
        self.record_history = False
        self.messages_sent = 0
        self.messages_lost = 0

    def connect(self, receiver: Callable[[Any], None]) -> None:
        """Register the callback invoked when a message is delivered."""
        self._receiver = receiver

    def send(self, payload: Any) -> bool:
        """Send ``payload`` down the channel.

        Returns ``True`` if the message will be delivered, ``False`` if it was
        lost.  The caller does not normally inspect the return value (a real
        sender cannot know) — it exists for tests and diagnostics.
        """
        if self._receiver is None:
            raise RuntimeError(f"channel {self.name} has no receiver connected")
        self.messages_sent += 1
        lost = self._rng.random() < self.loss_probability
        if lost:
            self.messages_lost += 1
        else:
            # Positional args instead of a closure: no per-send lambda;
            # scheduled directly on the engine to skip a dispatch hop.
            engine = self._engine
            engine.schedule_at(engine._now + self.delay, self._receiver,
                               name=self._deliver_name, args=(payload,))
        if self.record_history:
            self.history.append(ChannelDelivery(
                sent_at=self.now,
                delivered_at=None if lost else self.now + self.delay,
                lost=lost, payload=payload))
        return not lost

    def send_delayed(self, payload: Any, delay: float) -> bool:
        """Hand ``payload`` to the channel ``delay`` seconds from now.

        Equivalent to scheduling ``send(payload)`` after ``delay`` but in a
        single event (delivery at ``delay + self.delay``) instead of two —
        the midpoint's batched replies are the hot caller.  The loss draw
        happens now rather than at the hand-over; the outcomes are i.i.d.
        per transmission either way.
        """
        if delay <= 0:
            return self.send(payload)
        if self._receiver is None:
            raise RuntimeError(f"channel {self.name} has no receiver connected")
        self.messages_sent += 1
        lost = self._rng.random() < self.loss_probability
        delivered_at: Optional[float] = None
        if lost:
            self.messages_lost += 1
        else:
            # Left-associated on purpose: (now + delay) + self.delay is the
            # exact float a deferred ``send`` at ``now + delay`` would
            # compute, keeping the collapse bit-identical to the two-event
            # reference pattern.
            delivered_at = self.now + delay + self.delay
            self.call_at(delivered_at, self._receiver,
                         args=(payload,), name=self._deliver_name)
        if self.record_history:
            self.history.append(ChannelDelivery(
                sent_at=self.now + delay, delivered_at=delivered_at,
                lost=lost, payload=payload))
        return not lost


class QuantumChannel(Entity):
    """Unidirectional quantum channel contributing only propagation delay.

    Photon loss is accounted for in the optical model (collection,
    transmission and detection efficiencies folded into the heralding
    success probability), so this channel never drops payloads.
    """

    def __init__(self, engine: SimulationEngine, delay: float,
                 name: str = "") -> None:
        super().__init__(engine, name=name or "QuantumChannel")
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.delay = float(delay)
        self._receiver: Optional[Callable[[Any], None]] = None
        self._deliver_name = f"{self.name}.deliver"
        self.qubits_sent = 0

    def connect(self, receiver: Callable[[Any], None]) -> None:
        """Register the callback invoked when a flying qubit arrives."""
        self._receiver = receiver

    def send(self, payload: Any) -> None:
        """Send a flying-qubit payload down the fibre."""
        if self._receiver is None:
            raise RuntimeError(f"channel {self.name} has no receiver connected")
        self.qubits_sent += 1
        self.call_after(self.delay, self._receiver, args=(payload,),
                        name=self._deliver_name)
