"""Event-driven simulation engine.

The engine executes timestamped events in ``(time, sequence)`` order.  Time
is a float in seconds.  Events scheduled at the same timestamp are executed
in insertion order, which gives deterministic behaviour for protocols that
schedule several actions "now".

*How* pending events are stored is pluggable: the engine delegates to an
:class:`~repro.sim.queues.EventQueue` — the reference binary heap, a
calendar queue tuned to the MHP cycle cadence, or a ladder/tie-bucket
hybrid (see :mod:`repro.sim.queues`).  All implementations are
order-equivalent; selection is by name, instance, or the ``REPRO_ENGINE``
environment variable.

The engine is deliberately minimal: the sophistication of the reproduction
lives in the protocol and hardware models, not in the scheduler.  What *is*
here is tuned for the GEN/REPLY hot path: slim ``__slots__`` events that
double as their own cancellation handles, positional callback arguments
instead of per-schedule lambdas, reusable timers
(:class:`ReusableTimer`) and periodic timers (:meth:`SimulationEngine.
schedule_periodic`) that re-arm one event object instead of allocating a
fresh one per cycle.
"""

from __future__ import annotations

import itertools
from time import perf_counter
from typing import Callable, Optional, Union

from repro.sim.queues import (
    Event,
    EventHandle,
    EventQueue,
    make_event_queue,
)

__all__ = [
    "DeadlineExceeded",
    "EngineInterrupt",
    "Event",
    "EventBudgetExceeded",
    "EventHandle",
    "PeriodicHandle",
    "ReusableTimer",
    "SimulationEngine",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


class EngineInterrupt(RuntimeError):
    """A supervision bound stopped the run before it finished.

    Carries partial provenance — events processed and the simulated time
    reached — so the supervisor (``repro.runtime.guard``) can report *where*
    the run was cut short, not just that it was.
    """

    def __init__(self, message: str, events_processed: int,
                 sim_time: float) -> None:
        super().__init__(message)
        self.events_processed = events_processed
        self.sim_time = sim_time


class EventBudgetExceeded(EngineInterrupt):
    """The engine's deterministic event budget was exhausted mid-run."""


class DeadlineExceeded(EngineInterrupt):
    """The engine's wall-clock deadline passed mid-run."""


class PeriodicHandle:
    """Handle for a fixed-cadence timer created by
    :meth:`SimulationEngine.schedule_periodic`.

    The series reuses **one** event object: after each firing the event's
    time advances by the interval and it is pushed back, so a cycle timer
    costs no allocation per cycle.  :meth:`cancel` stops the series; a
    handle from before ``engine.reset()`` is inert and never re-arms.
    """

    __slots__ = ("_engine", "_event", "interval", "_stopped", "_epoch",
                 "_user_callback")

    def __init__(self, engine: "SimulationEngine", interval: float,
                 callback: Callable[[], None], start: float,
                 name: str) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be > 0, "
                                  f"got {interval}")
        self._engine = engine
        self.interval = interval
        self._stopped = False
        self._epoch = engine._epoch
        self._user_callback = callback
        self._event = Event(start, next(engine._counter), self._fire, (),
                            name, engine)
        engine._queue.push(self._event)
        if engine.tracer is not None:
            engine.tracer.on_scheduled(name)

    def _fire(self) -> None:
        self._user_callback()
        engine = self._engine
        if self._stopped or self._epoch != engine._epoch:
            return
        event = self._event
        event.time += self.interval
        event.sequence = next(engine._counter)
        engine._queue.push(event)
        if engine.tracer is not None:
            engine.tracer.on_scheduled(event.name)

    @property
    def active(self) -> bool:
        """Whether the series will keep firing."""
        return (not self._stopped and self._epoch == self._engine._epoch)

    @property
    def next_time(self) -> float:
        """Timestamp of the next firing (meaningless once cancelled)."""
        return self._event.time

    def cancel(self) -> None:
        """Stop the series; the queued occurrence (if any) is cancelled."""
        if self._stopped:
            return
        self._stopped = True
        if self._epoch == self._engine._epoch:
            self._event.cancel()


class ReusableTimer:
    """A re-armable one-shot timer that recycles its event object.

    Protocol timers with at most one outstanding occurrence (the MHP poll,
    the EGP reply watchdog) previously allocated a fresh event + handle +
    closure per arm; a :class:`ReusableTimer` re-arms the same
    :class:`Event` once it has fired.  If the previous occurrence is still
    pending (or cancelled but still resident in the queue), :meth:`arm_at`
    schedules an independent fresh event instead, so arming is always safe
    and the event trace is identical to per-arm scheduling.
    """

    __slots__ = ("_engine", "_callback", "_name", "_event", "_epoch")

    def __init__(self, engine: "SimulationEngine",
                 callback: Callable[..., None], name: str = "") -> None:
        self._engine = engine
        self._callback = callback
        self._name = name
        self._event: Optional[Event] = None
        self._epoch = engine._epoch

    def arm_at(self, time: float, args: tuple = ()) -> EventHandle:
        """Schedule the callback at absolute ``time``; returns the handle."""
        engine = self._engine
        if time < engine._now:
            raise SimulationError(
                f"cannot schedule event at {time} (now is {engine._now})")
        event = self._event
        if (event is not None and event.popped
                and self._epoch == engine._epoch):
            event.time = float(time)
            event.sequence = next(engine._counter)
            event.args = args
            event.cancelled = False
            engine._queue.push(event)
            if engine.tracer is not None:
                engine.tracer.on_scheduled(event.name)
            return event
        event = Event(float(time), next(engine._counter), self._callback,
                      args, self._name, engine)
        engine._queue.push(event)
        self._event = event
        self._epoch = engine._epoch
        if engine.tracer is not None:
            engine.tracer.on_scheduled(self._name)
        return event

    def arm_after(self, delay: float, args: tuple = ()) -> EventHandle:
        """Schedule the callback ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.arm_at(self._engine._now + delay, args=args)

    def cancel(self) -> None:
        """Cancel the pending occurrence, if any."""
        event = self._event
        if (event is not None and self._epoch == self._engine._epoch
                and not event.popped):
            event.cancel()

    @property
    def active(self) -> bool:
        """Whether an occurrence is currently pending."""
        event = self._event
        return (event is not None and self._epoch == self._engine._epoch
                and event.is_pending)


class SimulationEngine:
    """Discrete-event simulation engine.

    Parameters
    ----------
    start_time:
        Initial simulation time in seconds (default ``0.0``).
    queue:
        Event-queue implementation: an engine name (``"heap"``,
        ``"calendar"``, ``"ladder"``), an
        :class:`~repro.sim.queues.EventQueue` instance, or ``None`` for the
        environment default (``REPRO_ENGINE``, falling back to ``"heap"``).

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule_at(1.0, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [1.0]
    """

    def __init__(self, start_time: float = 0.0,
                 queue: Union[None, str, EventQueue] = None) -> None:
        self._now = float(start_time)
        self._queue = make_event_queue(queue)
        self._queue.clear(self._now)
        self._counter = itertools.count()
        self._running = False
        self._processed = 0
        #: Events whose scheduling was skipped outright by an
        #: outcome-preserving elision (PR 5/7): watchdogs that provably
        #: cannot fire, no-op busy polls, collapsed reply hand-overs.  A
        #: bare int so the accounting is always on; per-kind detail goes
        #: to the tracer when one is attached.
        self._elided = 0
        #: Bumped by :meth:`reset`; reusable/periodic timers from an older
        #: epoch refuse to re-arm their stale event objects.
        self._epoch = 0
        #: Optional event-trace sink: when set to a list, every executed
        #: event appends ``(time, sequence, name)``.  The engine-equivalence
        #: tests pin these traces across queue implementations.
        self.trace: Optional[list] = None
        #: Optional :class:`repro.obs.Tracer`.  ``None`` (the default)
        #: keeps every instrumentation site a single ``is not None``
        #: check — the same zero-cost pattern as :attr:`trace`.
        self.tracer = None
        #: Supervision bounds (``repro.runtime.guard`` installs them).
        #: ``event_budget`` caps total :attr:`processed_events`
        #: (deterministic: the same run hits it at the same event);
        #: ``deadline_at`` is an absolute :func:`time.perf_counter` value
        #: checked every 1024 events.  Both default to ``None`` — the run
        #: loop then pays one ``is not None`` per event and the trace is
        #: bit-identical to an unguarded engine.
        self.event_budget: Optional[int] = None
        self.deadline_at: Optional[float] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def queue_name(self) -> str:
        """Registry name of the event-queue implementation in use."""
        return self._queue.name

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return self._queue.live_count

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def elided_events(self) -> int:
        """Number of events never scheduled thanks to timer elision."""
        return self._elided

    def note_elided(self, name: str = "") -> None:
        """Record that an event was elided (skipped outcome-preservingly)."""
        self._elided += 1
        if self.tracer is not None:
            self.tracer.on_elided(name)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    name: str = "", args: tuple = ()) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute time ``time``.

        Passing ``args`` instead of binding a lambda avoids a closure
        allocation per schedule on hot paths.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} (now is {self._now})")
        event = Event(float(time), next(self._counter), callback, args,
                      name, self)
        self._queue.push(event)
        if self.tracer is not None:
            self.tracer.on_scheduled(name)
        return event

    def schedule_after(self, delay: float, callback: Callable[..., None],
                       name: str = "", args: tuple = ()) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, name=name,
                                args=args)

    def schedule_now(self, callback: Callable[..., None],
                     name: str = "", args: tuple = ()) -> EventHandle:
        """Schedule ``callback`` to run at the current time, after pending
        events with the same timestamp."""
        return self.schedule_at(self._now, callback, name=name, args=args)

    def schedule_periodic(self, interval: float,
                          callback: Callable[[], None],
                          start: Optional[float] = None,
                          name: str = "") -> PeriodicHandle:
        """Schedule ``callback`` every ``interval`` seconds.

        The first firing is at ``start`` (default ``now + interval``); the
        series re-arms **after** the callback returns, exactly as a
        callback that re-schedules itself would, but reusing one event
        object instead of allocating one per cycle.  Returns a
        :class:`PeriodicHandle` whose ``cancel()`` stops the series.
        """
        first = self._now + interval if start is None else float(start)
        if first < self._now:
            raise SimulationError(
                f"cannot schedule event at {first} (now is {self._now})")
        return PeriodicHandle(self, float(interval), callback, first, name)

    def timer(self, callback: Callable[..., None],
              name: str = "") -> ReusableTimer:
        """A :class:`ReusableTimer` bound to this engine."""
        return ReusableTimer(self, callback, name=name)

    def step(self) -> bool:
        """Run the next (non-cancelled) event.

        Returns ``True`` if an event was executed, ``False`` if the queue is
        empty.
        """
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        if self.trace is not None:
            self.trace.append((event.time, event.sequence, event.name))
        if self.tracer is not None:
            self.tracer.on_executed(event.name)
        event.callback(*event.args)
        self._processed += 1
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once simulation time reaches this value (events scheduled
            at exactly ``until`` are executed).  ``None`` runs until the
            queue is empty.  When the queue drains before ``until`` — or
            holds only cancelled events — the clock still advances to
            ``until``.
        max_events:
            Optional safety limit on the number of events executed in this
            call (the clock is left at the last executed event).

        Returns
        -------
        float
            The simulation time at which the run stopped.
        """
        self._running = True
        queue = self._queue
        trace = self.trace
        tracer = self.tracer
        budget = self.event_budget
        deadline = self.deadline_at
        executed = 0
        try:
            while max_events is None or executed < max_events:
                event = queue.pop_due(until)
                if event is None:
                    # Queue empty, or the next event lies beyond ``until``:
                    # either way the clock advances to the bound.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                self._now = event.time
                if trace is not None:
                    trace.append((event.time, event.sequence, event.name))
                if tracer is not None:
                    tracer.on_executed(event.name)
                event.callback(*event.args)
                self._processed += 1
                executed += 1
                if budget is not None and self._processed >= budget:
                    raise EventBudgetExceeded(
                        f"event budget of {budget} exhausted at simulated "
                        f"time {self._now:.6f}s", self._processed, self._now)
                if (deadline is not None and not (self._processed & 1023)
                        and perf_counter() >= deadline):
                    raise DeadlineExceeded(
                        f"wall-clock deadline passed after "
                        f"{self._processed} events at simulated time "
                        f"{self._now:.6f}s", self._processed, self._now)
        finally:
            self._running = False
        return self._now

    def _note_cancelled(self, event: Event) -> None:
        """Forward a cancellation to the queue's accounting (compaction is
        the queue's business — bucket-local where the structure allows)."""
        self._queue.note_cancelled(event)
        if self.tracer is not None:
            self.tracer.on_cancelled(event.name)

    def reset(self, start_time: float = 0.0) -> None:
        """Clear the queue and reset the clock.  Mostly useful in tests.

        Handles, reusable timers and periodic handles obtained **before**
        the reset become inert: cancelling them is a no-op for the new
        epoch's accounting, and they can never re-arm or resurrect events
        into the fresh queue.
        """
        self._queue.clear(float(start_time))
        self._now = float(start_time)
        self._counter = itertools.count()
        self._processed = 0
        self._elided = 0
        self._epoch += 1
