"""Event-driven simulation engine.

The engine is a priority queue of timestamped events.  Time is a float in
seconds.  Events scheduled at the same timestamp are executed in insertion
order, which gives deterministic behaviour for protocols that schedule several
actions "now".

The engine is deliberately minimal: the sophistication of the reproduction
lives in the protocol and hardware models, not in the scheduler.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events sort by ``(time, sequence)`` so that simultaneous events run in the
    order they were scheduled.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: True once the event has left the queue (executed, skipped or
    #: discarded); cancelling it afterwards must not touch the queue
    #: accounting.
    popped: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule`.

    Allows the caller to cancel the event before it fires.
    """

    def __init__(self, event: Event,
                 engine: Optional["SimulationEngine"] = None) -> None:
        self._event = event
        self._engine = engine

    @property
    def time(self) -> float:
        """Timestamp at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event.  A cancelled event is skipped by the engine.

        Cancelling an event that already fired (or was discarded) is a
        harmless no-op for the queue accounting.
        """
        if self._event.cancelled:
            return
        self._event.cancelled = True
        if self._engine is not None and not self._event.popped:
            self._engine._note_cancelled()


class SimulationEngine:
    """Discrete-event simulation engine.

    Parameters
    ----------
    start_time:
        Initial simulation time in seconds (default ``0.0``).

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule_at(1.0, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [1.0]
    """

    #: Minimum number of cancelled events in the heap before a compaction is
    #: even considered (avoids churn on tiny queues).
    COMPACTION_MIN_CANCELLED = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._running = False
        self._processed = 0
        self._cancelled_in_queue = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(self, time: float, callback: Callable[[], None],
                    name: str = "") -> EventHandle:
        """Schedule ``callback`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} (now is {self._now})")
        event = Event(time=float(time), sequence=next(self._counter),
                      callback=callback, name=name)
        heapq.heappush(self._queue, event)
        return EventHandle(event, engine=self)

    def schedule_after(self, delay: float, callback: Callable[[], None],
                       name: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, name=name)

    def schedule_now(self, callback: Callable[[], None],
                     name: str = "") -> EventHandle:
        """Schedule ``callback`` to run at the current time, after pending
        events with the same timestamp."""
        return self.schedule_at(self._now, callback, name=name)

    def step(self) -> bool:
        """Run the next (non-cancelled) event.

        Returns ``True`` if an event was executed, ``False`` if the queue is
        empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once simulation time reaches this value (events scheduled at
            exactly ``until`` are executed).  ``None`` runs until the queue is
            empty.
        max_events:
            Optional safety limit on the number of events executed in this
            call.

        Returns
        -------
        float
            The simulation time at which the run stopped.
        """
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without removing it."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue).popped = True
            self._cancelled_in_queue -= 1
        return self._queue[0] if self._queue else None

    def _note_cancelled(self) -> None:
        """Record a cancellation and lazily compact the heap.

        Cancelled events stay in the heap until popped, so protocols that
        cancel many timers (reply watchdogs, match timeouts) would otherwise
        grow the queue without bound on long runs.  Once cancelled events
        outnumber live ones the heap is rebuilt without them; amortised the
        compaction is O(1) per cancellation.
        """
        self._cancelled_in_queue += 1
        if (self._cancelled_in_queue >= self.COMPACTION_MIN_CANCELLED
                and 2 * self._cancelled_in_queue > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and restore the heap invariant.

        Event ordering is total — ``(time, sequence)`` with a unique
        sequence — so rebuilding the heap cannot change the order in which
        the remaining events fire.
        """
        live = []
        for event in self._queue:
            if event.cancelled:
                event.popped = True
            else:
                live.append(event)
        self._queue = live
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0

    def reset(self, start_time: float = 0.0) -> None:
        """Clear the queue and reset the clock.  Mostly useful in tests."""
        for event in self._queue:
            event.popped = True
        self._queue.clear()
        self._now = float(start_time)
        self._counter = itertools.count()
        self._processed = 0
        self._cancelled_in_queue = 0
