"""Event-driven simulation engine.

The engine is a priority queue of timestamped events.  Time is a float in
seconds.  Events scheduled at the same timestamp are executed in insertion
order, which gives deterministic behaviour for protocols that schedule several
actions "now".

The engine is deliberately minimal: the sophistication of the reproduction
lives in the protocol and hardware models, not in the scheduler.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events sort by ``(time, sequence)`` so that simultaneous events run in the
    order they were scheduled.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule`.

    Allows the caller to cancel the event before it fires.
    """

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Timestamp at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event.  A cancelled event is skipped by the engine."""
        self._event.cancelled = True


class SimulationEngine:
    """Discrete-event simulation engine.

    Parameters
    ----------
    start_time:
        Initial simulation time in seconds (default ``0.0``).

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule_at(1.0, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [1.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(self, time: float, callback: Callable[[], None],
                    name: str = "") -> EventHandle:
        """Schedule ``callback`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} (now is {self._now})")
        event = Event(time=float(time), sequence=next(self._counter),
                      callback=callback, name=name)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_after(self, delay: float, callback: Callable[[], None],
                       name: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, name=name)

    def schedule_now(self, callback: Callable[[], None],
                     name: str = "") -> EventHandle:
        """Schedule ``callback`` to run at the current time, after pending
        events with the same timestamp."""
        return self.schedule_at(self._now, callback, name=name)

    def step(self) -> bool:
        """Run the next (non-cancelled) event.

        Returns ``True`` if an event was executed, ``False`` if the queue is
        empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once simulation time reaches this value (events scheduled at
            exactly ``until`` are executed).  ``None`` runs until the queue is
            empty.
        max_events:
            Optional safety limit on the number of events executed in this
            call.

        Returns
        -------
        float
            The simulation time at which the run stopped.
        """
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without removing it."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def reset(self, start_time: float = 0.0) -> None:
        """Clear the queue and reset the clock.  Mostly useful in tests."""
        self._queue.clear()
        self._now = float(start_time)
        self._counter = itertools.count()
        self._processed = 0
