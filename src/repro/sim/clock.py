"""Periodic clock used to drive MHP time slots.

The physical layer makes entanglement attempts in fixed, globally
synchronised time slots (the "MHP cycle").  The :class:`Clock` entity fires a
callback at the start of every cycle and exposes helpers to convert between
cycle numbers and simulation time.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import PeriodicHandle, SimulationEngine
from repro.sim.entity import Entity


class Clock(Entity):
    """Fixed-period clock.

    Parameters
    ----------
    engine:
        Simulation engine.
    period:
        Cycle duration in seconds (the MHP cycle time).
    offset:
        Time of the first tick.
    """

    def __init__(self, engine: SimulationEngine, period: float,
                 offset: float = 0.0, name: str = "") -> None:
        super().__init__(engine, name=name or "Clock")
        if period <= 0:
            raise ValueError(f"clock period must be positive, got {period}")
        self.period = float(period)
        self.offset = float(offset)
        self._listeners: list[Callable[[int], None]] = []
        self._cycle = 0
        self._running = False
        self._tick_name = f"{self.name}.tick"
        self._periodic: Optional[PeriodicHandle] = None

    @property
    def cycle(self) -> int:
        """Number of the most recently fired cycle (0 before the first tick)."""
        return self._cycle

    def add_listener(self, callback: Callable[[int], None]) -> None:
        """Register a callback invoked with the cycle number on every tick."""
        self._listeners.append(callback)

    def cycle_to_time(self, cycle: int) -> float:
        """Simulation time at which ``cycle`` starts."""
        return self.offset + cycle * self.period

    def time_to_cycle(self, time: float) -> int:
        """Cycle number containing the simulation time ``time``.

        Times before the first tick map to cycle 0.
        """
        if time <= self.offset:
            return 0
        # Guard against floating-point rounding putting an exact cycle start
        # into the previous cycle.
        return int((time - self.offset) / self.period + 1e-9)

    def next_cycle_at_or_after(self, time: float) -> int:
        """First cycle whose start time is >= ``time``."""
        if time <= self.offset:
            return 0
        cycles = (time - self.offset) / self.period
        whole = int(cycles)
        if self.cycle_to_time(whole) >= time:
            return whole
        return whole + 1

    def start(self) -> None:
        """Start ticking.  The first tick fires at ``offset`` (or now if past)."""
        if self._running:
            return
        self._running = True
        first = max(self.offset, self.now)
        # One reusable event for the whole tick series (the engine's
        # fixed-cadence fast path) instead of a fresh push per cycle.
        self._periodic = self.engine.schedule_periodic(
            self.period, self._tick, start=first, name=self._tick_name)

    def stop(self) -> None:
        """Stop ticking."""
        self._running = False
        if self._periodic is not None:
            self._periodic.cancel()
            self._periodic = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._cycle = self.time_to_cycle(self.now)
        for listener in list(self._listeners):
            listener(self._cycle)
