"""Render ``repro.obs`` artifacts as a human-readable report.

Usage::

    python -m repro.obs.report PATH [--top N] [--width W]

``PATH`` may be:

- an observability output directory (``REPRO_OBS_DIR``) — every run
  subdirectory found is rendered;
- a single run directory containing ``trace.jsonl`` / ``metrics.json``
  / ``profile.collapsed``;
- one of those files directly;
- a merged sweep/cluster result JSON carrying a ``telemetry`` section
  (as produced by a cluster sweep with ``REPRO_OBS=...,metrics``);
- a ``quarantine/`` directory of durable
  :class:`~repro.runtime.guard.QuarantineRecord` files (or any cache /
  cluster directory containing one) — rendered as a per-scenario table of
  who quarantined what, after how many attempts, and why.

For traces the report shows the top-N event kinds by executed count,
elision/cancellation accounting, aggregate counters, and an ASCII
timeline of the recorded protocol events bucketed over sim-time.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import read_jsonl

__all__ = ["main", "render_trace", "render_metrics", "render_profile",
           "render_quarantine"]


def _bar(count: int, peak: int, width: int) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1 if count else 0, round(count / peak * width))


def render_trace(path: Path, top: int = 15, width: int = 50,
                 out=None) -> None:
    out = out if out is not None else sys.stdout
    records, summary = read_jsonl(path)
    out.write(f"== trace: {path} ==\n")
    if summary:
        executed: Dict[str, int] = summary.get("executed", {})
        elided: Dict[str, int] = summary.get("elided", {})
        cancelled: Dict[str, int] = summary.get("cancelled", {})
        total = sum(executed.values())
        out.write(f"executed events: {total}  "
                  f"(elided: {sum(elided.values())}, "
                  f"cancelled: {sum(cancelled.values())})\n")
        ranked = sorted(executed.items(), key=lambda kv: (-kv[1], kv[0]))
        if ranked:
            out.write(f"top {min(top, len(ranked))} event kinds by executed count:\n")
            peak = ranked[0][1]
            for name, count in ranked[:top]:
                extra = ""
                if name in elided:
                    extra = f"  (+{elided[name]} elided)"
                out.write(f"  {count:>10}  {name:<40} "
                          f"{_bar(count, peak, width // 2)}{extra}\n")
        counters = summary.get("counters", {})
        if counters:
            out.write("counters:\n")
            for name, value in sorted(counters.items(),
                                      key=lambda kv: (-kv[1], kv[0]))[:top]:
                out.write(f"  {value:>10g}  {name}\n")
    if records:
        times = [r["t"] for r in records]
        t0, t1 = min(times), max(times)
        span = (t1 - t0) or 1.0
        buckets = [0] * width
        for t in times:
            index = min(width - 1, int((t - t0) / span * width))
            buckets[index] += 1
        peak = max(buckets)
        out.write(f"timeline: {len(records)} protocol records over "
                  f"[{t0:.6f}s, {t1:.6f}s] sim-time "
                  f"({span / width:.6f}s/bucket, peak {peak})\n")
        for index, count in enumerate(buckets):
            t = t0 + index * span / width
            out.write(f"  {t:>12.6f}s |{_bar(count, peak, width):<{width}}| "
                      f"{count}\n")
        by_name: Dict[str, int] = {}
        for record in records:
            by_name[record["name"]] = by_name.get(record["name"], 0) + 1
        out.write("record kinds:\n")
        for name, count in sorted(by_name.items(), key=lambda kv: (-kv[1], kv[0]))[:top]:
            out.write(f"  {count:>10}  {name}\n")


def render_metrics(payload: dict, top: int = 15, out=None,
                   title: str = "metrics") -> None:
    out = out if out is not None else sys.stdout
    registry = MetricsRegistry.from_dict(payload)
    out.write(f"== {title} ==\n")
    rows = registry.series()
    if not rows:
        out.write("  (empty)\n")
        return
    for kind, name, labels, value in rows:
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        if kind == "histogram":
            mean = value["sum"] / value["count"] if value["count"] else 0.0
            out.write(f"  {kind:<9} {name}{{{label_text}}} "
                      f"count={value['count']} mean={mean:.6g} "
                      f"min={value['min']:.6g} max={value['max']:.6g}\n")
        else:
            out.write(f"  {kind:<9} {name}{{{label_text}}} {value:g}\n")


def render_profile(path: Path, top: int = 15, out=None) -> None:
    out = out if out is not None else sys.stdout
    lines = path.read_text(encoding="utf-8").splitlines()
    parsed = []
    for line in lines:
        stack, _, count = line.rpartition(" ")
        if stack and count.isdigit():
            parsed.append((int(count), stack))
    total = sum(count for count, _ in parsed)
    out.write(f"== profile: {path} ({total} samples) ==\n")
    for count, stack in sorted(parsed, reverse=True)[:top]:
        leaf = stack.rsplit(";", 1)[-1]
        share = count / total * 100 if total else 0.0
        out.write(f"  {count:>8} ({share:5.1f}%)  {leaf}   [{stack[-120:]}]\n")


def render_quarantine(path: Path, out=None) -> bool:
    """Render the quarantine records under ``path``; False when empty.

    ``path`` may be the ``quarantine/`` directory itself or any directory
    containing one (a resume-cache or cluster directory).
    """
    from repro.runtime.guard import QuarantineStore

    out = out if out is not None else sys.stdout
    if path.name == QuarantineStore.DIRNAME:
        path = path.parent
    records = QuarantineStore(path).load_all()
    if not records:
        return False
    out.write(f"== quarantine: {path / QuarantineStore.DIRNAME} "
              f"({len(records)} record(s)) ==\n")
    out.write(f"  {'index':>5}  {'status':<14} {'attempts':>8}  "
              f"{'source':<11} scenario\n")
    for record in records:
        out.write(f"  {record.index:>5}  {record.status:<14} "
                  f"{record.attempts:>8}  {record.source:<11} "
                  f"{record.scenario_name}\n")
        if record.error:
            error = record.error.replace("\n", " ")
            if len(error) > 120:
                error = error[:117] + "..."
            out.write(f"         {error}\n")
    return True


def _render_run_dir(run_dir: Path, top: int, width: int, out) -> bool:
    rendered = False
    trace = run_dir / "trace.jsonl"
    if trace.exists():
        render_trace(trace, top=top, width=width, out=out)
        rendered = True
    metrics = run_dir / "metrics.json"
    if metrics.exists():
        render_metrics(json.loads(metrics.read_text(encoding="utf-8")),
                       top=top, out=out, title=f"metrics: {metrics}")
        rendered = True
    profile = run_dir / "profile.collapsed"
    if profile.exists():
        render_profile(profile, top=top, out=out)
        rendered = True
    from repro.runtime.guard import QuarantineStore

    if (run_dir / QuarantineStore.DIRNAME).is_dir():
        rendered = render_quarantine(run_dir, out=out) or rendered
    return rendered


def render_path(path: Path, top: int = 15, width: int = 50,
                out=None) -> bool:
    """Render whatever artifact(s) live at ``path``; True if any found."""
    out = out if out is not None else sys.stdout
    if path.is_file():
        if path.suffix == ".jsonl":
            render_trace(path, top=top, width=width, out=out)
            return True
        if path.name.endswith(".collapsed"):
            render_profile(path, top=top, out=out)
            return True
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("format") == "repro-metrics/v1":
            render_metrics(payload, top=top, out=out, title=f"metrics: {path}")
            return True
        telemetry = payload.get("telemetry")
        if telemetry:
            render_metrics(telemetry, top=top, out=out,
                           title=f"sweep telemetry: {path}")
            return True
        return False
    if path.is_dir():
        from repro.runtime.guard import QuarantineStore

        if path.name == QuarantineStore.DIRNAME:
            return render_quarantine(path, out=out)
        if _render_run_dir(path, top, width, out):
            return True
        rendered = False
        for child in sorted(path.iterdir()):
            if child.is_dir():
                out.write(f"\n-- run: {child.name} --\n")
                rendered = _render_run_dir(child, top, width, out) or rendered
        return rendered
    return False


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render repro.obs trace/metrics/profile artifacts.")
    parser.add_argument("path", help="obs directory, run directory, "
                        "trace.jsonl, metrics.json, profile.collapsed, or a "
                        "merged sweep JSON with a telemetry section")
    parser.add_argument("--top", type=int, default=15,
                        help="rows per top-N table (default 15)")
    parser.add_argument("--width", type=int, default=50,
                        help="timeline width in buckets (default 50)")
    args = parser.parse_args(argv)

    path = Path(args.path)
    if not path.exists():
        print(f"no such path: {path}", file=sys.stderr)
        return 1
    if not render_path(path, top=args.top, width=args.width):
        print(f"no repro.obs artifacts found under {path}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    try:
        status = main()
    except BrokenPipeError:
        # Downstream (e.g. ``| head``) closed the pipe; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        status = 0
    raise SystemExit(status)
