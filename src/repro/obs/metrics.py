"""Metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` is a small in-process store with labelled
counters/gauges/histograms that serializes to JSON (for merging across
runs, shards, and sweeps) and to the Prometheus text exposition format
(for scraping / human inspection).

Aggregation model: each layer owns one registry — per-run metrics roll
into the sweep runner's registry, each cluster worker ships its
registry to the coordinator over the ``telemetry`` transport op, and
the coordinator merges the per-shard registries into the sweep summary.
``merge`` sums counters, keeps the last-written gauge, and adds
histograms bucket-wise, so merging is associative and idempotent per
worker snapshot (last write wins at the transport layer).
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, Optional, Tuple

__all__ = ["MetricsRegistry", "HISTOGRAM_BUCKETS"]

#: Default histogram bucket upper bounds (seconds-ish scale; +Inf implied).
HISTOGRAM_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

_LabelKey = Tuple[Tuple[str, str], ...]
_SeriesKey = Tuple[str, _LabelKey]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _series_key(name: str, labels: Dict[str, str]) -> _SeriesKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(labels: _LabelKey, extra: Iterable[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join('%s="%s"' % (k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
                    for k, v in pairs)
    return "{" + body + "}"


class MetricsRegistry:
    """Labelled counters, gauges, and fixed-bucket histograms.

    ``base_labels`` are attached to every series the registry records
    (e.g. ``{"worker": "w1", "shard": "2"}``) — merged registries stay
    distinguishable per shard while still summing cleanly in Prometheus
    queries.
    """

    def __init__(self, base_labels: Optional[Dict[str, str]] = None) -> None:
        self.base_labels: Dict[str, str] = dict(base_labels or {})
        self._counters: Dict[_SeriesKey, float] = {}
        self._gauges: Dict[_SeriesKey, float] = {}
        # name -> {"count", "sum", "min", "max", "buckets": [..]} per series
        self._histograms: Dict[_SeriesKey, dict] = {}

    # -- recording ------------------------------------------------------
    def counter(self, name: str, value: float = 1, **labels: str) -> None:
        key = _series_key(name, {**self.base_labels, **labels})
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: str) -> None:
        key = _series_key(name, {**self.base_labels, **labels})
        self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one histogram observation."""
        key = _series_key(name, {**self.base_labels, **labels})
        hist = self._histograms.get(key)
        if hist is None:
            hist = {"count": 0, "sum": 0.0, "min": value, "max": value,
                    "buckets": [0] * (len(HISTOGRAM_BUCKETS) + 1)}
            self._histograms[key] = hist
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)
        for i, bound in enumerate(HISTOGRAM_BUCKETS):
            if value <= bound:
                hist["buckets"][i] += 1
                break
        else:
            hist["buckets"][-1] += 1

    # -- serialization --------------------------------------------------
    @staticmethod
    def _dump_series(series: dict) -> list:
        return [{"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(series.items())]

    def to_dict(self) -> dict:
        return {
            "format": "repro-metrics/v1",
            "base_labels": dict(self.base_labels),
            "counters": self._dump_series(self._counters),
            "gauges": self._dump_series(self._gauges),
            "histograms": [
                {"name": name, "labels": dict(labels), **value}
                for (name, labels), value in sorted(self._histograms.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        registry = cls(payload.get("base_labels") or {})
        for entry in payload.get("counters", ()):
            key = _series_key(entry["name"], entry.get("labels") or {})
            registry._counters[key] = entry["value"]
        for entry in payload.get("gauges", ()):
            key = _series_key(entry["name"], entry.get("labels") or {})
            registry._gauges[key] = entry["value"]
        for entry in payload.get("histograms", ()):
            key = _series_key(entry["name"], entry.get("labels") or {})
            registry._histograms[key] = {
                "count": entry["count"], "sum": entry["sum"],
                "min": entry["min"], "max": entry["max"],
                "buckets": list(entry["buckets"]),
            }
        return registry

    def merge(self, other: "MetricsRegistry | dict") -> "MetricsRegistry":
        """Fold ``other`` into this registry (sums counters, adds
        histograms bucket-wise, last gauge wins).  Returns ``self``."""
        if isinstance(other, dict):
            other = MetricsRegistry.from_dict(other)
        for key, value in other._counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in other._gauges.items():
            self._gauges[key] = value
        for key, hist in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                self._histograms[key] = {
                    "count": hist["count"], "sum": hist["sum"],
                    "min": hist["min"], "max": hist["max"],
                    "buckets": list(hist["buckets"]),
                }
            else:
                mine["count"] += hist["count"]
                mine["sum"] += hist["sum"]
                mine["min"] = min(mine["min"], hist["min"])
                mine["max"] = max(mine["max"], hist["max"])
                mine["buckets"] = [a + b for a, b in
                                   zip(mine["buckets"], hist["buckets"])]
        return self

    def to_prometheus(self) -> str:
        """Prometheus text exposition (0.0.4) of every series."""
        lines = []
        seen_types = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), value in sorted(self._counters.items()):
            metric = _NAME_RE.sub("_", name)
            type_line(metric, "counter")
            lines.append(f"{metric}{_format_labels(labels)} {value:g}")
        for (name, labels), value in sorted(self._gauges.items()):
            metric = _NAME_RE.sub("_", name)
            type_line(metric, "gauge")
            lines.append(f"{metric}{_format_labels(labels)} {value:g}")
        for (name, labels), hist in sorted(self._histograms.items()):
            metric = _NAME_RE.sub("_", name)
            type_line(metric, "histogram")
            cumulative = 0
            for bound, count in zip(HISTOGRAM_BUCKETS, hist["buckets"]):
                cumulative += count
                lines.append(f"{metric}_bucket"
                             f"{_format_labels(labels, [('le', '%g' % bound)])}"
                             f" {cumulative}")
            cumulative += hist["buckets"][-1]
            lines.append(f"{metric}_bucket"
                         f"{_format_labels(labels, [('le', '+Inf')])}"
                         f" {cumulative}")
            lines.append(f"{metric}_sum{_format_labels(labels)} {hist['sum']:g}")
            lines.append(f"{metric}_count{_format_labels(labels)} {hist['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    # -- inspection helpers (tests, report CLI) -------------------------
    def counter_value(self, name: str, **labels: str) -> float:
        return self._counters.get(
            _series_key(name, {**self.base_labels, **labels}), 0)

    def gauge_value(self, name: str, **labels: str) -> Optional[float]:
        return self._gauges.get(
            _series_key(name, {**self.base_labels, **labels}))

    def series(self) -> list:
        """Flat ``(kind, name, labels, value)`` view for reporting."""
        rows = []
        for (name, labels), value in sorted(self._counters.items()):
            rows.append(("counter", name, dict(labels), value))
        for (name, labels), value in sorted(self._gauges.items()):
            rows.append(("gauge", name, dict(labels), value))
        for (name, labels), hist in sorted(self._histograms.items()):
            rows.append(("histogram", name, dict(labels), dict(hist)))
        return rows
