"""``repro.obs`` — unified tracing, metrics, and profiling.

Three opt-in observability layers over the simulator, the sweep
runtime, and the cluster:

- **trace** — a deterministic, sim-time-keyed structured trace
  (:class:`~repro.obs.trace.Tracer`): per-kind engine event accounting
  (scheduled/executed/cancelled/elided) plus protocol-level records
  (midpoint cycle outcomes, EGP OKs/errors and queue depths, swap
  provenance).  Bit-identical for a ``(spec, seed)`` pair across event
  engines and across solo vs cohort execution.
- **metrics** — a labelled counter/gauge/histogram registry
  (:class:`~repro.obs.metrics.MetricsRegistry`) serializing to JSON and
  Prometheus text, aggregated per-run → per-shard → per-sweep; cluster
  workers ship theirs to the coordinator via the idempotent
  ``telemetry`` transport op.
- **profile** — a wall-clock sampling profiler
  (:class:`~repro.obs.profiler.SamplingProfiler`) emitting
  collapsed-stack output for flamegraphs.

Enable via the environment::

    REPRO_OBS=trace,metrics          # features: trace, metrics, profile
    REPRO_OBS_DIR=obs_out            # artifact directory (default .repro_obs)

and render artifacts with ``python -m repro.obs.report <path>``.

With ``REPRO_OBS`` unset nothing is allocated and the instrumented hot
paths reduce to ``if tracer is not None`` guards — simulation outcomes
are bit-identical either way (enforced by tests and
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.obs.logconf import configure_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import SamplingProfiler
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ObsConfig", "ObsSession", "Tracer", "NullTracer", "NULL_TRACER",
    "MetricsRegistry", "SamplingProfiler", "config_from_env",
    "session_from_env", "configure_logging", "obs_features",
    "DEFAULT_OBS_DIR",
]

#: Default artifact directory when ``REPRO_OBS_DIR`` is unset.
DEFAULT_OBS_DIR = ".repro_obs"

_KNOWN_FEATURES = ("trace", "metrics", "profile")
_SLUG_RE = re.compile(r"[^A-Za-z0-9._+=@-]+")


def obs_features(value: Optional[str] = None) -> frozenset:
    """Parse a ``REPRO_OBS``-style feature list (``None`` reads the env).

    Unknown feature names are ignored rather than rejected so that a
    newer config string degrades gracefully on an older tree.
    """
    if value is None:
        value = os.environ.get("REPRO_OBS", "")
    features = {part.strip().lower() for part in value.split(",") if part.strip()}
    if "all" in features:
        return frozenset(_KNOWN_FEATURES)
    return frozenset(features & set(_KNOWN_FEATURES))


@dataclass(frozen=True)
class ObsConfig:
    """Which observability features are on, and where artifacts go."""

    trace: bool = False
    metrics: bool = False
    profile: bool = False
    out_dir: Optional[Path] = None

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics or self.profile


def config_from_env() -> Optional[ObsConfig]:
    """Build an :class:`ObsConfig` from ``REPRO_OBS``/``REPRO_OBS_DIR``.

    Returns ``None`` when no feature is enabled — the caller then skips
    observability entirely (the zero-cost default).
    """
    features = obs_features()
    if not features:
        return None
    out_dir = Path(os.environ.get("REPRO_OBS_DIR", "") or DEFAULT_OBS_DIR)
    return ObsConfig(trace="trace" in features,
                     metrics="metrics" in features,
                     profile="profile" in features,
                     out_dir=out_dir)


def _slug(name: str) -> str:
    return _SLUG_RE.sub("_", name).strip("_") or "run"


class ObsSession:
    """One run's observability state: tracer + metrics + profiler.

    A session is created per simulation run (solo or cohort member),
    attached to the network's engine and protocol entities, and asked to
    write its artifacts once the run finalizes.  Attachment only *sets
    ``tracer`` attributes* — instrumented code reads state, never
    mutates it, so enabling observability cannot perturb outcomes.
    """

    def __init__(self, config: ObsConfig) -> None:
        self.config = config
        self.tracer: Optional[Tracer] = Tracer() if config.trace else None
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.metrics else None)
        self.profiler: Optional[SamplingProfiler] = (
            SamplingProfiler() if config.profile else None)

    # -- attachment ----------------------------------------------------
    def attach_link_network(self, network) -> None:
        """Wire the tracer into a ``LinkLayerNetwork``'s engine/MHP/EGP."""
        if self.tracer is None:
            return
        network.engine.tracer = self.tracer
        network.midpoint.tracer = self.tracer
        for node in network.nodes.values():
            node.mhp.tracer = self.tracer
            node.egp.tracer = self.tracer

    def attach_topology_network(self, network) -> None:
        """Wire the tracer into a ``TopologyNetwork`` (all links + swap)."""
        if self.tracer is None:
            return
        network.engine.tracer = self.tracer
        for link in network.links:
            self.attach_link_network(link.network)
        if network.swap is not None:
            network.swap.tracer = self.tracer

    def start_profiler(self) -> None:
        if self.profiler is not None:
            self.profiler.start()

    def stop_profiler(self) -> None:
        if self.profiler is not None:
            self.profiler.stop()

    # -- run summary ----------------------------------------------------
    def finish_run(self, result) -> None:
        """Record run-level metrics from a finalized ``RunResult``."""
        self.stop_profiler()
        if self.metrics is None:
            return
        self.metrics.counter("repro_run_events_processed_total",
                             result.events_processed)
        self.metrics.counter("repro_run_events_elided_total",
                             result.events_elided)
        self.metrics.counter("repro_run_requests_issued_total",
                             result.requests_issued)
        self.metrics.gauge("repro_run_simulated_seconds", result.simulated_time)

    # -- artifacts ------------------------------------------------------
    def write_artifacts(self, name: str) -> Optional[Path]:
        """Write trace/metrics/profile files under ``out_dir/<name>/``.

        Returns the directory written, or ``None`` when the config has
        no output directory or nothing was collected.
        """
        if self.config.out_dir is None:
            return None
        target = Path(self.config.out_dir) / _slug(name)
        target.mkdir(parents=True, exist_ok=True)
        if self.tracer is not None:
            with open(target / "trace.jsonl", "w", encoding="utf-8") as handle:
                self.tracer.write_jsonl(handle)
        if self.metrics is not None and not self.metrics.is_empty():
            (target / "metrics.json").write_text(
                self.metrics.to_json(indent=2) + "\n", encoding="utf-8")
            (target / "metrics.prom").write_text(
                self.metrics.to_prometheus(), encoding="utf-8")
        if self.profiler is not None and self.profiler.samples:
            (target / "profile.collapsed").write_text(
                self.profiler.collapsed(), encoding="utf-8")
        return target


def session_from_env() -> Optional[ObsSession]:
    """Create a session from the environment, or ``None`` when disabled."""
    config = config_from_env()
    if config is None:
        return None
    return ObsSession(config)
