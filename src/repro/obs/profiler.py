"""Opt-in sampling profiler emitting collapsed-stack output.

A daemon thread periodically samples the target thread's Python stack
via :func:`sys._current_frames` and aggregates identical stacks into
``root;...;leaf count`` lines — the collapsed format consumed by
flamegraph tooling (e.g. ``flamegraph.pl`` or speedscope).

Sampling is wall-clock based and therefore *not* deterministic; the
profiler is strictly an observability aid and never feeds back into
simulation results.  It is enabled only via ``REPRO_OBS=...,profile``.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional

__all__ = ["SamplingProfiler"]


class SamplingProfiler:
    """Sample one thread's stack every ``interval`` seconds."""

    def __init__(self, interval: float = 0.005,
                 thread_ident: Optional[int] = None) -> None:
        self.interval = float(interval)
        self.thread_ident = thread_ident
        self.samples: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        if self.thread_ident is None:
            self.thread_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        ident = self.thread_ident
        samples = self.samples
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(ident)
            if frame is None:
                continue
            parts: List[str] = []
            while frame is not None:
                code = frame.f_code
                filename = code.co_filename.rsplit("/", 1)[-1]
                parts.append(f"{filename}:{code.co_name}")
                frame = frame.f_back
            stack = ";".join(reversed(parts))
            samples[stack] = samples.get(stack, 0) + 1

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``stack count`` line per unique stack."""
        return "".join(f"{stack} {count}\n" for stack, count in
                       sorted(self.samples.items(),
                              key=lambda item: (-item[1], item[0])))

    @property
    def sample_count(self) -> int:
        return sum(self.samples.values())

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
