"""Deterministic structured trace layer.

A :class:`Tracer` collects *sim-time keyed* records from the simulation
layers (engine, MHP/EGP, swap-ASAP) plus per-kind event accounting
(scheduled / executed / cancelled / elided).  Records never contain
wall-clock readings, thread ids, or memory addresses, so the trace of a
``(spec, seed)`` pair is bit-identical across event engines
(heap/calendar/ladder), across backends with equivalent physics, and
across solo vs cohort execution — which makes traces diffable and a
sound input for the planned commutativity analysis.

The zero-cost default is *no tracer at all*: instrumented code holds a
``tracer`` attribute that is ``None`` unless observability is enabled
and guards every emission with ``if tracer is not None`` — the exact
pattern the engine already uses for its ``trace`` list.  A
:data:`NULL_TRACER` is provided for callers that prefer unconditional
calls over guards.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TextIO, Tuple

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "read_jsonl"]


class Tracer:
    """Collects deterministic trace records and per-kind event counts.

    Records are ``(kind, time, name, fields)`` tuples where ``time`` is
    sim-time (seconds) and ``fields`` is a plain dict or ``None``.
    Three record kinds exist:

    - ``"event"`` — a point occurrence (an EGP OK, a swap, a midpoint
      cycle outcome).
    - ``"span"`` — an interval ``[time, fields["end"])`` in sim-time.
    - ``"counter"`` — reserved; counters are aggregated in
      :attr:`counters` instead of being recorded per-occurrence, so
      hot-path counts stay O(1) memory.

    Engine hooks (:meth:`on_scheduled` etc.) aggregate per-kind counts
    without producing records — a run processes hundreds of thousands
    of timer events and per-event records would dwarf the interesting
    protocol-level signal.
    """

    __slots__ = ("records", "scheduled", "executed", "cancelled", "elided",
                 "counters")

    def __init__(self) -> None:
        self.records: List[Tuple[str, float, str, Optional[dict]]] = []
        self.scheduled: Dict[str, int] = {}
        self.executed: Dict[str, int] = {}
        self.cancelled: Dict[str, int] = {}
        self.elided: Dict[str, int] = {}
        self.counters: Dict[str, float] = {}

    # -- record APIs (sim-time keyed) -----------------------------------
    def event(self, time: float, name: str, **fields: Any) -> None:
        """Record a point occurrence at sim-time ``time``."""
        self.records.append(("event", time, name, fields or None))

    def span(self, start: float, end: float, name: str, **fields: Any) -> None:
        """Record an interval ``[start, end)`` in sim-time."""
        fields["end"] = end
        self.records.append(("span", start, name, fields))

    def counter(self, name: str, value: float = 1) -> None:
        """Bump an aggregate counter (no per-occurrence record)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + value

    # -- engine hooks (per-kind aggregation, called from hot paths) -----
    def on_scheduled(self, name: str) -> None:
        d = self.scheduled
        d[name] = d.get(name, 0) + 1

    def on_executed(self, name: str) -> None:
        d = self.executed
        d[name] = d.get(name, 0) + 1

    def on_cancelled(self, name: str) -> None:
        d = self.cancelled
        d[name] = d.get(name, 0) + 1

    def on_elided(self, name: str) -> None:
        d = self.elided
        d[name] = d.get(name, 0) + 1

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic plain-data view (insertion-ordered dicts)."""
        return {
            "records": [
                {"kind": kind, "t": time, "name": name,
                 **({"fields": fields} if fields else {})}
                for kind, time, name, fields in self.records
            ],
            "scheduled": dict(self.scheduled),
            "executed": dict(self.executed),
            "cancelled": dict(self.cancelled),
            "elided": dict(self.elided),
            "counters": dict(self.counters),
        }

    def write_jsonl(self, stream: TextIO) -> None:
        """One JSON object per line: records first, then one summary line.

        ``sort_keys`` plus repr-exact floats keep the byte stream a pure
        function of the record sequence, so files from two equivalent
        runs can be compared with ``cmp``/``diff``.
        """
        for kind, time, name, fields in self.records:
            payload = {"kind": kind, "t": time, "name": name}
            if fields:
                payload["fields"] = fields
            stream.write(json.dumps(payload, sort_keys=True) + "\n")
        stream.write(json.dumps({
            "kind": "summary",
            "scheduled": self.scheduled,
            "executed": self.executed,
            "cancelled": self.cancelled,
            "elided": self.elided,
            "counters": self.counters,
        }, sort_keys=True) + "\n")


class NullTracer(Tracer):
    """A tracer whose every method is a no-op.

    For callers that want to call tracer methods unconditionally; the
    instrumented hot paths instead keep ``tracer = None`` and skip the
    call entirely, which is cheaper still.
    """

    __slots__ = ()

    def event(self, time: float, name: str, **fields: Any) -> None:
        pass

    def span(self, start: float, end: float, name: str, **fields: Any) -> None:
        pass

    def counter(self, name: str, value: float = 1) -> None:
        pass

    def on_scheduled(self, name: str) -> None:
        pass

    def on_executed(self, name: str) -> None:
        pass

    def on_cancelled(self, name: str) -> None:
        pass

    def on_elided(self, name: str) -> None:
        pass


#: Shared no-op tracer instance.
NULL_TRACER = NullTracer()


def read_jsonl(path) -> Tuple[List[dict], Optional[dict]]:
    """Load a trace written by :meth:`Tracer.write_jsonl`.

    Returns ``(records, summary)`` where ``summary`` is the trailing
    per-kind accounting line (or ``None`` for truncated files).
    """
    records: List[dict] = []
    summary: Optional[dict] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("kind") == "summary":
                summary = payload
            else:
                records.append(payload)
    return records, summary
