"""Logging configuration for the ``repro.*`` logger hierarchy.

Library modules log to ``logging.getLogger("repro.<area>")`` and never
configure handlers themselves; CLIs call :func:`configure_logging` so
their former ``print()`` messages keep appearing (as INFO) by default.

Level resolution, highest priority first:

1. ``--verbose`` CLI flag → DEBUG
2. ``REPRO_LOG`` env var (a level name like ``debug``/``warning``)
3. default → INFO (matches the old print() visibility)
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional, TextIO

__all__ = ["configure_logging"]

#: Plain message format — the CLI output stays byte-identical to the
#: print() calls it replaced; level/name prefixes appear only at DEBUG.
_PLAIN_FORMAT = "%(message)s"
_DEBUG_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"


def configure_logging(verbose: bool = False,
                      stream: Optional[TextIO] = None) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root logger (idempotent).

    Returns the configured ``repro`` logger.  Calling it twice replaces
    the previous handler rather than stacking duplicates.
    """
    if verbose:
        level = logging.DEBUG
    else:
        env = os.environ.get("REPRO_LOG", "").strip().upper()
        level = getattr(logging, env, None) if env else None
        if not isinstance(level, int):
            level = logging.INFO

    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)

    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    fmt = _DEBUG_FORMAT if level <= logging.DEBUG else _PLAIN_FORMAT
    handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
