"""Resume cache for sweeps and cluster workers.

Each completed scenario is persisted as one JSON file keyed by a hash of the
scenario *identity* (hardware, workload, scheduler, batch size) plus the
derived seed and simulated duration, with the resolved physics backend and
event engine as filename suffixes.  Keeping the cache version, backend and
engine *out* of the hash — they were folded into it before PR 3 — means a
stale or foreign entry is *found and reported* instead of silently missed: a
sweep can tell the operator "skipped, written by cache version 2" rather
than quietly recomputing.

Skip reasons are logged through the ``repro.runtime.cache`` logger and
surfaced via :class:`CacheReport` (see ``SweepRunner.cache_report()``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports us)
    from repro.runtime.scenarios import ScenarioSpec
    from repro.runtime.sweep import ScenarioOutcome

#: Cache-format version; bump when the outcome schema or file layout changes.
#: v3: wrapper payload {cache_version, backend, outcome} with the backend in
#: the filename instead of the key hash; outcomes record events_processed.
#: v4: the event engine joins the filename (``<key>.<backend>.<engine>.json``)
#: and the wrapper payload; outcomes record the engine.
#: v5: outcomes record the cohort size when produced by a vectorized cohort
#: (``None`` on the solo path) — provenance like the engine field.
#: v6: the wrapper payload records the topology (name + identity hash,
#: ``None`` for single-link scenarios) so a topology redefinition under an
#: unchanged scenario name is found and reported, and outcomes carry the
#: per-hop / end-to-end fields of topology runs.
#: v7: outcomes record ``events_elided`` (events skipped outright by
#: outcome-preserving timer elision) alongside ``events_processed`` —
#: provenance like the engine field, but old entries would silently
#: report 0, so the version forces a recompute.
#: v8: guarded sweeps persist *failed* outcomes too, with an ``attempts``
#: count in the wrapper payload, so retry budgets and quarantine decisions
#: survive resumes (unguarded sweeps still cache only successes).
CACHE_VERSION = 8

#: Canonical filename of the persisted scenario cost model (see
#: :class:`repro.cluster.planner.RecordedCostModel`): it lives next to the
#: resume cache (or in the cluster directory) so every completed sweep
#: calibrates the next plan.
COST_MODEL_NAME = "cost_model.json"

logger = logging.getLogger("repro.runtime.cache")


def cost_model_path(directory: "str | Path") -> Path:
    """The cost-model file for a cache/cluster directory."""
    return Path(directory) / COST_MODEL_NAME


#: Monotonic discriminator for concurrent :func:`atomic_write_text` calls —
#: ``next()`` on :func:`itertools.count` is atomic under the GIL, so two
#: threads can never draw the same value.
_tmp_counter = itertools.count()


def atomic_write_text(path: Path, text: str, durable: bool = False) -> None:
    """Write ``text`` via a private tmp file and atomic rename.

    The single atomic-persistence idiom shared by the resume cache, the
    result sinks and the cluster protocol: concurrent writers never
    interleave, the last rename wins with a complete file, and a killed
    process never leaves a torn file at ``path``.  Tmp names carry the pid,
    the thread id *and* a per-process counter — pid alone is not enough once
    one process writes from several threads (the TCP coordinator's handler
    threads share a pid; two of them sharing one tmp file would interleave
    text and race the rename).

    With ``durable`` the tmp file is fsynced before the rename, so the
    rename can never expose a file whose *contents* are still in the page
    cache — required wherever a reader treats the file's existence as proof
    of durability (done markers vs. sink records).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}"
                         f".{threading.get_ident()}.{next(_tmp_counter)}.tmp")
    with tmp.open("w") as handle:
        handle.write(text)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    tmp.replace(path)


def _topology_stamp(spec: "ScenarioSpec") -> Optional[dict]:
    """The topology recorded in (and checked against) a cache entry.

    Like the backend and engine, the topology lives in the wrapper payload
    rather than the key hash: redefining a scenario's topology without
    renaming it then *finds* the stale entry and reports a skip instead of
    silently recomputing under a fresh key.
    """
    topology = getattr(spec, "topology", None)
    if topology is None:
        return None
    return {"name": topology.name, "key": topology.identity_key()}


def _topology_label(stamp: Optional[dict]) -> str:
    if not isinstance(stamp, dict):
        return "a single-link scenario"
    return f"topology {stamp.get('name')!r} ({stamp.get('key')})"


@dataclass
class CacheSkip:
    """One cache entry that was found but could not be used."""

    scenario_name: str
    reason: str


@dataclass
class CacheReport:
    """What the resume cache did for one sweep (or worker) run."""

    #: Scenario names served from cache.
    hits: list[str] = field(default_factory=list)
    #: Scenario names with no cache entry at all.
    misses: list[str] = field(default_factory=list)
    #: Entries that existed but were skipped, with the reason.
    skips: list[CacheSkip] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        """Summary counters (hits / misses / skips)."""
        return {"hits": len(self.hits), "misses": len(self.misses),
                "skips": len(self.skips)}

    def describe(self) -> str:
        """Human-readable multi-line summary (used by examples)."""
        lines = [f"resume cache: {len(self.hits)} hit(s), "
                 f"{len(self.misses)} miss(es), {len(self.skips)} skipped"]
        for skip in self.skips:
            lines.append(f"  skipped {skip.scenario_name}: {skip.reason}")
        return "\n".join(lines)


class ResumeCache:
    """Per-scenario result cache shared by :class:`SweepRunner` and cluster
    workers.

    Unguarded runs store only successful outcomes, so failures are retried
    on the next attempt.  Guarded runs (``repro.runtime.guard``) also
    persist failed outcomes together with an ``attempts`` count, so the
    retry budget — and a quarantine decision — survives resumes.  Writes
    are atomic (tmp + rename): a killed run never leaves a half-written
    entry.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def key(spec: "ScenarioSpec", seed: int, duration: float) -> str:
        """Hash of everything that determines a scenario's result — except
        the backend, engine and cache version, which live in the filename
        and entry payload so that mismatches are detectable."""
        payload = {
            "identity": spec.identity_payload(),
            "seed": seed,
            "duration": duration,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=repr).encode()
        ).hexdigest()
        return digest[:20]

    def path(self, spec: "ScenarioSpec", seed: int, duration: float,
             backend: Optional[str] = None,
             engine: Optional[str] = None) -> Path:
        """Cache file for ``spec`` under the given (or resolved) backend and
        event engine."""
        backend = backend or spec.backend_name()
        engine = engine or spec.engine_name()
        return self.directory / (f"{self.key(spec, seed, duration)}"
                                 f".{backend}.{engine}.json")

    # ------------------------------------------------------------------ #
    # Load / store
    # ------------------------------------------------------------------ #
    def load(self, spec: "ScenarioSpec", seed: int, duration: float,
             max_attempts: Optional[int] = None,
             ) -> tuple[Optional["ScenarioOutcome"], Optional[str]]:
        """Look up a cached outcome.

        Returns ``(outcome, None)`` on a usable hit, ``(None, None)`` on a
        plain miss, and ``(None, reason)`` when an entry was found but had to
        be skipped (wrong cache version, different backend or engine,
        corrupt, or a recorded failure).  Skips are logged.

        ``max_attempts`` is the guard's retry budget: a recorded failure
        that already spent it — or was explicitly quarantined — is returned
        as a hit (it stays retired across resumes) instead of being
        retried; failures with budget left report their attempt count in
        the skip reason.  Without it, every recorded failure retries.
        """
        from repro.runtime.sweep import ScenarioOutcome

        backend = spec.backend_name()
        engine = spec.engine_name()
        path = self.path(spec, seed, duration, backend=backend, engine=engine)
        if not path.exists():
            reason = self._foreign_variant_reason(spec, seed, duration,
                                                  backend, engine)
            if reason is not None:
                self._log_skip(spec.name, reason)
            return None, reason
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            reason = f"corrupt cache entry ({error.msg} at char {error.pos})"
            self._log_skip(spec.name, reason)
            return None, reason
        if not isinstance(data, dict) or "outcome" not in data:
            reason = "unversioned legacy cache entry (pre-v3 layout)"
            self._log_skip(spec.name, reason)
            return None, reason
        version = data.get("cache_version")
        if version != CACHE_VERSION:
            reason = (f"cache entry written by cache version {version}, "
                      f"this run uses {CACHE_VERSION}")
            self._log_skip(spec.name, reason)
            return None, reason
        entry_backend = data.get("backend")
        if entry_backend != backend:
            reason = (f"cache entry written under backend "
                      f"{entry_backend!r}, this run resolves to {backend!r}")
            self._log_skip(spec.name, reason)
            return None, reason
        entry_engine = data.get("engine")
        if entry_engine != engine:
            reason = (f"cache entry written under event engine "
                      f"{entry_engine!r}, this run resolves to {engine!r}")
            self._log_skip(spec.name, reason)
            return None, reason
        expected_topology = _topology_stamp(spec)
        entry_topology = data.get("topology")
        if entry_topology != expected_topology:
            reason = (f"cache entry written under "
                      f"{_topology_label(entry_topology)}, this run uses "
                      f"{_topology_label(expected_topology)}")
            self._log_skip(spec.name, reason)
            return None, reason
        try:
            outcome = ScenarioOutcome.from_dict(data["outcome"])
        except (KeyError, TypeError) as error:
            reason = f"corrupt cache entry ({error!r})"
            self._log_skip(spec.name, reason)
            return None, reason
        if not outcome.ok:
            attempts = data.get("attempts")
            if outcome.status == "quarantined" or (
                    max_attempts is not None and attempts is not None
                    and int(attempts) >= max_attempts):
                # The scenario exhausted its retry budget in a previous
                # run — quarantine is durable across resumes.
                outcome.from_cache = True
                return outcome, None
            if attempts is not None and max_attempts is not None:
                reason = (f"cache entry records a failed run (attempt "
                          f"{attempts}/{max_attempts}); retrying")
            else:
                reason = "cache entry records a failed run; retrying"
            self._log_skip(spec.name, reason)
            return None, reason
        outcome.from_cache = True
        return outcome, None

    def recorded_attempts(self, spec: "ScenarioSpec", seed: int,
                          duration: float) -> int:
        """Attempts already charged against ``spec`` by previous runs.

        Reads the ``attempts`` count of a recorded failure for the same
        cache identity (version, backend, engine); 0 when there is no such
        entry.  Lets a resumed guarded sweep continue a retry budget
        instead of resetting it.
        """
        path = self.path(spec, seed, duration)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return 0
        if not isinstance(data, dict):
            return 0
        if data.get("cache_version") != CACHE_VERSION:
            return 0
        if (data.get("backend") != spec.backend_name()
                or data.get("engine") != spec.engine_name()):
            return 0
        attempts = data.get("attempts")
        return int(attempts) if isinstance(attempts, int) else 0

    def store(self, spec: "ScenarioSpec", outcome: "ScenarioOutcome",
              duration: float, attempts: Optional[int] = None) -> None:
        """Persist an outcome.

        Successful outcomes are always stored.  Failed outcomes are stored
        only when ``attempts`` is given (a guarded run tracking its retry
        budget) — the count lands in the wrapper payload so the budget
        survives resumes; unguarded runs keep the never-cache-failures
        behavior.
        """
        if not outcome.ok and attempts is None:
            return
        path = self.path(spec, outcome.seed, duration,
                         backend=outcome.backend, engine=outcome.engine)
        payload = {
            "cache_version": CACHE_VERSION,
            "backend": outcome.backend,
            "engine": outcome.engine,
            "topology": _topology_stamp(spec),
            "outcome": outcome.to_dict(),
        }
        if attempts is not None:
            payload["attempts"] = int(attempts)
        atomic_write_text(path, json.dumps(payload))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _foreign_variant_reason(self, spec: "ScenarioSpec", seed: int,
                                duration: float, backend: str,
                                engine: str) -> Optional[str]:
        """Report entries for the same scenario under *other* backends or
        event engines (including pre-v4 entries without an engine suffix)."""
        stem = self.key(spec, seed, duration)
        siblings = sorted(self.directory.glob(f"{stem}.*.json"))
        if not siblings:
            return None
        others = [path.name[len(stem) + 1:-len(".json")] for path in siblings]
        variants = ", ".join(
            " + ".join(repr(part) for part in other.split("."))
            for other in others)
        return (f"cache entry exists only under {variants}, this run "
                f"resolves to {backend!r} + {engine!r}")

    @staticmethod
    def _log_skip(scenario_name: str, reason: str) -> None:
        logger.info("resume cache skip for %s: %s", scenario_name, reason)
