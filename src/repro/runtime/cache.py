"""Resume cache for sweeps and cluster workers.

Each completed scenario is persisted as one JSON file keyed by a hash of the
scenario *identity* (hardware, workload, scheduler, batch size) plus the
derived seed and simulated duration, with the resolved physics backend and
event engine as filename suffixes.  Keeping the cache version, backend and
engine *out* of the hash — they were folded into it before PR 3 — means a
stale or foreign entry is *found and reported* instead of silently missed: a
sweep can tell the operator "skipped, written by cache version 2" rather
than quietly recomputing.

Skip reasons are logged through the ``repro.runtime.cache`` logger and
surfaced via :class:`CacheReport` (see ``SweepRunner.cache_report()``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports us)
    from repro.runtime.scenarios import ScenarioSpec
    from repro.runtime.sweep import ScenarioOutcome

#: Cache-format version; bump when the outcome schema or file layout changes.
#: v3: wrapper payload {cache_version, backend, outcome} with the backend in
#: the filename instead of the key hash; outcomes record events_processed.
#: v4: the event engine joins the filename (``<key>.<backend>.<engine>.json``)
#: and the wrapper payload; outcomes record the engine.
#: v5: outcomes record the cohort size when produced by a vectorized cohort
#: (``None`` on the solo path) — provenance like the engine field.
#: v6: the wrapper payload records the topology (name + identity hash,
#: ``None`` for single-link scenarios) so a topology redefinition under an
#: unchanged scenario name is found and reported, and outcomes carry the
#: per-hop / end-to-end fields of topology runs.
#: v7: outcomes record ``events_elided`` (events skipped outright by
#: outcome-preserving timer elision) alongside ``events_processed`` —
#: provenance like the engine field, but old entries would silently
#: report 0, so the version forces a recompute.
CACHE_VERSION = 7

#: Canonical filename of the persisted scenario cost model (see
#: :class:`repro.cluster.planner.RecordedCostModel`): it lives next to the
#: resume cache (or in the cluster directory) so every completed sweep
#: calibrates the next plan.
COST_MODEL_NAME = "cost_model.json"

logger = logging.getLogger("repro.runtime.cache")


def cost_model_path(directory: "str | Path") -> Path:
    """The cost-model file for a cache/cluster directory."""
    return Path(directory) / COST_MODEL_NAME


#: Monotonic discriminator for concurrent :func:`atomic_write_text` calls —
#: ``next()`` on :func:`itertools.count` is atomic under the GIL, so two
#: threads can never draw the same value.
_tmp_counter = itertools.count()


def atomic_write_text(path: Path, text: str, durable: bool = False) -> None:
    """Write ``text`` via a private tmp file and atomic rename.

    The single atomic-persistence idiom shared by the resume cache, the
    result sinks and the cluster protocol: concurrent writers never
    interleave, the last rename wins with a complete file, and a killed
    process never leaves a torn file at ``path``.  Tmp names carry the pid,
    the thread id *and* a per-process counter — pid alone is not enough once
    one process writes from several threads (the TCP coordinator's handler
    threads share a pid; two of them sharing one tmp file would interleave
    text and race the rename).

    With ``durable`` the tmp file is fsynced before the rename, so the
    rename can never expose a file whose *contents* are still in the page
    cache — required wherever a reader treats the file's existence as proof
    of durability (done markers vs. sink records).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}"
                         f".{threading.get_ident()}.{next(_tmp_counter)}.tmp")
    with tmp.open("w") as handle:
        handle.write(text)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    tmp.replace(path)


def _topology_stamp(spec: "ScenarioSpec") -> Optional[dict]:
    """The topology recorded in (and checked against) a cache entry.

    Like the backend and engine, the topology lives in the wrapper payload
    rather than the key hash: redefining a scenario's topology without
    renaming it then *finds* the stale entry and reports a skip instead of
    silently recomputing under a fresh key.
    """
    topology = getattr(spec, "topology", None)
    if topology is None:
        return None
    return {"name": topology.name, "key": topology.identity_key()}


def _topology_label(stamp: Optional[dict]) -> str:
    if not isinstance(stamp, dict):
        return "a single-link scenario"
    return f"topology {stamp.get('name')!r} ({stamp.get('key')})"


@dataclass
class CacheSkip:
    """One cache entry that was found but could not be used."""

    scenario_name: str
    reason: str


@dataclass
class CacheReport:
    """What the resume cache did for one sweep (or worker) run."""

    #: Scenario names served from cache.
    hits: list[str] = field(default_factory=list)
    #: Scenario names with no cache entry at all.
    misses: list[str] = field(default_factory=list)
    #: Entries that existed but were skipped, with the reason.
    skips: list[CacheSkip] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        """Summary counters (hits / misses / skips)."""
        return {"hits": len(self.hits), "misses": len(self.misses),
                "skips": len(self.skips)}

    def describe(self) -> str:
        """Human-readable multi-line summary (used by examples)."""
        lines = [f"resume cache: {len(self.hits)} hit(s), "
                 f"{len(self.misses)} miss(es), {len(self.skips)} skipped"]
        for skip in self.skips:
            lines.append(f"  skipped {skip.scenario_name}: {skip.reason}")
        return "\n".join(lines)


class ResumeCache:
    """Per-scenario result cache shared by :class:`SweepRunner` and cluster
    workers.

    Only successful outcomes are stored, so failures are retried on the next
    attempt.  Writes are atomic (tmp + rename): a killed run never leaves a
    half-written entry.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def key(spec: "ScenarioSpec", seed: int, duration: float) -> str:
        """Hash of everything that determines a scenario's result — except
        the backend, engine and cache version, which live in the filename
        and entry payload so that mismatches are detectable."""
        payload = {
            "identity": spec.identity_payload(),
            "seed": seed,
            "duration": duration,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=repr).encode()
        ).hexdigest()
        return digest[:20]

    def path(self, spec: "ScenarioSpec", seed: int, duration: float,
             backend: Optional[str] = None,
             engine: Optional[str] = None) -> Path:
        """Cache file for ``spec`` under the given (or resolved) backend and
        event engine."""
        backend = backend or spec.backend_name()
        engine = engine or spec.engine_name()
        return self.directory / (f"{self.key(spec, seed, duration)}"
                                 f".{backend}.{engine}.json")

    # ------------------------------------------------------------------ #
    # Load / store
    # ------------------------------------------------------------------ #
    def load(self, spec: "ScenarioSpec", seed: int, duration: float,
             ) -> tuple[Optional["ScenarioOutcome"], Optional[str]]:
        """Look up a cached outcome.

        Returns ``(outcome, None)`` on a usable hit, ``(None, None)`` on a
        plain miss, and ``(None, reason)`` when an entry was found but had to
        be skipped (wrong cache version, different backend or engine,
        corrupt, or a recorded failure).  Skips are logged.
        """
        from repro.runtime.sweep import ScenarioOutcome

        backend = spec.backend_name()
        engine = spec.engine_name()
        path = self.path(spec, seed, duration, backend=backend, engine=engine)
        if not path.exists():
            reason = self._foreign_variant_reason(spec, seed, duration,
                                                  backend, engine)
            if reason is not None:
                self._log_skip(spec.name, reason)
            return None, reason
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            reason = f"corrupt cache entry ({error.msg} at char {error.pos})"
            self._log_skip(spec.name, reason)
            return None, reason
        if not isinstance(data, dict) or "outcome" not in data:
            reason = "unversioned legacy cache entry (pre-v3 layout)"
            self._log_skip(spec.name, reason)
            return None, reason
        version = data.get("cache_version")
        if version != CACHE_VERSION:
            reason = (f"cache entry written by cache version {version}, "
                      f"this run uses {CACHE_VERSION}")
            self._log_skip(spec.name, reason)
            return None, reason
        entry_backend = data.get("backend")
        if entry_backend != backend:
            reason = (f"cache entry written under backend "
                      f"{entry_backend!r}, this run resolves to {backend!r}")
            self._log_skip(spec.name, reason)
            return None, reason
        entry_engine = data.get("engine")
        if entry_engine != engine:
            reason = (f"cache entry written under event engine "
                      f"{entry_engine!r}, this run resolves to {engine!r}")
            self._log_skip(spec.name, reason)
            return None, reason
        expected_topology = _topology_stamp(spec)
        entry_topology = data.get("topology")
        if entry_topology != expected_topology:
            reason = (f"cache entry written under "
                      f"{_topology_label(entry_topology)}, this run uses "
                      f"{_topology_label(expected_topology)}")
            self._log_skip(spec.name, reason)
            return None, reason
        try:
            outcome = ScenarioOutcome.from_dict(data["outcome"])
        except (KeyError, TypeError) as error:
            reason = f"corrupt cache entry ({error!r})"
            self._log_skip(spec.name, reason)
            return None, reason
        if not outcome.ok:
            reason = "cache entry records a failed run; retrying"
            self._log_skip(spec.name, reason)
            return None, reason
        outcome.from_cache = True
        return outcome, None

    def store(self, spec: "ScenarioSpec", outcome: "ScenarioOutcome",
              duration: float) -> None:
        """Persist a successful outcome (failures are never cached)."""
        if not outcome.ok:
            return
        path = self.path(spec, outcome.seed, duration,
                         backend=outcome.backend, engine=outcome.engine)
        payload = {
            "cache_version": CACHE_VERSION,
            "backend": outcome.backend,
            "engine": outcome.engine,
            "topology": _topology_stamp(spec),
            "outcome": outcome.to_dict(),
        }
        atomic_write_text(path, json.dumps(payload))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _foreign_variant_reason(self, spec: "ScenarioSpec", seed: int,
                                duration: float, backend: str,
                                engine: str) -> Optional[str]:
        """Report entries for the same scenario under *other* backends or
        event engines (including pre-v4 entries without an engine suffix)."""
        stem = self.key(spec, seed, duration)
        siblings = sorted(self.directory.glob(f"{stem}.*.json"))
        if not siblings:
            return None
        others = [path.name[len(stem) + 1:-len(".json")] for path in siblings]
        variants = ", ".join(
            " + ".join(repr(part) for part in other.split("."))
            for other in others)
        return (f"cache entry exists only under {variants}, this run "
                f"resolves to {backend!r} + {engine!r}")

    @staticmethod
    def _log_skip(scenario_name: str, reason: str) -> None:
        logger.info("resume cache skip for %s: %s", scenario_name, reason)
