"""Catalogue of the paper's evaluation scenarios.

Two families are provided:

* *single-kind* scenarios (Section 6.2): only one request kind (NL, CK or MD)
  with load *Low* (f=0.7), *High* (f=0.99) or *Ultra* (f=1.5), different
  ``k_max`` values and different request origins — the grid behind the 169
  long-run scenarios;

* *mixed-kind* scenarios (Section 6.3 and Appendix C.2): the usage patterns
  Uniform / MoreNL / MoreCK / MoreMD / NoNLMoreCK / NoNLMoreMD combined with
  the FCFS, LowerWFQ and HigherWFQ schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.messages import Priority
from repro.hardware.parameters import ScenarioConfig, lab_scenario, ql2020_scenario
from repro.runtime.runner import RunResult, SimulationRun
from repro.runtime.workload import UsagePattern, WorkloadSpec

#: Load levels of the long runs (Section 6): name -> f_P.
LONG_RUN_LOADS: dict[str, float] = {"Low": 0.7, "High": 0.99, "Ultra": 1.5}

#: Default fixed target fidelity of the long runs.
DEFAULT_MIN_FIDELITY = 0.64


def _pattern(name: str, nl: float, ck: float, md: float,
             nl_pairs: int = 3, ck_pairs: int = 3, md_pairs: int = 256,
             min_fidelity: float = DEFAULT_MIN_FIDELITY) -> UsagePattern:
    specs = []
    if nl > 0:
        specs.append(WorkloadSpec(priority=Priority.NL, load_fraction=nl,
                                  max_pairs=nl_pairs,
                                  min_fidelity=min_fidelity))
    if ck > 0:
        specs.append(WorkloadSpec(priority=Priority.CK, load_fraction=ck,
                                  max_pairs=ck_pairs,
                                  min_fidelity=min_fidelity))
    if md > 0:
        specs.append(WorkloadSpec(priority=Priority.MD, load_fraction=md,
                                  max_pairs=md_pairs,
                                  min_fidelity=min_fidelity))
    return UsagePattern(name=name, specs=tuple(specs))


#: The usage patterns of Appendix C.2, Table 2.
USAGE_PATTERNS: dict[str, UsagePattern] = {
    "Uniform": _pattern("Uniform", 0.99 / 3, 0.99 / 3, 0.99 / 3,
                        nl_pairs=1, ck_pairs=1, md_pairs=1),
    "MoreNL": _pattern("MoreNL", 0.99 * 4 / 6, 0.99 / 6, 0.99 / 6),
    "MoreCK": _pattern("MoreCK", 0.99 / 6, 0.99 * 4 / 6, 0.99 / 6),
    "MoreMD": _pattern("MoreMD", 0.99 / 6, 0.99 / 6, 0.99 * 4 / 6),
    "NoNLMoreCK": _pattern("NoNLMoreCK", 0.0, 0.99 * 4 / 5, 0.99 / 5),
    "NoNLMoreMD": _pattern("NoNLMoreMD", 0.0, 0.99 / 5, 0.99 * 4 / 5),
}


@dataclass
class ScenarioSpec:
    """A fully specified simulation scenario ready to run."""

    name: str
    scenario: ScenarioConfig
    workload: tuple[WorkloadSpec, ...]
    scheduler: str = "FCFS"
    seed: int = 12345
    attempt_batch_size: int = 1

    def run(self, duration: float, seed: Optional[int] = None,
            attempt_batch_size: Optional[int] = None) -> RunResult:
        """Build and run the scenario for ``duration`` simulated seconds."""
        batch = (self.attempt_batch_size if attempt_batch_size is None
                 else attempt_batch_size)
        simulation = SimulationRun(self.scenario, self.workload,
                                   scheduler=self.scheduler,
                                   seed=self.seed if seed is None else seed,
                                   attempt_batch_size=batch)
        return simulation.run(duration)


def _hardware(name: str) -> ScenarioConfig:
    if name.lower() == "lab":
        return lab_scenario()
    if name.lower() == "ql2020":
        return ql2020_scenario()
    raise ValueError(f"unknown hardware scenario {name!r}")


def single_kind_scenarios(hardware: str = "Lab",
                          kinds: tuple[str, ...] = ("NL", "CK", "MD"),
                          loads: tuple[str, ...] = ("Low", "High", "Ultra"),
                          max_pairs_options: tuple[int, ...] = (1, 3),
                          origins: tuple[str, ...] = ("A", "B", "random"),
                          min_fidelity: float = DEFAULT_MIN_FIDELITY,
                          ) -> list[ScenarioSpec]:
    """The single-kind scenario grid of the long runs (Section 6.2).

    The full paper grid (both hardware setups, MD with k_max=255, three
    origins) contains 169 scenarios; this function generates any sub-grid of
    it.
    """
    config = _hardware(hardware)
    specs = []
    for kind in kinds:
        priority = Priority[kind]
        for load_name in loads:
            load = LONG_RUN_LOADS[load_name]
            pair_options = max_pairs_options
            if kind == "MD" and 255 not in pair_options:
                pair_options = tuple(max_pairs_options)
            for max_pairs in pair_options:
                for origin in origins:
                    workload = WorkloadSpec(priority=priority,
                                            load_fraction=load,
                                            max_pairs=max_pairs,
                                            origin=origin,
                                            min_fidelity=min_fidelity)
                    name = (f"{hardware}_{kind}_{load_name}_k{max_pairs}_"
                            f"origin{origin.upper()[0]}")
                    specs.append(ScenarioSpec(name=name, scenario=config,
                                              workload=(workload,)))
    return specs


def mixed_kind_scenarios(hardware: str = "QL2020",
                         patterns: tuple[str, ...] = tuple(USAGE_PATTERNS),
                         schedulers: tuple[str, ...] = ("FCFS", "HigherWFQ"),
                         ) -> list[ScenarioSpec]:
    """Mixed-priority scenarios of Section 6.3 / Appendix C.2."""
    config = _hardware(hardware)
    specs = []
    for pattern_name in patterns:
        pattern = USAGE_PATTERNS[pattern_name]
        for scheduler in schedulers:
            name = f"{hardware}_{pattern.name}_{scheduler}"
            specs.append(ScenarioSpec(name=name, scenario=config,
                                      workload=pattern.specs,
                                      scheduler=scheduler))
    return specs


def table1_scenarios(hardware: str = "QL2020") -> list[ScenarioSpec]:
    """The two request patterns of Table 1 (uniform, and no-NL-more-MD).

    Pairs per request are fixed: 2 (NL), 2 (CK) and 10 (MD).
    """
    config = _hardware(hardware)
    uniform = (
        WorkloadSpec(priority=Priority.NL, load_fraction=0.99 / 3, num_pairs=2),
        WorkloadSpec(priority=Priority.CK, load_fraction=0.99 / 3, num_pairs=2),
        WorkloadSpec(priority=Priority.MD, load_fraction=0.99 / 3, num_pairs=10),
    )
    no_nl_more_md = (
        WorkloadSpec(priority=Priority.CK, load_fraction=0.99 / 5, num_pairs=2),
        WorkloadSpec(priority=Priority.MD, load_fraction=0.99 * 4 / 5, num_pairs=10),
    )
    specs = []
    for pattern_name, workload in (("uniform", uniform),
                                   ("noNLmoreMD", no_nl_more_md)):
        for scheduler in ("FCFS", "HigherWFQ"):
            specs.append(ScenarioSpec(name=f"table1_{pattern_name}_{scheduler}",
                                      scenario=config, workload=workload,
                                      scheduler=scheduler))
    return specs
