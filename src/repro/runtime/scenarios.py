"""Catalogue of the paper's evaluation scenarios.

Two families are provided:

* *single-kind* scenarios (Section 6.2): only one request kind (NL, CK or MD)
  with load *Low* (f=0.7), *High* (f=0.99) or *Ultra* (f=1.5), different
  ``k_max`` values and different request origins — the grid behind the 169
  long-run scenarios;

* *mixed-kind* scenarios (Section 6.3 and Appendix C.2): the usage patterns
  Uniform / MoreNL / MoreCK / MoreMD / NoNLMoreCK / NoNLMoreMD combined with
  the FCFS, LowerWFQ and HigherWFQ schedulers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.core.messages import Priority, RequestType
from repro.hardware.parameters import ScenarioConfig, lab_scenario, ql2020_scenario
from repro.runtime.runner import RunResult, SimulationRun
from repro.runtime.workload import UsagePattern, WorkloadSpec
from repro.topology.spec import Topology, build_dataclass as _build_dataclass

#: Load levels of the long runs (Section 6): name -> f_P.
LONG_RUN_LOADS: dict[str, float] = {"Low": 0.7, "High": 0.99, "Ultra": 1.5}

#: Default fixed target fidelity of the long runs.
DEFAULT_MIN_FIDELITY = 0.64


def _pattern(name: str, nl: float, ck: float, md: float,
             nl_pairs: int = 3, ck_pairs: int = 3, md_pairs: int = 256,
             min_fidelity: float = DEFAULT_MIN_FIDELITY) -> UsagePattern:
    specs = []
    if nl > 0:
        specs.append(WorkloadSpec(priority=Priority.NL, load_fraction=nl,
                                  max_pairs=nl_pairs,
                                  min_fidelity=min_fidelity))
    if ck > 0:
        specs.append(WorkloadSpec(priority=Priority.CK, load_fraction=ck,
                                  max_pairs=ck_pairs,
                                  min_fidelity=min_fidelity))
    if md > 0:
        specs.append(WorkloadSpec(priority=Priority.MD, load_fraction=md,
                                  max_pairs=md_pairs,
                                  min_fidelity=min_fidelity))
    return UsagePattern(name=name, specs=tuple(specs))


#: The usage patterns of Appendix C.2, Table 2.
USAGE_PATTERNS: dict[str, UsagePattern] = {
    "Uniform": _pattern("Uniform", 0.99 / 3, 0.99 / 3, 0.99 / 3,
                        nl_pairs=1, ck_pairs=1, md_pairs=1),
    "MoreNL": _pattern("MoreNL", 0.99 * 4 / 6, 0.99 / 6, 0.99 / 6),
    "MoreCK": _pattern("MoreCK", 0.99 / 6, 0.99 * 4 / 6, 0.99 / 6),
    "MoreMD": _pattern("MoreMD", 0.99 / 6, 0.99 / 6, 0.99 * 4 / 6),
    "NoNLMoreCK": _pattern("NoNLMoreCK", 0.0, 0.99 * 4 / 5, 0.99 / 5),
    "NoNLMoreMD": _pattern("NoNLMoreMD", 0.0, 0.99 / 5, 0.99 * 4 / 5),
}


@dataclass
class ScenarioSpec:
    """A fully specified simulation scenario ready to run."""

    name: str
    scenario: ScenarioConfig
    workload: tuple[WorkloadSpec, ...]
    scheduler: str = "FCFS"
    seed: int = 12345
    attempt_batch_size: int = 1
    #: Physics backend name; ``None`` resolves through ``REPRO_BACKEND``.
    #: Kept as a string (not an instance) so specs stay picklable for sweep
    #: workers and hashable for the sweep cache.
    backend: Optional[str] = None
    #: Event-engine (queue implementation) name; ``None`` resolves through
    #: ``REPRO_ENGINE``.  A string for the same reasons as ``backend``.
    engine: Optional[str] = None
    #: Multi-link network topology (:class:`repro.topology.Topology`);
    #: ``None`` keeps the classic single-link run.  When set, ``scenario``
    #: still names the per-link hardware used for display/cost features, but
    #: the per-link parameters come from the topology's link specs and the
    #: run dispatches to :class:`repro.topology.run.TopologyRun`.
    topology: Optional[Topology] = None

    def backend_name(self) -> str:
        """The concrete backend name this spec resolves to right now."""
        from repro.backends import resolve_backend_name

        return resolve_backend_name(self.backend)

    def engine_name(self) -> str:
        """The concrete event-engine name this spec resolves to right now."""
        from repro.sim.queues import resolve_engine_name

        return resolve_engine_name(self.engine)

    # ------------------------------------------------------------------ #
    # Serialisation and identity (cluster plans, resume cache, cost models)
    # ------------------------------------------------------------------ #
    def scheduler_name(self) -> str:
        """Scheduler name whether ``scheduler`` is a string or an instance."""
        return (self.scheduler if isinstance(self.scheduler, str)
                else self.scheduler.name)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (cluster plan files).

        Scheduler instances are flattened to their name — a spec rebuilt
        from this dict resolves the scheduler through
        :func:`repro.core.scheduler.make_scheduler`, so custom instances must
        be registered there to survive a plan round-trip.
        """
        return {
            "name": self.name,
            "scenario": dataclasses.asdict(self.scenario),
            "workload": [{**dataclasses.asdict(w), "priority": w.priority.name}
                         for w in self.workload],
            "scheduler": self.scheduler_name(),
            "seed": self.seed,
            "attempt_batch_size": self.attempt_batch_size,
            "backend": self.backend,
            "engine": self.engine,
            "topology": (None if self.topology is None
                         else self.topology.to_dict()),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec serialised with :meth:`to_dict`."""
        workload = tuple(
            _build_dataclass(WorkloadSpec,
                             {**entry, "priority": Priority[entry["priority"]]})
            for entry in data["workload"])
        return cls(
            name=data["name"],
            scenario=_build_dataclass(ScenarioConfig, data["scenario"]),
            workload=workload,
            scheduler=data.get("scheduler", "FCFS"),
            seed=data.get("seed", 12345),
            attempt_batch_size=data.get("attempt_batch_size", 1),
            backend=data.get("backend"),
            engine=data.get("engine"),
            topology=(Topology.from_dict(data["topology"])
                      if data.get("topology") else None),
        )

    def identity_payload(self) -> dict:
        """Everything that defines the scenario *itself*.

        Excludes the backend and the event engine (the same scenario
        simulated under a different physics backend or queue implementation
        shares an identity; the resume cache and cost models key on
        ``(identity, backend)`` — with the engine recorded alongside — so
        those dimensions stay detectable), the legacy ``seed`` field
        (sweeps derive per-scenario seeds from the master seed), and the
        topology — which the resume cache records in the entry payload
        (name + content hash) so a topology redefinition under an unchanged
        scenario name is *found and reported* rather than silently missed.
        """
        payload = self.to_dict()
        payload.pop("backend")
        payload.pop("engine")
        payload.pop("seed")
        payload.pop("topology")
        return payload

    def identity_key(self) -> str:
        """Stable short hash of :meth:`identity_payload`.

        Depends only on the scenario definition — never on grid position,
        backend or master seed — so recorded costs and cache entries survive
        grid reordering and extension.
        """
        canonical = json.dumps(self.identity_payload(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:20]

    def cost_features(self) -> dict:
        """Plain-data features for static cost heuristics.

        Per workload kind: ``pairs`` is the per-request pair count (the
        paper's k255 MD runs dominate wall-clock), ``keep`` whether the kind
        is create-and-keep (K attempts are orders of magnitude longer than
        M attempts, scaled by the hardware's expected MHP cycles per K
        attempt).  This is the *only* place pair/kind cost features are
        derived — cost models consume the dict rather than re-deriving.
        """
        return {
            "hardware": self.scenario.name,
            "expected_cycles_k": self.scenario.timing.expected_cycles_per_attempt_k,
            "batch": self.attempt_batch_size,
            "engine": self.engine_name(),
            # Multi-link topologies simulate one full MHP/EGP stack per link
            # on a shared engine, so cost scales roughly linearly in links.
            "links": 1 if self.topology is None else len(self.topology.links),
            "workloads": [{
                "pairs": (w.num_pairs if w.num_pairs is not None
                          else w.max_pairs),
                "load": w.load_fraction,
                "keep": w.request_type is RequestType.KEEP,
            } for w in self.workload],
        }

    def run(self, duration: float, seed: Optional[int] = None,
            attempt_batch_size: Optional[int] = None,
            backend: Optional[str] = None,
            engine: Optional[str] = None,
            guard=None) -> RunResult:
        """Build and run the scenario for ``duration`` simulated seconds.

        ``guard`` (a :class:`repro.runtime.guard.GuardPolicy`) arms the
        run's event engine with an event budget / wall deadline before the
        first event executes; exceeding either raises
        :class:`repro.sim.engine.EngineInterrupt` out of this method with
        partial provenance.  ``None`` leaves the engine untouched.
        """
        batch = (self.attempt_batch_size if attempt_batch_size is None
                 else attempt_batch_size)
        if self.topology is not None:
            from repro.topology.run import TopologyRun

            simulation = TopologyRun(
                self.topology, self.workload, scheduler=self.scheduler,
                seed=self.seed if seed is None else seed,
                attempt_batch_size=batch,
                backend=backend if backend is not None else self.backend,
                engine=engine if engine is not None else self.engine)
            if guard is not None:
                guard.install(simulation.network.engine)
            return simulation.run(duration)
        simulation = SimulationRun(self.scenario, self.workload,
                                   scheduler=self.scheduler,
                                   seed=self.seed if seed is None else seed,
                                   attempt_batch_size=batch,
                                   backend=backend if backend is not None
                                   else self.backend,
                                   engine=engine if engine is not None
                                   else self.engine)
        if guard is not None:
            guard.install(simulation.network.engine)
        return simulation.run(duration)


def _hardware(name: str) -> ScenarioConfig:
    if name.lower() == "lab":
        return lab_scenario()
    if name.lower() == "ql2020":
        return ql2020_scenario()
    raise ValueError(f"unknown hardware scenario {name!r}")


def single_kind_scenarios(hardware: str = "Lab",
                          kinds: tuple[str, ...] = ("NL", "CK", "MD"),
                          loads: tuple[str, ...] = ("Low", "High", "Ultra"),
                          max_pairs_options: tuple[int, ...] = (1, 3),
                          origins: tuple[str, ...] = ("A", "B", "random"),
                          min_fidelity: float = DEFAULT_MIN_FIDELITY,
                          include_md_k255: bool = True,
                          attempt_batch_size: int = 1,
                          backend: Optional[str] = None,
                          engine: Optional[str] = None,
                          ) -> list[ScenarioSpec]:
    """The single-kind scenario grid of the long runs (Section 6.2).

    MD requests additionally get the paper's ``k_max = 255`` variant (the
    measure-directly service is the only one that asks for hundreds of pairs
    per CREATE); disable with ``include_md_k255=False`` to generate an exact
    product sub-grid.  The default grid over both hardware setups is the bulk
    of the paper's 169 long-run scenarios (see :func:`paper_grid`).
    """
    config = _hardware(hardware)
    specs = []
    for kind in kinds:
        priority = Priority[kind]
        for load_name in loads:
            load = LONG_RUN_LOADS[load_name]
            pair_options = max_pairs_options
            if kind == "MD" and include_md_k255 and 255 not in pair_options:
                pair_options = tuple(max_pairs_options) + (255,)
            for max_pairs in pair_options:
                for origin in origins:
                    workload = WorkloadSpec(priority=priority,
                                            load_fraction=load,
                                            max_pairs=max_pairs,
                                            origin=origin,
                                            min_fidelity=min_fidelity)
                    name = (f"{hardware}_{kind}_{load_name}_k{max_pairs}_"
                            f"origin{origin.upper()[0]}")
                    specs.append(ScenarioSpec(
                        name=name, scenario=config, workload=(workload,),
                        attempt_batch_size=attempt_batch_size,
                        backend=backend, engine=engine))
    return specs


def mixed_kind_scenarios(hardware: str = "QL2020",
                         patterns: tuple[str, ...] = tuple(USAGE_PATTERNS),
                         schedulers: tuple[str, ...] = ("FCFS", "HigherWFQ"),
                         attempt_batch_size: int = 1,
                         backend: Optional[str] = None,
                         engine: Optional[str] = None,
                         ) -> list[ScenarioSpec]:
    """Mixed-priority scenarios of Section 6.3 / Appendix C.2."""
    config = _hardware(hardware)
    specs = []
    for pattern_name in patterns:
        pattern = USAGE_PATTERNS[pattern_name]
        for scheduler in schedulers:
            name = f"{hardware}_{pattern.name}_{scheduler}"
            specs.append(ScenarioSpec(name=name, scenario=config,
                                      workload=pattern.specs,
                                      scheduler=scheduler,
                                      attempt_batch_size=attempt_batch_size,
                                      backend=backend, engine=engine))
    return specs


def table1_scenarios(hardware: str = "QL2020",
                     backend: Optional[str] = None,
                     engine: Optional[str] = None) -> list[ScenarioSpec]:
    """The two request patterns of Table 1 (uniform, and no-NL-more-MD).

    Pairs per request are fixed: 2 (NL), 2 (CK) and 10 (MD).
    """
    config = _hardware(hardware)
    uniform = (
        WorkloadSpec(priority=Priority.NL, load_fraction=0.99 / 3, num_pairs=2),
        WorkloadSpec(priority=Priority.CK, load_fraction=0.99 / 3, num_pairs=2),
        WorkloadSpec(priority=Priority.MD, load_fraction=0.99 / 3, num_pairs=10),
    )
    no_nl_more_md = (
        WorkloadSpec(priority=Priority.CK, load_fraction=0.99 / 5, num_pairs=2),
        WorkloadSpec(priority=Priority.MD, load_fraction=0.99 * 4 / 5, num_pairs=10),
    )
    specs = []
    for pattern_name, workload in (("uniform", uniform),
                                   ("noNLmoreMD", no_nl_more_md)):
        for scheduler in ("FCFS", "HigherWFQ"):
            specs.append(ScenarioSpec(name=f"table1_{pattern_name}_{scheduler}",
                                      scenario=config, workload=workload,
                                      scheduler=scheduler, backend=backend,
                                      engine=engine))
    return specs


#: Frame-loss probabilities of the robustness study (Section 6.1 / Table 5).
ROBUSTNESS_LOSS_PROBABILITIES: tuple[float, ...] = (0.0, 1e-6, 1e-4)


def robustness_scenarios(hardware: str = "Lab",
                         loss_probabilities: tuple[float, ...] =
                         ROBUSTNESS_LOSS_PROBABILITIES,
                         attempt_batch_size: int = 1,
                         backend: Optional[str] = None,
                         engine: Optional[str] = None) -> list[ScenarioSpec]:
    """The classical frame-loss robustness scenarios of Section 6.1.

    Per-attempt messaging (no batching by default) so that every classical
    frame is individually exposed to loss, matching the paper's setup.
    """
    base = _hardware(hardware)
    specs = []
    for loss in loss_probabilities:
        config = base.with_frame_loss(loss)
        workload = WorkloadSpec(priority=Priority.MD, load_fraction=0.99,
                                max_pairs=3,
                                min_fidelity=DEFAULT_MIN_FIDELITY)
        label = f"{loss:.0e}" if loss else "0"
        specs.append(ScenarioSpec(name=f"{hardware}_robust_loss{label}",
                                  scenario=config, workload=(workload,),
                                  attempt_batch_size=attempt_batch_size,
                                  backend=backend, engine=engine))
    return specs


def paper_grid(hardwares: tuple[str, ...] = ("Lab", "QL2020"),
               include_mixed: bool = True,
               include_table1: bool = True,
               include_robustness: bool = True,
               attempt_batch_size: int = 1,
               backend: Optional[str] = None,
               engine: Optional[str] = None) -> list[ScenarioSpec]:
    """The full evaluation grid of the paper's long runs — 169 scenarios.

    Composition (Section 6):

    * single-kind grid (Section 6.2): 3 kinds x 3 loads x k_max in {1, 3}
      (plus k_max = 255 for MD) x 3 origins, on both hardware setups
      — 2 x 63 = 126 scenarios;
    * mixed-kind grid (Section 6.3 / Appendix C.2): 6 usage patterns x
      3 schedulers x 2 hardware setups — 36 scenarios;
    * Table 1 scheduling comparison: 2 patterns x 2 schedulers — 4 scenarios;
    * robustness to classical frame loss (Section 6.1): 3 loss levels — 3.

    Scenario names are unique across the grid, which the sweep cache relies
    on for resume.
    """
    specs: list[ScenarioSpec] = []
    for hardware in hardwares:
        specs.extend(single_kind_scenarios(
            hardware, attempt_batch_size=attempt_batch_size, backend=backend,
            engine=engine))
    if include_mixed:
        for hardware in hardwares:
            specs.extend(mixed_kind_scenarios(
                hardware, schedulers=("FCFS", "LowerWFQ", "HigherWFQ"),
                attempt_batch_size=attempt_batch_size, backend=backend,
                engine=engine))
    if include_table1:
        table1 = table1_scenarios(backend=backend, engine=engine)
        for spec in table1:
            spec.attempt_batch_size = attempt_batch_size
        specs.extend(table1)
    if include_robustness:
        specs.extend(robustness_scenarios(backend=backend, engine=engine))
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise RuntimeError("paper grid produced duplicate scenario names")
    return specs


def chain_grid(lengths: tuple[int, ...] = (3, 4, 5),
               hardwares: tuple[str, ...] = ("Lab",),
               loads: tuple[str, ...] = ("High",),
               max_pairs: int = 1,
               min_fidelity: float = DEFAULT_MIN_FIDELITY,
               attempt_batch_size: int = 1,
               backend: Optional[str] = None,
               engine: Optional[str] = None) -> list[ScenarioSpec]:
    """Repeater-chain scenarios: swap-ASAP over ``lengths``-node chains.

    Every link of a chain runs its own create-and-keep workload (chains
    buffer delivered pairs for swapping, so measure-directly requests are
    rejected by the topology runner); the end-to-end delivery statistics
    appear in the result's ``end_to_end`` / ``hops`` fields.  Names encode
    length, hardware and load — unique across the grid, as the resume cache
    requires.
    """
    specs = []
    for hardware in hardwares:
        config = _hardware(hardware)
        for num_nodes in lengths:
            topology = Topology.chain(num_nodes, hardware=config)
            for load_name in loads:
                workload = WorkloadSpec(
                    priority=Priority.CK,
                    load_fraction=LONG_RUN_LOADS[load_name],
                    max_pairs=max_pairs, min_fidelity=min_fidelity)
                specs.append(ScenarioSpec(
                    name=f"chain{num_nodes}_{hardware}_{load_name}",
                    scenario=config, workload=(workload,),
                    attempt_batch_size=attempt_batch_size,
                    backend=backend, engine=engine, topology=topology))
    return specs


def star_grid(sizes: tuple[int, ...] = (2, 3),
              hardwares: tuple[str, ...] = ("Lab",),
              loads: tuple[str, ...] = ("High",),
              kind: str = "MD",
              max_pairs: int = 3,
              slot_duration: float = 0.005,
              insertion_loss_db: float = 1.5,
              min_fidelity: float = DEFAULT_MIN_FIDELITY,
              attempt_batch_size: int = 1,
              backend: Optional[str] = None,
              engine: Optional[str] = None) -> list[ScenarioSpec]:
    """Switched-star scenarios: ``sizes`` node pairs time-sharing a midpoint.

    Star links behave like independent single-link runs behind a lossy
    round-robin switch, so any request kind works (default measure-directly,
    the paper's high-rate service).  The aggregate ``end_to_end`` digest
    includes Jain's fairness index over per-link deliveries.
    """
    specs = []
    for hardware in hardwares:
        config = _hardware(hardware)
        for num_pairs in sizes:
            topology = Topology.switched_star(
                num_pairs, hardware=config, slot_duration=slot_duration,
                insertion_loss_db=insertion_loss_db)
            for load_name in loads:
                workload = WorkloadSpec(
                    priority=Priority[kind],
                    load_fraction=LONG_RUN_LOADS[load_name],
                    max_pairs=max_pairs, min_fidelity=min_fidelity)
                specs.append(ScenarioSpec(
                    name=f"star{num_pairs}_{hardware}_{kind}_{load_name}",
                    scenario=config, workload=(workload,),
                    attempt_batch_size=attempt_batch_size,
                    backend=backend, engine=engine, topology=topology))
    return specs
