"""Parallel scenario sweeps — the engine behind the paper's 169-run grid.

The paper's evaluation (Section 6.2) rests on a grid of 169 long-run
scenarios plus mixed-kind and robustness sweeps.  :class:`SweepRunner` fans a
list of :class:`~repro.runtime.scenarios.ScenarioSpec` out over a
``multiprocessing`` pool and collects the per-scenario
:class:`~repro.analysis.metrics.MetricsSummary` objects into a serialisable
:class:`SweepResult`.

Design points:

* **Determinism** — every scenario gets its own seed derived from the master
  seed with ``numpy.random.SeedSequence.spawn``; the derivation depends only
  on (master seed, scenario index), never on worker count or completion
  order, so a 4-worker sweep is bit-identical to a serial one and a grid can
  be extended without disturbing the seeds of existing entries.
* **Plain-data payloads** — workers ship back :class:`ScenarioOutcome`
  records holding only summaries and strings; the live network / collector
  handles never cross the process boundary.
* **Resume** — with a ``cache_dir``, each completed scenario is written to
  disk keyed by a hash of everything that determines its result (workload,
  scheduler, seed, duration, batch size).  Re-running an interrupted sweep
  skips the finished scenarios.
* **Fault isolation** — a scenario that raises inside a worker is reported
  as a failed outcome instead of poisoning the pool; the rest of the sweep
  completes.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
import traceback
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.metrics import MetricsSummary
from repro.runtime.cache import CACHE_VERSION, CacheReport, CacheSkip, ResumeCache
from repro.runtime.guard import (
    QUARANTINED,
    EngineInterrupt,
    GuardPolicy,
    QuarantineRecord,
    QuarantineStore,
    injected_scenario_fault,
    perform_injected_fault,
    quarantined_outcome,
    validate_backend_states,
    validate_outcome,
)
from repro.runtime.scenarios import (
    ScenarioSpec,
    chain_grid,
    paper_grid,
    star_grid,
)

__all__ = [
    "CACHE_VERSION",
    "CacheReport",
    "CacheSkip",
    "GuardPolicy",
    "ResumeCache",
    "ScenarioOutcome",
    "SweepResult",
    "SweepRunner",
    "chain_grid",
    "derive_keyed_seed",
    "derive_scenario_seeds",
    "execute_scenario",
    "paper_grid",
    "run_sweep",
    "star_grid",
]


def derive_scenario_seeds(master_seed: Optional[int],
                          count: int) -> list[int]:
    """Per-scenario seeds spawned deterministically from ``master_seed``.

    Child ``i`` of ``SeedSequence(master_seed)`` depends only on the master
    seed and ``i``, so extending a grid keeps the seeds of existing entries
    stable (which the resume cache relies on).  The spawned entropy is
    folded to a non-negative int64 because the runner derives the workload
    seed as ``seed + 1``.
    """
    children = np.random.SeedSequence(master_seed).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0] >> 1)
            for child in children]


def derive_keyed_seed(master_seed: Optional[int], key: object) -> int:
    """Seed derived from ``master_seed`` and a stable grouping key.

    Unlike index-based derivation this depends only on the key's ``repr``,
    so scenarios sharing a key (e.g. the same workload under different
    schedulers) see identical arrival randomness — the paired comparisons
    behind the paper's scheduler tables need exactly that.  ``None`` draws
    fresh OS entropy (matching :func:`derive_scenario_seeds`).
    """
    if master_seed is None:
        master_seed = _fresh_master_seed()
    digest = hashlib.sha256(repr(key).encode()).digest()
    words = [int.from_bytes(digest[i:i + 4], "little")
             for i in range(0, 16, 4)]
    sequence = np.random.SeedSequence([master_seed, *words])
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> 1)


def _fresh_master_seed() -> int:
    """A random master seed drawn from OS entropy."""
    return int(np.random.SeedSequence().generate_state(
        1, dtype=np.uint64)[0] >> 1)


@dataclass
class ScenarioOutcome:
    """Result of one scenario inside a sweep (plain data, JSON-safe)."""

    scenario_name: str
    scheduler_name: str
    seed: int
    duration: float
    status: str = "ok"
    summary: Optional[MetricsSummary] = None
    requests_issued: int = 0
    error: Optional[str] = None
    #: Resolved physics backend the scenario ran under.
    backend: str = "density"
    #: Simulation events processed — deterministic for a given (scenario,
    #: seed, backend), so it participates in equality and pins the
    #: serial-vs-sharded equivalence tests down to the event count.  The
    #: event *engine* does not change it (engines are trace-equivalent).
    events_processed: int = 0
    #: Events never scheduled thanks to outcome-preserving timer elision
    #: (PR 5/7) — makes the elision wins visible in sweep output.
    #: Deterministic for a given (scenario, seed, backend) and identical
    #: across engines, but provenance rather than result identity, so it
    #: is excluded from comparison (old cache entries lack it).
    events_elided: int = field(default=0, compare=False)
    #: Resolved event-engine (queue implementation) the scenario ran on.
    #: Engines are event-for-event equivalent, so this is provenance —
    #: excluded from comparison so a heap sweep and a calendar sweep of the
    #: same grid are field-for-field identical.
    engine: str = field(default="heap", compare=False)
    wall_time: float = field(default=0.0, compare=False)
    from_cache: bool = field(default=False, compare=False)
    #: Cohort size when the scenario ran inside a vectorized cohort
    #: (``None`` for the solo path).  Provenance like ``engine`` — the
    #: results are bit-identical either way, so it is excluded from
    #: comparison; recorded so cost models can learn batched throughput
    #: separately from solo throughput.
    cohort: Optional[int] = field(default=None, compare=False)
    #: Per-link hop digests of a topology run (see
    #: :attr:`repro.runtime.runner.RunResult.hops`); ``None`` for
    #: single-link scenarios.  Plain data — participates in equality like
    #: the summary.
    hops: Optional[list] = None
    #: End-to-end statistics of a topology run; ``None`` for single-link
    #: scenarios.
    end_to_end: Optional[dict] = None
    #: Topology name, or ``None`` for the classic single link.
    topology: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the scenario completed without an error."""
        return self.status == "ok"

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        data = asdict(self)
        data["summary"] = None if self.summary is None else self.summary.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioOutcome":
        """Rebuild an outcome from :meth:`to_dict` output."""
        summary = data.get("summary")
        return cls(
            scenario_name=data["scenario_name"],
            scheduler_name=data["scheduler_name"],
            seed=data["seed"],
            duration=data["duration"],
            status=data.get("status", "ok"),
            summary=None if summary is None else MetricsSummary.from_dict(summary),
            requests_issued=data.get("requests_issued", 0),
            error=data.get("error"),
            backend=data.get("backend", "density"),
            events_processed=data.get("events_processed", 0),
            events_elided=data.get("events_elided", 0),
            engine=data.get("engine", "heap"),
            wall_time=data.get("wall_time", 0.0),
            from_cache=data.get("from_cache", False),
            cohort=data.get("cohort"),
            hops=data.get("hops"),
            end_to_end=data.get("end_to_end"),
            topology=data.get("topology"),
        )


@dataclass
class SweepResult:
    """Collected outcomes of one sweep, in scenario order."""

    master_seed: Optional[int]
    duration: float
    outcomes: list[ScenarioOutcome]
    #: Merged observability metrics of the sweep (a
    #: ``repro.obs.MetricsRegistry`` ``to_dict`` payload) when the sweep
    #: ran with ``REPRO_OBS=...,metrics`` — per-run rollups locally, the
    #: merged per-shard worker registries for a cluster sweep.  ``None``
    #: (and omitted from JSON) when observability is off, keeping the
    #: serialized form bit-identical to pre-observability output.
    telemetry: Optional[dict] = field(default=None, compare=False)

    @property
    def completed(self) -> list[ScenarioOutcome]:
        """Outcomes that finished successfully."""
        return [outcome for outcome in self.outcomes if outcome.ok]

    @property
    def failed(self) -> list[ScenarioOutcome]:
        """Outcomes whose scenario raised inside the worker."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def quarantined(self) -> list[ScenarioOutcome]:
        """Outcomes retired by the supervision layer's retry budget."""
        return [outcome for outcome in self.outcomes
                if outcome.status == QUARANTINED]

    @property
    def quarantined_indices(self) -> list[int]:
        """Scenario indices (sweep order) of the quarantined outcomes."""
        return [index for index, outcome in enumerate(self.outcomes)
                if outcome.status == QUARANTINED]

    def summaries(self) -> dict[str, MetricsSummary]:
        """Scenario name -> summary for the successful outcomes."""
        return {outcome.scenario_name: outcome.summary
                for outcome in self.completed if outcome.summary is not None}

    def to_dict(self) -> dict:
        """JSON-serialisable representation of the whole sweep."""
        data = {
            "version": CACHE_VERSION,
            "master_seed": self.master_seed,
            "duration": self.duration,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Rebuild a sweep result from :meth:`to_dict` output."""
        return cls(master_seed=data["master_seed"],
                   duration=data["duration"],
                   outcomes=[ScenarioOutcome.from_dict(entry)
                             for entry in data["outcomes"]],
                   telemetry=data.get("telemetry"))

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise to a JSON string (exact float round-trip)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Parse a sweep result serialised with :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        """Write the sweep result to ``path`` as JSON."""
        Path(path).write_text(self.to_json(indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        """Read a sweep result previously written with :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def _failure_outcome(spec: ScenarioSpec, seed: int, duration: float,
                     status: str, error: str, started: float,
                     events_processed: int = 0) -> ScenarioOutcome:
    """A failed outcome carrying the spec's identity and any provenance."""
    return ScenarioOutcome(
        scenario_name=spec.name,
        scheduler_name=spec.scheduler_name(),
        seed=seed,
        duration=duration,
        status=status,
        error=error,
        backend=spec.backend_name(),
        engine=spec.engine_name(),
        events_processed=events_processed,
        wall_time=time.perf_counter() - started,
    )


def execute_scenario(spec: ScenarioSpec, seed: int, duration: float,
                     guard: Optional[GuardPolicy] = None) -> ScenarioOutcome:
    """Run one scenario and fold the result into a plain-data outcome.

    This is the single execution primitive shared by the in-process sweep,
    the multiprocessing pool workers and the ``repro.cluster`` workers.
    Always returns an outcome — any exception becomes a failed record so a
    bad scenario cannot poison a pool or a shard.  With a ``guard``, the
    engine's event budget / wall deadline bound the run (``timeout``
    outcomes carry partial provenance: events processed, sim-time reached),
    ``MemoryError`` is folded to ``oom``, and a validation pass demotes
    silently-corrupt results to ``invalid-result``.  Without one, behavior
    is byte-identical to the unguarded primitive.
    """
    started = time.perf_counter()
    try:
        fault = injected_scenario_fault(spec.name)
        if fault is not None:
            perform_injected_fault(fault, spec.name, guard)
        result = spec.run(duration, seed=seed, guard=guard)
        if result.obs is not None:
            # Observability artifacts (trace/metrics/profile) go to
            # REPRO_OBS_DIR/<scenario>-seed<seed>/ — the outcome payload
            # itself stays identical to an uninstrumented run.
            result.obs.write_artifacts(f"{spec.name}-seed{seed}")
        outcome = ScenarioOutcome(
            scenario_name=spec.name,
            scheduler_name=result.scheduler_name,
            seed=seed,
            duration=duration,
            status="ok",
            summary=result.summary,
            requests_issued=result.requests_issued,
            backend=result.backend,
            events_processed=result.events_processed,
            events_elided=result.events_elided,
            engine=result.engine,
            wall_time=time.perf_counter() - started,
            hops=result.hops,
            end_to_end=result.end_to_end,
            topology=result.topology,
        )
        if guard is not None and guard.validate:
            problems = validate_outcome(outcome)
            if not problems and result.network is not None:
                problems = validate_backend_states(result.network.backend,
                                                   spec.scenario)
            if problems:
                return _failure_outcome(
                    spec, seed, duration, "invalid-result",
                    "result validation failed: " + "; ".join(problems),
                    started, events_processed=outcome.events_processed)
        return outcome
    except EngineInterrupt as exc:
        return _failure_outcome(spec, seed, duration, "timeout", str(exc),
                                started,
                                events_processed=exc.events_processed)
    except MemoryError as exc:
        return _failure_outcome(spec, seed, duration, "oom",
                                f"MemoryError: {exc}", started)
    except Exception:
        return _failure_outcome(spec, seed, duration, "error",
                                traceback.format_exc(), started)


def _execute_scenario(payload: tuple[int, ScenarioSpec, int, float],
                      ) -> tuple[int, ScenarioOutcome]:
    """Pool-worker wrapper around :func:`execute_scenario`."""
    index, spec, seed, duration = payload
    return index, execute_scenario(spec, seed, duration)


def _execute_task(task: tuple) -> list[tuple[int, ScenarioOutcome]]:
    """Pool-worker dispatcher for solo scenarios and whole cohorts.

    ``("solo", payload)`` runs one scenario; ``("cohort", payloads)`` runs
    a list of payloads as one vectorized cohort in this process.  Tasks
    optionally carry a third :class:`GuardPolicy` element (two-tuples stay
    valid so queued pre-guard payloads keep working).  Either way the
    result is a list of ``(index, outcome)`` pairs.
    """
    kind, payload = task[0], task[1]
    guard = task[2] if len(task) > 2 else None
    if kind == "solo":
        index, spec, seed, duration = payload
        return [(index, execute_scenario(spec, seed, duration, guard=guard))]
    from repro.runtime.batch import execute_cohort

    return execute_cohort(payload, guard=guard)


class SweepRunner:
    """Run many scenarios, optionally in parallel, with deterministic seeds.

    Parameters
    ----------
    scenarios:
        The :class:`ScenarioSpec` list to run.  Names must be unique — the
        resume cache and :meth:`SweepResult.summaries` key on them.
    duration:
        Simulated seconds per scenario.
    master_seed:
        Root of the per-scenario seed derivation (see
        :func:`derive_scenario_seeds`).
    workers:
        Worker processes; ``<= 1`` runs serially in-process.  Results are
        identical either way.
    cache_dir:
        Directory for per-scenario resume files; ``None`` disables caching.
        Only successful outcomes are cached, so failures are retried on the
        next attempt.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap on Linux) and ``spawn`` otherwise.
    on_outcome:
        Optional callback invoked with each :class:`ScenarioOutcome` as it
        completes (progress reporting).
    seed_key:
        Optional grouping function ``spec -> key``.  Scenarios with equal
        keys get the *same* derived seed (see :func:`derive_keyed_seed`),
        which makes e.g. scheduler comparisons paired.  Default: every
        scenario gets its own index-derived seed.
    batch_size:
        Cohort size for vectorized execution (``repro.runtime.batch``).
        With ``batch_size > 1``, pending scenarios that resolve to the
        ``analytic`` backend are grouped (in scenario order) into cohorts
        of up to this many members, each advanced as one vectorized unit;
        everything else runs on the solo path.  Results, seeds, resume
        caching and failure isolation are identical to ``batch_size=1`` —
        a cohort sweep is field-for-field equal to a serial sweep.
    guard:
        Optional :class:`~repro.runtime.guard.GuardPolicy` supervising
        every execution: engine-level deadlines/budgets, result
        validation, and a retry budget — a scenario still failing after
        ``guard.max_attempts`` executions is **quarantined** (durable
        record under ``cache_dir``, ``status="quarantined"`` outcome) and
        the sweep completes without it.  ``None`` (the default) preserves
        the unguarded behavior bit-for-bit.
    """

    def __init__(self, scenarios: Sequence[ScenarioSpec], duration: float,
                 master_seed: Optional[int] = 12345, workers: int = 1,
                 cache_dir: Optional[str | Path] = None,
                 start_method: Optional[str] = None,
                 on_outcome: Optional[Callable[[ScenarioOutcome], None]] = None,
                 seed_key: Optional[Callable[[ScenarioSpec], object]] = None,
                 batch_size: int = 1,
                 guard: Optional[GuardPolicy] = None,
                 ) -> None:
        self.scenarios = list(scenarios)
        if duration <= 0:
            raise ValueError("duration must be positive")
        names = [spec.name for spec in self.scenarios]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(f"duplicate scenario names: {sorted(duplicates)}")
        self.duration = duration
        # Resolve an unseeded sweep to a concrete seed once, so all seed
        # derivations within this runner agree and the SweepResult records
        # the seed that can reproduce the run.
        self.master_seed = (master_seed if master_seed is not None
                            else _fresh_master_seed())
        self.workers = max(1, int(workers))
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self._cache = None if cache_dir is None else ResumeCache(cache_dir)
        self._cache_report = CacheReport()
        self.on_outcome = on_outcome
        self.seed_key = seed_key
        self.batch_size = max(1, int(batch_size))
        self.guard = guard
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self.start_method = start_method
        #: Sweep-level ``repro.obs.MetricsRegistry`` of the most recent
        #: :meth:`run`, when ``REPRO_OBS`` enabled metrics (else ``None``).
        self.metrics_registry = None

    # ------------------------------------------------------------------ #
    # Seeds and cache keys
    # ------------------------------------------------------------------ #
    def scenario_seeds(self) -> list[int]:
        """The derived per-scenario seeds, in scenario order."""
        if self.seed_key is not None:
            return [derive_keyed_seed(self.master_seed, self.seed_key(spec))
                    for spec in self.scenarios]
        return derive_scenario_seeds(self.master_seed, len(self.scenarios))

    @staticmethod
    def cache_key(spec: ScenarioSpec, seed: int, duration: float) -> str:
        """Hash of the scenario identity + run parameters (see
        :meth:`ResumeCache.key`; the backend lives in the filename)."""
        return ResumeCache.key(spec, seed, duration)

    def cache_report(self) -> CacheReport:
        """What the resume cache did for the most recent :meth:`run`.

        Distinguishes plain misses from entries that were *found* but
        skipped — e.g. written by a different ``CACHE_VERSION`` or physics
        backend — with the reason per scenario.
        """
        return self._cache_report

    def _load_cached(self, spec: ScenarioSpec,
                     seed: int) -> Optional[ScenarioOutcome]:
        if self._cache is None:
            return None
        max_attempts = None if self.guard is None else self.guard.max_attempts
        outcome, reason = self._cache.load(spec, seed, self.duration,
                                           max_attempts=max_attempts)
        if outcome is not None:
            self._cache_report.hits.append(spec.name)
        elif reason is not None:
            self._cache_report.skips.append(CacheSkip(spec.name, reason))
        else:
            self._cache_report.misses.append(spec.name)
        return outcome

    def _store_cached(self, spec: ScenarioSpec, outcome: ScenarioOutcome,
                      attempts: Optional[int] = None) -> None:
        if self._cache is not None:
            self._cache.store(spec, outcome, self.duration,
                              attempts=attempts)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self) -> SweepResult:
        """Run the sweep and return outcomes in scenario order."""
        self._cache_report = CacheReport()
        # Sweep-level metrics when REPRO_OBS enables them (None otherwise:
        # the loop below then only pays one ``is not None`` per outcome).
        from repro.obs import config_from_env

        obs_config = config_from_env()
        registry = None
        if obs_config is not None and obs_config.metrics:
            from repro.obs import MetricsRegistry

            registry = MetricsRegistry()
        self.metrics_registry = registry

        def observe(outcome: ScenarioOutcome) -> None:
            registry.counter("repro_sweep_scenarios_total",
                             status=outcome.status)
            if outcome.status == "timeout":
                registry.counter("repro_sweep_timeouts_total")
            if outcome.from_cache:
                registry.counter("repro_sweep_cache_hits_total")
            else:
                # Cached outcomes report the original run's wall time;
                # only fresh executions feed the wall-clock histogram.
                registry.observe("repro_sweep_scenario_wall_seconds",
                                 outcome.wall_time)
            registry.counter("repro_sweep_events_processed_total",
                             outcome.events_processed)
            registry.counter("repro_sweep_events_elided_total",
                             outcome.events_elided)
            if outcome.cohort:
                registry.observe("repro_sweep_cohort_occupancy",
                                 outcome.cohort)

        seeds = self.scenario_seeds()
        outcomes: list[Optional[ScenarioOutcome]] = [None] * len(self.scenarios)
        pending: list[tuple[int, ScenarioSpec, int, float]] = []
        # Executions charged against each scenario's retry budget (guarded
        # sweeps only), seeded from the resume cache so attempts spent in a
        # previous interrupted run still count.
        attempts: dict[int, int] = {}
        for index, (spec, seed) in enumerate(zip(self.scenarios, seeds)):
            cached = self._load_cached(spec, seed)
            if cached is not None:
                outcomes[index] = cached
                if registry is not None:
                    observe(cached)
                if self.on_outcome is not None:
                    self.on_outcome(cached)
            else:
                pending.append((index, spec, seed, self.duration))
                if self.guard is not None and self._cache is not None:
                    prior = self._cache.recorded_attempts(
                        spec, seed, self.duration)
                    if prior:
                        attempts[index] = prior

        def record(index: int, outcome: ScenarioOutcome) -> None:
            outcomes[index] = outcome
            self._store_cached(self.scenarios[index], outcome,
                               attempts=attempts.get(index))
            if registry is not None:
                observe(outcome)
            if self.on_outcome is not None:
                self.on_outcome(outcome)

        def execute(payloads: list[tuple[int, ScenarioSpec, int, float]],
                    ) -> None:
            tasks = self._build_tasks(payloads)
            if self.guard is not None:
                for payload in payloads:
                    attempts[payload[0]] = attempts.get(payload[0], 0) + 1
            if self.workers == 1 or len(tasks) == 1:
                for task in tasks:
                    for index, outcome in _execute_task(task):
                        record(index, outcome)
            else:
                context = multiprocessing.get_context(self.start_method)
                processes = min(self.workers, len(tasks))
                with context.Pool(processes=processes) as pool:
                    for pairs in pool.imap_unordered(_execute_task, tasks):
                        for index, outcome in pairs:
                            record(index, outcome)

        if pending:
            execute(pending)

        # A cached failure is only ever *returned* (rather than retried)
        # when its budget is spent — if the previous run died before
        # formally quarantining it, finish the job now.
        if self.guard is not None and self._cache is not None:
            for index, outcome in enumerate(outcomes):
                if (outcome is not None and outcome.from_cache
                        and not outcome.ok
                        and outcome.status != QUARANTINED):
                    attempts[index] = self._cache.recorded_attempts(
                        self.scenarios[index], seeds[index], self.duration)
                    self._quarantine(index, outcome, attempts[index],
                                     record, registry)

        # Retry/quarantine rounds — guarded sweeps only.  Each failed
        # scenario is re-executed until it succeeds or its budget runs out,
        # at which point it is durably quarantined and the sweep moves on.
        if pending and self.guard is not None:
            scheduled = {payload[0] for payload in pending}
            while True:
                retry: list[tuple[int, ScenarioSpec, int, float]] = []
                for index in sorted(scheduled):
                    outcome = outcomes[index]
                    if outcome is None or outcome.ok:
                        continue
                    if outcome.status == QUARANTINED:
                        continue
                    if attempts.get(index, 0) >= self.guard.max_attempts:
                        self._quarantine(index, outcome,
                                         attempts.get(index, 0), record,
                                         registry)
                    else:
                        if registry is not None:
                            registry.counter("repro_sweep_retries_total",
                                             status=outcome.status)
                        retry.append((index, self.scenarios[index],
                                      seeds[index], self.duration))
                if not retry:
                    break
                execute(retry)

        assert all(outcome is not None for outcome in outcomes)
        telemetry = None
        if registry is not None:
            telemetry = registry.to_dict()
            if obs_config.out_dir is not None:
                out_dir = Path(obs_config.out_dir)
                out_dir.mkdir(parents=True, exist_ok=True)
                (out_dir / "sweep_metrics.json").write_text(
                    registry.to_json(indent=2) + "\n", encoding="utf-8")
                (out_dir / "sweep_metrics.prom").write_text(
                    registry.to_prometheus(), encoding="utf-8")
        return SweepResult(master_seed=self.master_seed,
                           duration=self.duration,
                           outcomes=list(outcomes),
                           telemetry=telemetry)

    def _quarantine(self, index: int, last: ScenarioOutcome, attempts: int,
                    record: Callable[[int, ScenarioOutcome], None],
                    registry) -> None:
        """Retire scenario ``index``: durable record + placeholder outcome.

        The quarantine record lands under ``cache_dir`` (when caching is
        on) so resumed sweeps — and operators via ``repro.obs.report`` —
        see the decision; the recorded outcome keeps the last failure's
        diagnosis with ``status="quarantined"``.
        """
        final = quarantined_outcome(last, attempts)
        if self.cache_dir is not None:
            QuarantineStore(self.cache_dir).record(QuarantineRecord(
                index=index,
                scenario_name=last.scenario_name,
                seed=last.seed,
                attempts=attempts,
                status=last.status,
                error=last.error,
                source="sweep",
            ))
        if registry is not None:
            registry.counter("repro_sweep_quarantined_total",
                             status=last.status)
        record(index, final)

    def _build_tasks(self, pending: list[tuple[int, ScenarioSpec, int, float]],
                     ) -> list[tuple]:
        """Partition pending payloads into solo and cohort tasks.

        Cohorts are formed over the analytic scenarios in scenario order;
        a chunk of one falls back to the solo path (nothing to share).
        Each task carries the runner's guard (``None`` when unguarded).
        """
        if self.batch_size <= 1:
            return [("solo", payload, self.guard) for payload in pending]
        from repro.runtime.batch import cohortable

        tasks: list[tuple] = []
        eligible: list[tuple[int, ScenarioSpec, int, float]] = []
        for payload in pending:
            if cohortable(payload[1]):
                eligible.append(payload)
            else:
                tasks.append(("solo", payload, self.guard))
        for start in range(0, len(eligible), self.batch_size):
            chunk = eligible[start:start + self.batch_size]
            if len(chunk) == 1:
                tasks.append(("solo", chunk[0], self.guard))
            else:
                tasks.append(("cohort", chunk, self.guard))
        return tasks


def run_sweep(scenarios: Sequence[ScenarioSpec], duration: float,
              master_seed: Optional[int] = 12345, workers: int = 1,
              **kwargs) -> SweepResult:
    """Convenience one-shot sweep (see :class:`SweepRunner`)."""
    runner = SweepRunner(scenarios, duration, master_seed=master_seed,
                         workers=workers, **kwargs)
    return runner.run()
