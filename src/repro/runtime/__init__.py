"""Workload generation, scenario catalogue, runner and sweep engine."""

from repro.runtime.workload import WorkloadSpec, RequestGenerator, UsagePattern
from repro.runtime.runner import SimulationRun, RunResult, run_scenario
from repro.runtime.scenarios import (
    LONG_RUN_LOADS,
    USAGE_PATTERNS,
    single_kind_scenarios,
    mixed_kind_scenarios,
    table1_scenarios,
    robustness_scenarios,
    paper_grid,
    chain_grid,
    star_grid,
    ScenarioSpec,
)
from repro.runtime.cache import CacheReport, CacheSkip, ResumeCache
from repro.runtime.guard import (
    GuardPolicy,
    QuarantineRecord,
    QuarantineStore,
    ScenarioFaultPlan,
)
from repro.runtime.sweep import (
    ScenarioOutcome,
    SweepResult,
    SweepRunner,
    derive_keyed_seed,
    derive_scenario_seeds,
    execute_scenario,
    run_sweep,
)

__all__ = [
    "CacheReport",
    "CacheSkip",
    "GuardPolicy",
    "QuarantineRecord",
    "QuarantineStore",
    "ResumeCache",
    "ScenarioFaultPlan",
    "derive_keyed_seed",
    "execute_scenario",
    "WorkloadSpec",
    "RequestGenerator",
    "UsagePattern",
    "SimulationRun",
    "RunResult",
    "run_scenario",
    "LONG_RUN_LOADS",
    "USAGE_PATTERNS",
    "single_kind_scenarios",
    "mixed_kind_scenarios",
    "table1_scenarios",
    "robustness_scenarios",
    "paper_grid",
    "chain_grid",
    "star_grid",
    "ScenarioSpec",
    "ScenarioOutcome",
    "SweepResult",
    "SweepRunner",
    "derive_scenario_seeds",
    "run_sweep",
]
