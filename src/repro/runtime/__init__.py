"""Workload generation, scenario catalogue and the simulation runner."""

from repro.runtime.workload import WorkloadSpec, RequestGenerator, UsagePattern
from repro.runtime.runner import SimulationRun, RunResult
from repro.runtime.scenarios import (
    LONG_RUN_LOADS,
    USAGE_PATTERNS,
    single_kind_scenarios,
    mixed_kind_scenarios,
    ScenarioSpec,
)

__all__ = [
    "WorkloadSpec",
    "RequestGenerator",
    "UsagePattern",
    "SimulationRun",
    "RunResult",
    "LONG_RUN_LOADS",
    "USAGE_PATTERNS",
    "single_kind_scenarios",
    "mixed_kind_scenarios",
    "ScenarioSpec",
]
