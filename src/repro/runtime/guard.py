"""Run supervision: deadlines, retry budgets, quarantine and validation.

The sweep and cluster layers trust every scenario to terminate and to
produce a sane summary.  This module is the supervision layer that removes
that trust (crash-only style: bound every execution externally, recover by
retry, give up durably):

:class:`GuardPolicy`
    The knobs — a deterministic event budget and a wall-clock deadline
    enforced *inside* :class:`~repro.sim.engine.SimulationEngine`'s run
    loop, a retry budget (``max_attempts``) consumed by the sweep runner
    and the cluster protocol, and an optional result-validation pass.
    The all-``None`` default policy changes nothing: traces, summaries and
    serialized sweeps are bit-identical to an unguarded run.

Failure taxonomy
    Outcome statuses beyond ``"ok"``: ``"timeout"`` (a guard deadline or
    budget fired), ``"oom"`` (``MemoryError``), ``"invalid-result"``
    (validation failed), ``"crash"`` (a worker died without reporting —
    only the cluster coordinator can observe this, via repeated lease
    deaths) and ``"error"`` (any other exception).  ``"quarantined"``
    marks a scenario retired after exhausting its retry budget.

:class:`QuarantineStore`
    Durable one-file-per-scenario quarantine records next to the resume
    cache (or in the cluster directory), written with the shared atomic +
    fsync idiom so a quarantine decision survives crashes and resumes.

Validation
    :func:`validate_outcome` checks the plain-data summary (fidelities and
    probabilities in [0, 1], latencies/throughput finite and non-negative,
    counts non-negative); :func:`validate_density_state` checks trace-1
    PSD Hermiticity of a density matrix and is applied best-effort to the
    backend's heralded states where they are reachable.

Scenario-level fault injection (``REPRO_SCENARIO_FAULTS``)
    :class:`ScenarioFaultPlan` schedules hangs, OOMs and worker-killing
    crashes by scenario name, carried to worker processes through one
    environment variable — re-exported by :mod:`repro.cluster.faults` so
    the whole recovery path is replayable in CI.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

from repro.sim.engine import (
    DeadlineExceeded,
    EngineInterrupt,
    EventBudgetExceeded,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.sweep import ScenarioOutcome

__all__ = [
    "DeadlineExceeded",
    "EngineInterrupt",
    "EventBudgetExceeded",
    "FAILURE_STATUSES",
    "GuardPolicy",
    "QUARANTINED",
    "QuarantineRecord",
    "QuarantineStore",
    "SCENARIO_FAULTS_ENV",
    "ScenarioFaultPlan",
    "injected_scenario_fault",
    "perform_injected_fault",
    "quarantined_outcome",
    "validate_density_state",
    "validate_outcome",
    "validate_summary_data",
]

#: Non-ok outcome statuses the supervisor distinguishes.  ``crash`` never
#: appears in a worker-reported outcome (a crashed worker reports nothing);
#: it is synthesized by the coordinator from repeated lease deaths.
FAILURE_STATUSES = ("timeout", "crash", "oom", "invalid-result", "error")

#: Status of a scenario retired after exhausting its retry budget.
QUARANTINED = "quarantined"


# --------------------------------------------------------------------------- #
# Policy
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GuardPolicy:
    """Supervision knobs for one scenario execution.

    Parameters
    ----------
    max_events:
        Deterministic cap on engine events per scenario.  The same
        (scenario, seed, backend) run hits it at exactly the same event,
        so a budget timeout is reproducible anywhere.  ``None`` disables.
    wall_deadline:
        Wall-clock seconds per scenario execution, enforced inside the
        engine's run loop (checked every 1024 events).  ``None`` disables.
    max_attempts:
        Executions (including the first) a failing scenario is granted
        before it is quarantined.
    validate:
        Run :func:`validate_outcome` over successful results and demote
        silently-corrupt ones to ``status="invalid-result"``.
    """

    max_events: Optional[int] = None
    wall_deadline: Optional[float] = None
    max_attempts: int = 2
    validate: bool = False

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events <= 0:
            raise ValueError("max_events must be positive")
        if self.wall_deadline is not None and self.wall_deadline <= 0:
            raise ValueError("wall_deadline must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    @property
    def bounds_execution(self) -> bool:
        """Whether this policy can interrupt a running scenario."""
        return self.max_events is not None or self.wall_deadline is not None

    def install(self, engine) -> None:
        """Arm ``engine`` (a :class:`SimulationEngine`) with these bounds.

        The wall deadline becomes an absolute ``perf_counter`` value from
        *now*, so install immediately before the run starts.
        """
        if self.max_events is not None:
            engine.event_budget = self.max_events
        if self.wall_deadline is not None:
            engine.deadline_at = time.perf_counter() + self.wall_deadline

    def to_dict(self) -> dict:
        """JSON-serialisable form (cluster plans, sweep metadata)."""
        return {"max_events": self.max_events,
                "wall_deadline": self.wall_deadline,
                "max_attempts": self.max_attempts,
                "validate": self.validate}

    @classmethod
    def from_dict(cls, data: dict) -> "GuardPolicy":
        """Rebuild a policy serialised with :meth:`to_dict`."""
        return cls(max_events=data.get("max_events"),
                   wall_deadline=data.get("wall_deadline"),
                   max_attempts=int(data.get("max_attempts", 2)),
                   validate=bool(data.get("validate", False)))


# --------------------------------------------------------------------------- #
# Result validation
# --------------------------------------------------------------------------- #
def validate_density_state(matrix, atol: float = 1e-6) -> Optional[str]:
    """Check that ``matrix`` is a physical density matrix.

    Trace 1, Hermitian, positive semidefinite (eigenvalues above
    ``-atol``).  Returns ``None`` when physical, else a description of the
    first violation.
    """
    import numpy as np

    array = np.asarray(matrix, dtype=complex)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        return f"not a square matrix (shape {array.shape})"
    if not np.all(np.isfinite(array.real)) or not np.all(np.isfinite(array.imag)):
        return "matrix has non-finite entries"
    trace = complex(np.trace(array))
    if abs(trace - 1.0) > atol:
        return f"trace {trace.real:.8f} is not 1"
    if not np.allclose(array, array.conj().T, atol=atol):
        return "matrix is not Hermitian"
    smallest = float(np.linalg.eigvalsh(array).min())
    if smallest < -atol:
        return f"matrix is not PSD (smallest eigenvalue {smallest:.3e})"
    return None


#: Summary keys holding probability-like values (must lie in [0, 1]).
_UNIT_INTERVAL_KEYS = ("fidelity", "probability", "fraction")
#: Summary keys holding non-negative finite magnitudes.
_NON_NEGATIVE_KEYS = ("latency", "throughput", "duration", "rate",
                      "queue_length", "delivered", "submitted", "completed",
                      "errors", "expires", "oks", "pairs", "requests",
                      "swaps", "fairness")


def _iter_numbers(value) -> Iterable[float]:
    """Flatten a summary value (scalar / dict / list) into its numbers."""
    if isinstance(value, bool) or value is None:
        return
    if isinstance(value, (int, float)):
        yield float(value)
    elif isinstance(value, dict):
        for entry in value.values():
            yield from _iter_numbers(entry)
    elif isinstance(value, (list, tuple)):
        for entry in value:
            yield from _iter_numbers(entry)


def validate_summary_data(data: dict, label: str = "summary") -> list[str]:
    """Validate a plain-data summary dict (``MetricsSummary.to_dict`` or a
    topology hop/end-to-end digest) by key-name convention.

    Keys containing a fidelity/probability word must hold values in
    [0, 1]; latency/throughput/count-like keys must be finite and
    non-negative; everything numeric must be finite.  Returns the list of
    violations (empty = valid).
    """
    problems = []
    for key, value in data.items():
        lowered = key.lower()
        for number in _iter_numbers(value):
            if math.isnan(number) or math.isinf(number):
                problems.append(f"{label}.{key} is non-finite ({number})")
                continue
            if any(word in lowered for word in _UNIT_INTERVAL_KEYS):
                if not 0.0 <= number <= 1.0 + 1e-12:
                    problems.append(
                        f"{label}.{key} = {number} outside [0, 1]")
            elif any(word in lowered for word in _NON_NEGATIVE_KEYS):
                if number < 0.0:
                    problems.append(f"{label}.{key} = {number} is negative")
    return problems


def validate_outcome(outcome: "ScenarioOutcome",
                     atol: float = 1e-6) -> list[str]:
    """Validate the plain-data payload of a successful outcome.

    Returns the list of violations; an empty list means the outcome passes.
    Only ``status="ok"`` outcomes are checked — failures already carry
    their own diagnosis.
    """
    if not outcome.ok:
        return []
    problems = []
    if outcome.summary is not None:
        problems.extend(validate_summary_data(outcome.summary.to_dict()))
    if outcome.hops:
        for position, hop in enumerate(outcome.hops):
            if isinstance(hop, dict):
                problems.extend(
                    validate_summary_data(hop, label=f"hops[{position}]"))
    if isinstance(outcome.end_to_end, dict):
        problems.extend(
            validate_summary_data(outcome.end_to_end, label="end_to_end"))
    if outcome.events_processed < 0:
        problems.append(
            f"events_processed = {outcome.events_processed} is negative")
    return problems


def validate_backend_states(backend, scenario,
                            alphas: tuple = (0.1, 0.3),
                            atol: float = 1e-6) -> list[str]:
    """Best-effort trace-1 PSD sanity over the backend's heralded states.

    Delivered pairs retain only a fidelity float, so the reachable density
    states are the backend's (cached, pure) attempt models: resolve one
    heralded sample per ``alpha`` with a throwaway RNG and validate its
    conditional state.  Backends without sampleable models are skipped —
    validation must never fail a run for lacking states to check.
    """
    import numpy as np

    problems = []
    rng = np.random.default_rng(0)
    for alpha in alphas:
        try:
            model = backend.attempt_model(scenario, float(alpha))
            _, sample = model.resolve(rng, 4096)
        except Exception:
            continue
        state = getattr(sample, "state", None)
        if state is None:
            continue
        problem = validate_density_state(state.matrix, atol=atol)
        if problem is not None:
            problems.append(f"heralded state at alpha={alpha}: {problem}")
    return problems


# --------------------------------------------------------------------------- #
# Quarantine
# --------------------------------------------------------------------------- #
@dataclass
class QuarantineRecord:
    """Durable record of one scenario retired by its retry budget."""

    index: int
    scenario_name: str
    seed: Optional[int]
    attempts: int
    #: Taxonomy status of the *last* observed failure (``"crash"`` when the
    #: coordinator quarantined on lease deaths without any report).
    status: str
    error: Optional[str] = None
    #: Who decided: ``"sweep"`` (in-process retry loop) or
    #: ``"coordinator"`` (cluster claim path).
    source: str = "sweep"
    recorded_at: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {"index": self.index,
                "scenario_name": self.scenario_name,
                "seed": self.seed,
                "attempts": self.attempts,
                "status": self.status,
                "error": self.error,
                "source": self.source,
                "recorded_at": self.recorded_at}

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantineRecord":
        return cls(index=int(data["index"]),
                   scenario_name=data["scenario_name"],
                   seed=data.get("seed"),
                   attempts=int(data.get("attempts", 0)),
                   status=data.get("status", "error"),
                   error=data.get("error"),
                   source=data.get("source", "sweep"),
                   recorded_at=float(data.get("recorded_at", 0.0)))


class QuarantineStore:
    """One durable JSON record per quarantined scenario.

    Lives in a ``quarantine/`` subdirectory of the resume-cache or cluster
    directory.  Writes use the atomic + fsync idiom (a record's existence
    is proof of the decision), and records are keyed by scenario index so
    racing writers converge on one file.
    """

    DIRNAME = "quarantine"

    def __init__(self, base_dir: "str | Path") -> None:
        self.directory = Path(base_dir) / self.DIRNAME

    def path(self, index: int) -> Path:
        """Record file for global scenario ``index``."""
        return self.directory / f"scenario-{index:05d}.json"

    def record(self, record: QuarantineRecord) -> Path:
        """Durably persist ``record`` (idempotent: last write wins)."""
        from repro.runtime.cache import atomic_write_text

        path = self.path(record.index)
        atomic_write_text(path, json.dumps(record.to_dict(), indent=2),
                          durable=True)
        return path

    def load(self, index: int) -> Optional[QuarantineRecord]:
        """The record for ``index``, or ``None``."""
        try:
            data = json.loads(self.path(index).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return QuarantineRecord.from_dict(data)

    def load_all(self) -> list[QuarantineRecord]:
        """Every readable record, by scenario index."""
        if not self.directory.exists():
            return []
        records = []
        for path in sorted(self.directory.glob("scenario-*.json")):
            try:
                records.append(
                    QuarantineRecord.from_dict(json.loads(path.read_text())))
            except (OSError, json.JSONDecodeError, KeyError, ValueError):
                continue
        return sorted(records, key=lambda record: record.index)

    def indices(self) -> set[int]:
        """Indices with a quarantine record."""
        return {record.index for record in self.load_all()}


def quarantined_outcome(last: "ScenarioOutcome",
                        attempts: int) -> "ScenarioOutcome":
    """The placeholder outcome recorded for a quarantined scenario.

    Carries the last failure's identity and provenance so the merged sweep
    still accounts for the scenario, with ``status="quarantined"`` so no
    consumer mistakes it for data.
    """
    from dataclasses import replace

    return replace(
        last,
        status=QUARANTINED,
        summary=None,
        error=(f"quarantined after {attempts} attempt(s); last failure "
               f"[{last.status}]: {last.error or 'no diagnostic'}"),
    )


# --------------------------------------------------------------------------- #
# Scenario-level fault injection
# --------------------------------------------------------------------------- #
#: Environment variable carrying a :class:`ScenarioFaultPlan` into worker
#: processes (sweep pool children and cluster workers alike).
SCENARIO_FAULTS_ENV = "REPRO_SCENARIO_FAULTS"


@dataclass(frozen=True)
class ScenarioFaultPlan:
    """Scheduled scenario-level faults, keyed by scenario name.

    ``hang`` members spin an unbounded event loop (a genuine hang that
    only a guard deadline/budget can stop); ``oom`` members raise
    ``MemoryError`` at execution time; ``crash`` members kill their worker
    process outright (``os._exit``), leaving the lease to go stale exactly
    like an OOM-killed machine.  Serialised through one environment
    variable so every execution layer — in-process sweep, pool workers,
    cluster workers — sees the same schedule.
    """

    hang: frozenset = frozenset()
    oom: frozenset = frozenset()
    crash: frozenset = frozenset()

    def fault_for(self, scenario_name: str) -> Optional[str]:
        """The fault kind scheduled for ``scenario_name``, or ``None``."""
        if scenario_name in self.hang:
            return "hang"
        if scenario_name in self.oom:
            return "oom"
        if scenario_name in self.crash:
            return "crash"
        return None

    def to_dict(self) -> dict:
        return {"hang": sorted(self.hang), "oom": sorted(self.oom),
                "crash": sorted(self.crash)}

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioFaultPlan":
        return cls(hang=frozenset(data.get("hang", ())),
                   oom=frozenset(data.get("oom", ())),
                   crash=frozenset(data.get("crash", ())))

    def to_env(self) -> str:
        """The ``REPRO_SCENARIO_FAULTS`` value carrying this plan."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_env(cls, value: Optional[str] = None,
                 ) -> Optional["ScenarioFaultPlan"]:
        """Parse the environment plan; ``None`` when unset/empty/invalid."""
        if value is None:
            value = os.environ.get(SCENARIO_FAULTS_ENV, "")
        if not value:
            return None
        try:
            data = json.loads(value)
        except json.JSONDecodeError:
            return None
        if not isinstance(data, dict):
            return None
        return cls.from_dict(data)


#: Parsed-plan cache keyed by the raw env value (re-parsing per scenario
#: would put a JSON decode on the hot path of every faulted sweep).
_fault_plan_cache: dict[str, Optional[ScenarioFaultPlan]] = {}


def injected_scenario_fault(scenario_name: str) -> Optional[str]:
    """The fault scheduled for ``scenario_name`` by the environment plan.

    Returns ``None`` — at the cost of a single ``os.environ`` lookup —
    whenever ``REPRO_SCENARIO_FAULTS`` is unset, which is the production
    default.
    """
    value = os.environ.get(SCENARIO_FAULTS_ENV)
    if not value:
        return None
    if value not in _fault_plan_cache:
        _fault_plan_cache[value] = ScenarioFaultPlan.from_env(value)
    plan = _fault_plan_cache[value]
    if plan is None:
        return None
    return plan.fault_for(scenario_name)


def perform_injected_fault(kind: str, scenario_name: str,
                           guard: Optional[GuardPolicy]) -> None:
    """Execute one scheduled scenario-level fault.

    ``hang`` builds a throwaway engine spinning no-op events — with a
    guard installed the engine's own budget/deadline path interrupts it
    (raising :class:`EngineInterrupt`), without one it spins forever,
    which is exactly the failure mode the guard exists to bound.  ``oom``
    raises ``MemoryError``; ``crash`` kills the process without cleanup
    (no submit, no heartbeat shutdown), simulating an OOM-killed worker.
    """
    if kind == "oom":
        raise MemoryError(f"injected oom for scenario {scenario_name!r}")
    if kind == "crash":
        os._exit(137)
    if kind == "hang":
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine()
        if guard is not None:
            guard.install(engine)
        engine.schedule_periodic(1.0, lambda: None, name="injected-hang")
        engine.run()
        return
    raise ValueError(f"unknown injected fault kind {kind!r}")
