"""High-level simulation runner combining network, workload and metrics."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.analysis.metrics import MetricsCollector, MetricsSummary
from repro.core.scheduler import SchedulingStrategy
from repro.hardware.parameters import ScenarioConfig
from repro.network.network import LinkLayerNetwork
from repro.runtime.workload import RequestGenerator, WorkloadSpec


@dataclass
class RunResult:
    """Outcome of one simulation run.

    The summary fields are plain data so the result can cross process
    boundaries (sweep workers) and be serialised.  The live ``metrics`` /
    ``network`` handles are in-process conveniences only: they are excluded
    from comparison and dropped when the result is pickled.
    """

    scenario_name: str
    scheduler_name: str
    simulated_time: float
    summary: MetricsSummary
    requests_issued: int
    seed: Optional[int] = None
    #: Resolved name of the physics backend that produced this result.
    backend: str = "density"
    #: Resolved name of the event-engine (queue) implementation the run was
    #: simulated on.  Engines are event-for-event equivalent, so this is
    #: provenance, not part of the result identity — excluded from
    #: comparison like the live handles below.
    engine: str = field(default="heap", compare=False)
    #: Simulation events processed during the run — deterministic for a
    #: given (scenario, seed, backend), and the raw signal cost models and
    #: benchmarks use to compare runs across machines.  Identical across
    #: event engines (the equivalence suite pins this).
    events_processed: int = 0
    #: Events never scheduled thanks to outcome-preserving timer elision
    #: (PR 5/7): skipped watchdogs, no-op busy polls, collapsed reply
    #: hand-overs.  Provenance alongside ``events_processed`` — makes the
    #: elision wins visible in sweep output without being part of the
    #: result identity.
    events_elided: int = field(default=0, compare=False)
    #: Per-link (hop) delivery digests for multi-link topology runs
    #: (``repro.topology``): one plain-data dict per link — pairs,
    #: throughput, fidelity, latency, errors.  ``None`` for single-link runs.
    hops: Optional[list] = None
    #: End-to-end statistics of a topology run: chain swap-ASAP delivery
    #: (pairs, fidelity, latency, swaps) or switched-star aggregate
    #: (pairs, fairness).  ``None`` for single-link runs.
    end_to_end: Optional[dict] = None
    #: Name of the topology the run was simulated on; ``None`` = the
    #: classic single link.
    topology: Optional[str] = None
    metrics: Optional[MetricsCollector] = field(default=None, repr=False,
                                                compare=False)
    network: Optional[LinkLayerNetwork] = field(default=None, repr=False,
                                                compare=False)
    #: Live observability session (``repro.obs.ObsSession``) of the run,
    #: when ``REPRO_OBS`` enabled one — in-process only, like ``metrics``/
    #: ``network``: the sweep layer writes its artifacts and drops it.
    obs: Optional[object] = field(default=None, repr=False, compare=False)

    def detached(self) -> "RunResult":
        """A copy without the live simulation handles (picklable payload)."""
        return replace(self, metrics=None, network=None, obs=None)

    def __getstate__(self) -> dict:
        # Never ship the live network/collector across processes: they hold
        # the full event queue and qubit states and are not picklable.
        state = self.__dict__.copy()
        state["metrics"] = None
        state["network"] = None
        state["obs"] = None
        return state


class SimulationRun:
    """One complete link-layer simulation.

    Parameters
    ----------
    scenario:
        Hardware scenario (Lab or QL2020).
    workload:
        The workload specs describing the CREATE arrival process.
    scheduler:
        Scheduling strategy name ("FCFS", "HigherWFQ", "LowerWFQ") or instance.
    seed:
        Master seed; the workload uses ``seed + 1``.
    emission_multiplexing:
        Forwarded to the EGP.
    backend:
        Physics backend for the whole run; a name, an instance, or ``None``
        for the environment default (``REPRO_BACKEND``).
    engine:
        Event-engine selection for the simulation; a name (``"heap"``,
        ``"calendar"``, ``"ladder"``), an ``EventQueue`` instance, or
        ``None`` for the environment default (``REPRO_ENGINE``).
    elide_watchdog:
        Forwarded to the EGPs; ``None`` skips reply watchdogs exactly when
        the scenario cannot lose classical frames.
    """

    def __init__(self, scenario: ScenarioConfig,
                 workload: Sequence[WorkloadSpec],
                 scheduler: str | SchedulingStrategy = "FCFS",
                 seed: Optional[int] = 12345,
                 emission_multiplexing: bool = True,
                 attempt_batch_size: int = 1,
                 backend=None,
                 engine=None,
                 elide_watchdog: Optional[bool] = None,
                 timer_elision: bool = True,
                 obs="env") -> None:
        self.scenario = scenario
        self.seed = seed
        self.network = LinkLayerNetwork(scenario, scheduler=scheduler,
                                        seed=seed,
                                        emission_multiplexing=emission_multiplexing,
                                        attempt_batch_size=attempt_batch_size,
                                        backend=backend,
                                        event_queue=engine,
                                        elide_watchdog=elide_watchdog,
                                        timer_elision=timer_elision)
        self.metrics = MetricsCollector(self.network)
        workload_seed = None if seed is None else seed + 1
        self.generator = RequestGenerator(self.network, list(workload),
                                          metrics=self.metrics,
                                          seed=workload_seed)
        self._scheduler_name = (scheduler if isinstance(scheduler, str)
                                else scheduler.name)
        # Observability: an ``ObsSession`` instance, ``None`` to disable,
        # or the default ``"env"`` to resolve from ``REPRO_OBS`` (which is
        # unset in production — the zero-cost default).  Attaching only
        # sets tracer attributes; it never mutates simulation state.
        if obs == "env":
            from repro.obs import session_from_env

            obs = session_from_env()
        self.obs = obs
        if self.obs is not None:
            self.obs.attach_link_network(self.network)
            self.obs.start_profiler()

    def run(self, duration: float) -> RunResult:
        """Run the simulation for ``duration`` simulated seconds."""
        self.start()
        self.network.run(duration)
        return self.finalize(duration)

    # The start / advance_to / finalize split lets a cohort runner
    # interleave many simulations in one process (repro.runtime.batch):
    # each member's engine is independent, so slicing its advancement into
    # steps composes to exactly the same run as one run(duration) call.
    def start(self) -> None:
        """Begin the workload; the run can then be advanced incrementally."""
        self.generator.start()

    def advance_to(self, time: float) -> None:
        """Advance the simulation to absolute simulated ``time``."""
        self.network.run_until(time)

    def finalize(self, duration: float) -> RunResult:
        """Collect the result after the run has reached ``duration``."""
        result = RunResult(
            scenario_name=self.scenario.name,
            scheduler_name=self._scheduler_name,
            simulated_time=duration,
            summary=self.metrics.summary(),
            requests_issued=self.generator.requests_issued,
            seed=self.seed,
            backend=self.network.backend.name,
            engine=self.network.engine.queue_name,
            events_processed=self.network.engine.processed_events,
            events_elided=self.network.engine.elided_events,
            metrics=self.metrics,
            network=self.network,
            obs=self.obs,
        )
        if self.obs is not None:
            self.obs.finish_run(result)
        return result


def run_scenario(scenario: ScenarioConfig, workload: Sequence[WorkloadSpec],
                 duration: float, scheduler: str | SchedulingStrategy = "FCFS",
                 seed: Optional[int] = 12345,
                 emission_multiplexing: bool = True,
                 attempt_batch_size: int = 1,
                 backend=None, engine=None,
                 elide_watchdog: Optional[bool] = None,
                 timer_elision: bool = True) -> RunResult:
    """Convenience one-shot runner used by benchmarks and examples."""
    run = SimulationRun(scenario, workload, scheduler=scheduler, seed=seed,
                        emission_multiplexing=emission_multiplexing,
                        attempt_batch_size=attempt_batch_size,
                        backend=backend, engine=engine,
                        elide_watchdog=elide_watchdog,
                        timer_elision=timer_elision)
    return run.run(duration)
