"""Workload generation — the paper's request arrival model (Section 6).

"In each MHP cycle, we randomly issue a new CREATE request for a random
number of pairs k (max k_max), and random kind P in {NL, CK, MD} with
probability ``f_P * p_succ / (E * k)``", where ``p_succ`` is the single
attempt success probability, ``E`` the expected number of MHP cycles per
attempt and ``f_P`` the load fraction of kind P.

Instead of flipping a coin every cycle (hundreds of thousands of events per
simulated second), the generator draws geometric inter-arrival times with the
same per-cycle probability, which is statistically identical and much cheaper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.metrics import MetricsCollector
from repro.core.messages import EntanglementRequest, Priority, RequestType
from repro.network.network import LinkLayerNetwork
from repro.sim.entity import Entity


@dataclass(frozen=True)
class WorkloadSpec:
    """Arrival specification for one request kind.

    Parameters
    ----------
    priority:
        NL, CK or MD — selects both the queue priority and the request type
        (NL/CK are create-and-keep, MD is measure-directly).
    load_fraction:
        The paper's ``f_P``: 0.7 (*Low*), 0.99 (*High*) or 1.5 (*Ultra*).
    max_pairs:
        ``k_max``; the number of pairs per request is uniform on
        ``1..max_pairs`` reweighted by the arrival model.
    origin:
        "A", "B" or "random" — where CREATE requests are submitted.
    min_fidelity:
        F_min carried by every request of this kind.
    num_pairs:
        Optional fixed number of pairs per request (overrides ``max_pairs``),
        used for the Table-1 scenarios (2 NL / 2 CK / 10 MD pairs).
    max_time:
        Request timeout passed to the EGP (0 = none).
    """

    priority: Priority
    load_fraction: float = 0.99
    max_pairs: int = 1
    origin: str = "random"
    min_fidelity: float = 0.64
    num_pairs: Optional[int] = None
    max_time: float = 0.0

    @property
    def request_type(self) -> RequestType:
        """Request type implied by the priority class."""
        if self.priority is Priority.MD:
            return RequestType.MEASURE
        return RequestType.KEEP

    @property
    def consecutive(self) -> bool:
        """All the paper's evaluation workloads use per-pair OKs."""
        return True


@dataclass(frozen=True)
class UsagePattern:
    """A named mix of workload kinds (paper Table 2)."""

    name: str
    specs: tuple[WorkloadSpec, ...]


class RequestGenerator(Entity):
    """Issues CREATE requests into a network according to workload specs.

    Parameters
    ----------
    network:
        The wired link-layer network.
    specs:
        One :class:`WorkloadSpec` per request kind.
    metrics:
        Optional metrics collector; submitted requests are registered with it.
    seed:
        Seed for the arrival process randomness.
    queue_length_sample_interval:
        How often to sample the distributed queue length (seconds); 0 disables
        sampling.
    """

    def __init__(self, network: LinkLayerNetwork,
                 specs: list[WorkloadSpec] | tuple[WorkloadSpec, ...],
                 metrics: Optional[MetricsCollector] = None,
                 seed: Optional[int] = None,
                 queue_length_sample_interval: float = 0.1) -> None:
        super().__init__(network.engine, name="RequestGenerator")
        self.network = network
        self.specs = [spec for spec in specs if spec.load_fraction > 0]
        self.metrics = metrics
        self.rng = np.random.default_rng(seed)
        self.queue_length_sample_interval = queue_length_sample_interval
        self.requests_issued = 0
        self._started = False
        self._arrival_rates: dict[int, tuple[float, np.ndarray]] = {}
        self._compute_arrival_rates()

    # ------------------------------------------------------------------ #
    # Arrival model
    # ------------------------------------------------------------------ #
    def _compute_arrival_rates(self) -> None:
        scenario = self.network.scenario
        timing = scenario.timing
        for index, spec in enumerate(self.specs):
            feu = self.network.node_a.feu
            estimate = feu.estimate_for_fidelity(spec.min_fidelity,
                                                 spec.request_type)
            if estimate is not None:
                p_succ = estimate.success_probability
            else:
                model = self.network.backend.attempt_model(scenario, 0.3)
                p_succ = model.success_probability
            expected_cycles = timing.expected_cycles(
                spec.request_type is RequestType.MEASURE)
            if spec.num_pairs is not None:
                pair_choices = np.array([spec.num_pairs])
            else:
                pair_choices = np.arange(1, spec.max_pairs + 1)
            # Per-cycle probability of an arrival of this kind, marginalised
            # over k (each k drawn uniformly, arrival prob f*p/(E*k)).
            per_k = spec.load_fraction * p_succ / (expected_cycles * pair_choices)
            per_cycle_probability = float(per_k.mean())
            # Conditional distribution of k given an arrival: proportional 1/k.
            weights = 1.0 / pair_choices
            weights = weights / weights.sum()
            self._arrival_rates[index] = (per_cycle_probability,
                                          np.stack([pair_choices, weights]))

    def expected_request_rate(self, spec_index: int) -> float:
        """Expected CREATE requests per second for one workload spec."""
        per_cycle, _ = self._arrival_rates[spec_index]
        return per_cycle / self.network.scenario.timing.mhp_cycle

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start issuing requests (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(len(self.specs)):
            self._schedule_next_arrival(index)
        if self.metrics is not None and self.queue_length_sample_interval > 0:
            # A fixed-cadence sampler is exactly what schedule_periodic is
            # for: one reusable event instead of a push per sample.
            self.engine.schedule_periodic(self.queue_length_sample_interval,
                                          self._sample_queue,
                                          name="queue_sample")

    def _sample_queue(self) -> None:
        if self.metrics is not None:
            self.metrics.sample_queue_length()

    def _schedule_next_arrival(self, spec_index: int) -> None:
        per_cycle, _ = self._arrival_rates[spec_index]
        if per_cycle <= 0:
            return
        cycle_time = self.network.scenario.timing.mhp_cycle
        # Geometric number of cycles until the next arrival (support >= 1).
        cycles = int(self.rng.geometric(min(per_cycle, 1.0)))
        delay = cycles * cycle_time
        self.call_after(delay, self._issue, args=(spec_index,),
                        name="request_arrival")

    def _issue(self, spec_index: int) -> None:
        spec = self.specs[spec_index]
        _, pair_table = self._arrival_rates[spec_index]
        choices, weights = pair_table
        number = int(self.rng.choice(choices, p=weights))
        origin = spec.origin
        if origin == "random":
            origin = "A" if self.rng.random() < 0.5 else "B"
        request = EntanglementRequest(
            remote_node_id="B" if origin == "A" else "A",
            request_type=spec.request_type,
            number=number,
            consecutive=spec.consecutive,
            max_time=spec.max_time,
            purpose_id=int(spec.priority),
            priority=spec.priority,
            min_fidelity=spec.min_fidelity,
            origin=origin,
        )
        node = self.network.nodes[origin]
        if self.metrics is not None:
            request.create_time = self.now
            self.metrics.register_request(request)
        node.create(request)
        self.requests_issued += 1
        self._schedule_next_arrival(spec_index)
