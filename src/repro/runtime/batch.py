"""Cohort execution — many analytic scenarios advanced in one process.

A cohort bundles B independent scenarios into one process around a shared
:class:`repro.backends.vectorized.VectorizedAnalyticBackend`.  Each member is
an ordinary :class:`~repro.runtime.runner.SimulationRun` with its own event
engine, network and per-member RNG streams, so member ``i``'s random draws —
and therefore its summary, trace and event count — are bit-identical to a
solo analytic run of scenario ``i``.  What the cohort shares is everything
deterministic the members have in common: FEU fidelity tables, attempt
models and memoized pair-physics chains (see the backend's docstring), which
is where the per-member setup and delivery cost collapses.

The cohort advances in lockstep slices of the longest member duration.
Members whose own duration is reached are finalized and retired without
stalling the rest (ragged retirement), and a member that raises is recorded
and retired without poisoning the cohort (failure isolation).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.backends import PhysicsBackend
from repro.backends.vectorized import VectorizedAnalyticBackend
from repro.runtime.runner import RunResult, SimulationRun
from repro.runtime.scenarios import ScenarioSpec

__all__ = [
    "CohortRunner",
    "DEFAULT_STEPS",
    "cohortable",
    "execute_cohort",
]

#: Lockstep slices per cohort.  Slicing has no effect on results (each
#: member's engine advances through the same events either way); it only
#: bounds how far members can drift apart, which keeps the shared backend
#: caches hot across members working on similar simulated times.
DEFAULT_STEPS = 8


def cohortable(spec: ScenarioSpec) -> bool:
    """Whether ``spec`` can join a vectorized cohort.

    Cohorts require the closed-form ``analytic`` backend: ``density`` has no
    closed-form tables to share, and ``analytic-exact`` exists precisely to
    mirror the density backend's event granularity for equivalence tests.
    Topology scenarios are excluded too — a multi-link run already advances
    several link stacks on one shared engine, which the cohort's interleaved
    advancement scheme does not model.
    """
    return (spec.backend_name() == "analytic"
            and getattr(spec, "topology", None) is None)


@dataclass
class _Member:
    index: int
    spec: ScenarioSpec
    seed: Optional[int]
    duration: float
    run: Optional[SimulationRun] = None
    advanced: float = 0.0


class CohortRunner:
    """Advance a cohort of analytic scenarios through one shared backend.

    Parameters
    ----------
    specs:
        The scenarios forming the cohort; every spec must resolve to the
        ``analytic`` backend (see :func:`cohortable`).
    duration:
        Simulated seconds — one float for all members, or a per-member
        sequence (members with shorter durations retire early).
    seeds:
        Per-member seeds (e.g. the sweep's ``SeedSequence``-derived ones);
        ``None`` falls back to each spec's own seed, exactly like
        :meth:`ScenarioSpec.run`.
    backend:
        Shared backend instance; defaults to a fresh
        :class:`VectorizedAnalyticBackend`.  Passing one in lets several
        consecutive cohorts reuse warmed caches.
    steps:
        Lockstep slices (see :data:`DEFAULT_STEPS`).
    guard:
        Optional :class:`repro.runtime.guard.GuardPolicy` installed on
        every member's engine: the event budget applies per member, and
        the wall deadline — armed once at cohort start — bounds the whole
        cohort, so one hung member cannot wedge the process.  A member
        interrupted by its guard is retired like any failed member (its
        :class:`~repro.sim.engine.EngineInterrupt` traceback lands in
        ``errors``); :func:`execute_cohort` then re-runs it solo.

    After :meth:`run`, ``errors`` holds the per-member traceback (or
    ``None``) and ``wall_time`` the cohort's total wall-clock seconds.
    """

    def __init__(self, specs: Sequence[ScenarioSpec],
                 duration: Union[float, Sequence[float]],
                 seeds: Optional[Sequence[Optional[int]]] = None,
                 backend: Optional[PhysicsBackend] = None,
                 steps: int = DEFAULT_STEPS,
                 guard=None) -> None:
        self.specs = list(specs)
        if not self.specs:
            raise ValueError("cohort is empty")
        for spec in self.specs:
            if not cohortable(spec):
                raise ValueError(
                    f"scenario {spec.name!r} resolves to backend "
                    f"{spec.backend_name()!r}; cohorts require 'analytic'")
        if isinstance(duration, (int, float)):
            durations = [float(duration)] * len(self.specs)
        else:
            durations = [float(value) for value in duration]
            if len(durations) != len(self.specs):
                raise ValueError(f"{len(durations)} durations for "
                                 f"{len(self.specs)} scenarios")
        if any(value <= 0 for value in durations):
            raise ValueError("durations must be positive")
        self.durations = durations
        if seeds is None:
            seed_list: list[Optional[int]] = [spec.seed
                                              for spec in self.specs]
        else:
            seed_list = list(seeds)
            if len(seed_list) != len(self.specs):
                raise ValueError(f"{len(seed_list)} seeds for "
                                 f"{len(self.specs)} scenarios")
        self.seeds = seed_list
        self.backend = (backend if backend is not None
                        else VectorizedAnalyticBackend())
        self.steps = max(1, int(steps))
        self.guard = guard
        self.errors: list[Optional[str]] = [None] * len(self.specs)
        self.wall_time = 0.0

    def run(self) -> list[Optional[RunResult]]:
        """Run the cohort; ``results[i]`` is ``None`` where member ``i``
        failed (the traceback lands in ``errors[i]``)."""
        started = time.perf_counter()
        members: list[_Member] = []
        live: list[_Member] = []
        for index, (spec, seed, duration) in enumerate(
                zip(self.specs, self.seeds, self.durations)):
            member = _Member(index, spec, seed, duration)
            try:
                member.run = SimulationRun(
                    spec.scenario, spec.workload, scheduler=spec.scheduler,
                    seed=spec.seed if seed is None else seed,
                    attempt_batch_size=spec.attempt_batch_size,
                    backend=self.backend, engine=spec.engine)
                if self.guard is not None:
                    self.guard.install(member.run.network.engine)
                member.run.start()
                live.append(member)
            except Exception:
                self.errors[index] = traceback.format_exc()
                member.run = None
            members.append(member)

        results: list[Optional[RunResult]] = [None] * len(members)
        horizon_end = max(self.durations)
        for step in range(1, self.steps + 1):
            if not live:
                break
            # The final slice lands exactly on the longest duration so every
            # member's last advance_to() target is its own duration.
            horizon = (horizon_end if step == self.steps
                       else horizon_end * step / self.steps)
            survivors: list[_Member] = []
            for member in live:
                target = min(horizon, member.duration)
                try:
                    if target > member.advanced:
                        member.run.advance_to(target)
                        member.advanced = target
                    if member.advanced >= member.duration:
                        results[member.index] = member.run.finalize(
                            member.duration)
                    else:
                        survivors.append(member)
                except Exception:
                    self.errors[member.index] = traceback.format_exc()
            live = survivors
        self.wall_time = time.perf_counter() - started
        return results


def execute_cohort(payloads: Sequence[tuple[int, ScenarioSpec, int, float]],
                   backend: Optional[PhysicsBackend] = None,
                   guard=None) -> list[tuple[int, "object"]]:
    """Cohort analogue of :func:`repro.runtime.sweep.execute_scenario`.

    Runs the ``(index, spec, seed, duration)`` payloads as one cohort and
    folds every member into a plain-data
    :class:`~repro.runtime.sweep.ScenarioOutcome` tagged with the cohort
    size.  Always returns one ``(index, outcome)`` pair per payload — a
    failed member (or a cohort-level failure) becomes failed records,
    never an exception.

    With a ``guard`` (a :class:`repro.runtime.guard.GuardPolicy`), member
    engines are bounded and the cohort **degrades** instead of failing
    wholesale: any member that fails or times out inside the cohort is
    automatically re-run solo through ``execute_scenario`` — an innocent
    member of a poisoned cohort recovers on the spot, and only the poison
    member's own solo failure is left to charge its retry budget.  Members
    with a scheduled scenario-level fault (``REPRO_SCENARIO_FAULTS``) are
    routed straight to the solo path so the fault fires under the guard.
    """
    from repro.runtime.guard import injected_scenario_fault, validate_outcome
    from repro.runtime.sweep import ScenarioOutcome, execute_scenario

    outcomes: list[tuple[int, ScenarioOutcome]] = []
    grouped: list[tuple[int, ScenarioSpec, int, float]] = []
    for payload in payloads:
        if injected_scenario_fault(payload[1].name) is not None:
            index, spec, seed, duration = payload
            outcomes.append(
                (index, execute_scenario(spec, seed, duration, guard=guard)))
        else:
            grouped.append(payload)
    if not grouped:
        return outcomes

    specs = [payload[1] for payload in grouped]
    seeds = [payload[2] for payload in grouped]
    durations = [payload[3] for payload in grouped]
    cohort = len(grouped)
    try:
        runner = CohortRunner(specs, durations, seeds=seeds, backend=backend,
                              guard=guard)
        results = runner.run()
        errors = runner.errors
        # The member's effective cost inside the cohort — what batched
        # throughput planning should learn, not the solo-equivalent cost.
        member_wall = runner.wall_time / cohort
    except Exception:
        text = traceback.format_exc()
        results = [None] * cohort
        errors = [text] * cohort
        member_wall = 0.0

    for (index, spec, seed, duration), result, error in zip(
            grouped, results, errors):
        if result is not None:
            if result.obs is not None:
                # Same artifact layout as the solo path, so solo vs cohort
                # traces of a (spec, seed) pair land in the same place and
                # can be diffed byte for byte.
                result.obs.write_artifacts(f"{spec.name}-seed{seed}")
            outcome = ScenarioOutcome(
                scenario_name=spec.name,
                scheduler_name=result.scheduler_name,
                seed=seed,
                duration=duration,
                status="ok",
                summary=result.summary,
                requests_issued=result.requests_issued,
                backend=result.backend,
                events_processed=result.events_processed,
                events_elided=result.events_elided,
                engine=result.engine,
                wall_time=member_wall,
                cohort=cohort,
            )
            if (guard is not None and guard.validate
                    and validate_outcome(outcome)):
                # Suspicious result: isolate on the solo path, where the
                # full validation pass (backend states included) decides.
                outcome = execute_scenario(spec, seed, duration, guard=guard)
        elif guard is not None:
            # Cohort degradation: the failed member re-runs solo, bounded
            # by its own fresh deadline, so its failure is classified
            # (timeout/oom/error) in isolation.
            outcome = execute_scenario(spec, seed, duration, guard=guard)
        else:
            outcome = ScenarioOutcome(
                scenario_name=spec.name,
                scheduler_name=spec.scheduler_name(),
                seed=seed,
                duration=duration,
                status="error",
                error=error or "cohort member did not finish",
                backend=spec.backend_name(),
                engine=spec.engine_name(),
                wall_time=member_wall,
                cohort=cohort,
            )
        outcomes.append((index, outcome))
    return outcomes
