"""Hardware parameter sets for the Lab and QL2020 scenarios.

All numbers come from the paper (Section 4.4, Table 6 and Appendix D).  The
dataclasses are intentionally explicit so that a reader can map every field to
a quantity in the paper.

Units: seconds for time, kilometres for distance, radians for angles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.sim.channel import fibre_delay

#: Degrees-to-radians helper used for the optical phase uncertainty.
_DEG = math.pi / 180.0


@dataclass(frozen=True)
class CoherenceTimes:
    """T1 / T2 times of a single qubit in seconds.

    ``math.inf`` disables the corresponding decay process.
    """

    t1: float
    t2: float

    def __post_init__(self) -> None:
        for name, value in (("t1", self.t1), ("t2", self.t2)):
            if value <= 0:
                raise ValueError(f"{name} must be positive (use inf to disable), "
                                 f"got {value}")


@dataclass(frozen=True)
class NVGateParameters:
    """Gate/initialisation/readout fidelities and durations (paper Table 6)."""

    #: Electron (communication qubit) coherence.
    electron_coherence: CoherenceTimes = CoherenceTimes(t1=2.86e-3, t2=1.00e-3)
    #: Carbon (memory qubit) coherence.
    carbon_coherence: CoherenceTimes = CoherenceTimes(t1=math.inf, t2=3.5e-3)
    #: Electron single-qubit gate (fidelity, duration).
    electron_gate_fidelity: float = 1.0
    electron_gate_duration: float = 5e-9
    #: Electron-carbon controlled-sqrt(X) gate.
    ec_gate_fidelity: float = 0.992
    ec_gate_duration: float = 500e-6
    #: Carbon Z rotation.
    carbon_z_fidelity: float = 0.999
    carbon_z_duration: float = 20e-6
    #: Electron initialisation into |0>.
    electron_init_fidelity: float = 0.95
    electron_init_duration: float = 2e-6
    #: Carbon initialisation into |0>.
    carbon_init_fidelity: float = 0.95
    carbon_init_duration: float = 310e-6
    #: Electron readout fidelities for |0> and |1> and its duration.
    readout_fidelity_0: float = 0.95
    readout_fidelity_1: float = 0.995
    readout_duration: float = 3.7e-6
    #: Duration of the electron->carbon swap (move to memory), Section D.3.3.
    swap_to_memory_duration: float = 1040e-6
    #: Carbon re-initialisation period and duration (Section D.3.3): the
    #: carbon is re-initialised for 330 us every 3500 us while attempts run.
    carbon_reinit_period: float = 3500e-6
    carbon_reinit_duration: float = 330e-6
    #: Nuclear-spin dephasing model per entanglement attempt (Eq. 25):
    #: electron-carbon coupling strength (rad/s) and reset decay constant (s).
    carbon_coupling_rad_s: float = 2.0 * math.pi * 377e3
    carbon_reset_decay_s: float = 82e-9


@dataclass(frozen=True)
class OpticalParameters:
    """Photonic / optical parameters of one node's path to the midpoint
    (paper Appendix D.4 and D.5)."""

    #: Probability of emitting into the zero-phonon line (3% bare, 46% cavity).
    p_zero_phonon: float = 0.03
    #: Probability of collecting the emitted photon into fibre.
    p_collection: float = 0.014
    #: Extra multiplicative efficiency of frequency conversion (1.0 if unused).
    p_frequency_conversion: float = 1.0
    #: Fibre attenuation in dB/km (5 dB/km at 637 nm, 0.5 dB/km at 1588 nm).
    fiber_loss_db_per_km: float = 5.0
    #: Fibre length from this node to the heralding station, km.
    fiber_length_km: float = 1e-3
    #: Detector efficiency (probability a detector clicks given a photon).
    p_detection: float = 0.8
    #: Dark-count rate per detector, Hz.
    dark_count_rate_hz: float = 20.0
    #: Detection time window, seconds.
    detection_window: float = 50e-9
    #: Characteristic emission time of the NV (12 ns bare, 6.48 ns cavity).
    emission_time_constant: float = 12e-9
    #: Probability of a two-photon emission given at least one photon (4%).
    p_double_emission: float = 0.04
    #: Standard deviation of the optical phase of one arm, radians.  The
    #: paper's measured electron-electron phase std of 14.3 degrees splits
    #: over the two arms as 14.3/sqrt(2) per arm.
    phase_std: float = 14.3 * _DEG / math.sqrt(2.0)
    #: Photon indistinguishability |mu|^2 (Hong-Ou-Mandel visibility).
    visibility: float = 0.9

    def survival_probability(self) -> float:
        """Probability an emitted photon reaches the midpoint detectors.

        Combines zero-phonon-line emission, collection into fibre, frequency
        conversion, finite detection window and fibre transmission.  Detector
        efficiency is *not* included here (it is applied classically at the
        midpoint).
        """
        from repro.hardware.fiber import fiber_transmissivity

        window = 1.0 - math.exp(-self.detection_window / self.emission_time_constant)
        transmission = fiber_transmissivity(self.fiber_length_km,
                                            self.fiber_loss_db_per_km)
        return (self.p_zero_phonon * self.p_collection
                * self.p_frequency_conversion * window * transmission)

    def dark_count_probability(self) -> float:
        """Probability of a dark count in one detector during the window
        (Eq. 34)."""
        return 1.0 - math.exp(-self.detection_window * self.dark_count_rate_hz)


@dataclass(frozen=True)
class TimingParameters:
    """Timing constants of the physical entanglement generation (Section 4.4)."""

    #: Duration of the MHP cycle (minimum spacing between attempt triggers).
    mhp_cycle: float
    #: Full duration of one attempt for a measure-directly (M) request.
    attempt_duration_m: float
    #: Full duration of one attempt for a create-and-keep (K) request.
    attempt_duration_k: float
    #: Minimum spacing between attempts for M requests (1 / r_attempt).
    attempt_spacing_m: float
    #: Minimum spacing between attempts for K requests (1 / r_attempt).
    attempt_spacing_k: float
    #: Expected number of MHP cycles per attempt for M requests.
    expected_cycles_per_attempt_m: float
    #: Expected number of MHP cycles per attempt for K requests.
    expected_cycles_per_attempt_k: float
    #: Classical one-way communication delay node A <-> heralding station.
    midpoint_delay_a: float
    #: Classical one-way communication delay node B <-> heralding station.
    midpoint_delay_b: float

    def expected_cycles(self, measure_directly: bool) -> float:
        """E, the expected MHP cycles per attempt for the request type."""
        if measure_directly:
            return self.expected_cycles_per_attempt_m
        return self.expected_cycles_per_attempt_k


@dataclass(frozen=True)
class ClassicalLinkParameters:
    """Parameters of the classical control link (Appendix D.6.1)."""

    #: Probability of losing a classical frame (0 for realistic distances;
    #: the robustness study sweeps this up to 1e-4).
    frame_loss_probability: float = 0.0
    #: One-way delay between the two controllable nodes, seconds.
    node_to_node_delay: float = 1e-6


@dataclass(frozen=True)
class ScenarioConfig:
    """Complete description of one evaluation scenario (Lab or QL2020)."""

    name: str
    gates: NVGateParameters
    optics_a: OpticalParameters
    optics_b: OpticalParameters
    timing: TimingParameters
    classical: ClassicalLinkParameters
    #: Number of communication qubits per node (NV has a single electron).
    num_communication_qubits: int = 1
    #: Number of memory (carbon) qubits per node.
    num_memory_qubits: int = 1
    #: Maximum number of outstanding requests in the distributed queue.
    max_queue_size: int = 256

    def with_frame_loss(self, probability: float) -> "ScenarioConfig":
        """Copy of this scenario with a different classical frame-loss rate."""
        classical = replace(self.classical, frame_loss_probability=probability)
        return replace(self, classical=classical)

    def with_optics(self, optics_a: Optional[OpticalParameters] = None,
                    optics_b: Optional[OpticalParameters] = None) -> "ScenarioConfig":
        """Copy of this scenario with replaced optical parameter sets."""
        return replace(self,
                       optics_a=optics_a or self.optics_a,
                       optics_b=optics_b or self.optics_b)


def lab_scenario() -> ScenarioConfig:
    """The Lab scenario: nodes 2 m apart, 1 m to the heralding station each.

    Timing constants from Section 4.4: for M requests
    ``t_attempt = 1/r_attempt = 10.12 us``; for K requests
    ``t_attempt = 1045 us`` with ``1/r_attempt ~= 11 us`` (memory qubits are
    re-initialised for 330 us every 3500 us).  E ~= 1 (M) and ~= 1.1 (K).
    """
    optics = OpticalParameters(
        p_zero_phonon=0.03,
        p_collection=0.014,
        p_frequency_conversion=1.0,
        fiber_loss_db_per_km=5.0,
        fiber_length_km=1e-3,
    )
    timing = TimingParameters(
        mhp_cycle=10.12e-6,
        attempt_duration_m=10.12e-6,
        attempt_duration_k=1045e-6,
        attempt_spacing_m=10.12e-6,
        attempt_spacing_k=11e-6,
        expected_cycles_per_attempt_m=1.0,
        expected_cycles_per_attempt_k=1.1,
        midpoint_delay_a=9.7e-9,
        midpoint_delay_b=9.7e-9,
    )
    classical = ClassicalLinkParameters(
        frame_loss_probability=0.0,
        node_to_node_delay=2 * 9.7e-9,
    )
    return ScenarioConfig(
        name="Lab",
        gates=NVGateParameters(),
        optics_a=optics,
        optics_b=optics,
        timing=timing,
        classical=classical,
    )


def ql2020_scenario() -> ScenarioConfig:
    """The QL2020 scenario: two European cities ~25 km apart over telecom fibre.

    Node A is ~10 km from the heralding station (48.4 us one-way delay),
    node B ~15 km (72.6 us).  Photons are frequency-converted to 1588 nm
    (0.5 dB/km loss) and optical cavities enhance emission.  Timing constants
    from Section 4.4: ``t_attempt = 145 us`` (M) and ``1185 us`` (K);
    ``1/r_attempt = 10.12 us`` (M) and ``~165 us`` (K); E ~= 1 (M), ~= 16 (K).
    """
    optics_a = OpticalParameters(
        p_zero_phonon=0.46,
        p_collection=0.014,
        p_frequency_conversion=0.30,
        fiber_loss_db_per_km=0.5,
        fiber_length_km=10.0,
        emission_time_constant=6.48e-9,
    )
    optics_b = replace(optics_a, fiber_length_km=15.0)
    delay_a = 48.4e-6
    delay_b = 72.6e-6
    timing = TimingParameters(
        mhp_cycle=10.12e-6,
        attempt_duration_m=145e-6,
        attempt_duration_k=1185e-6,
        attempt_spacing_m=10.12e-6,
        attempt_spacing_k=165e-6,
        expected_cycles_per_attempt_m=1.0,
        expected_cycles_per_attempt_k=16.0,
        midpoint_delay_a=delay_a,
        midpoint_delay_b=delay_b,
    )
    classical = ClassicalLinkParameters(
        frame_loss_probability=0.0,
        node_to_node_delay=fibre_delay(25.0),
    )
    return ScenarioConfig(
        name="QL2020",
        gates=NVGateParameters(),
        optics_a=optics_a,
        optics_b=optics_b,
        timing=timing,
        classical=classical,
    )
