"""Classical control link error model (paper Appendix D.6).

The paper models the non-quantum control link as a legacy 1000BASE-ZX Gigabit
Ethernet interface and maps the optical link budget to an IEEE 802.3 frame
error probability using measurement traces.  The headline numbers are:

* at the QL2020 distances (15-25 km) the frame error probability is
  effectively zero,
* an exaggerated configuration (30 splices at 0.3 dB each on a 15 km link)
  still only reaches ~4e-8,
* frame errors only become noticeable beyond ~40 km, with a very narrow
  transition from "no errors" to "link down".

We reproduce that behaviour with an explicit link-budget calculation and a
calibrated exponential mapping from the power margin to the frame error
probability.  The robustness experiments then *override* the loss probability
with the stress values 1e-10 .. 1e-4 exactly as the paper does.
"""

from __future__ import annotations

import math

#: Transmit power of a 1000BASE-ZX SFP transceiver, dBm (worst case).
TX_POWER_DBM = -1.0
#: Receiver sensitivity, dBm.
RX_SENSITIVITY_DBM = -24.0
#: Attenuation per connector, dB.
CONNECTOR_LOSS_DB = 0.7
#: Safety margin, dB.
SAFETY_MARGIN_DB = 3.0
#: Calibrated decades of frame-error improvement per dB of margin.  Chosen so
#: that the paper's exaggerated 30-splice 15 km example lands at ~4e-8 and the
#: error probability reaches 1 as the margin crosses zero (~40 km clean link).
_DECADES_PER_DB = 3.5


def link_budget_db(length_km: float, loss_db_per_km: float = 0.5,
                   splices: int = 0, splice_loss_db: float = 0.1,
                   connectors: int = 2) -> float:
    """Total optical attenuation of the classical link in dB.

    Includes fibre attenuation, connector and splice losses and the safety
    margin of the worst-case budget in Appendix D.6.1.
    """
    if length_km < 0:
        raise ValueError(f"negative length {length_km}")
    if splices < 0 or connectors < 0:
        raise ValueError("splices and connectors must be non-negative")
    return (length_km * loss_db_per_km
            + connectors * CONNECTOR_LOSS_DB
            + splices * splice_loss_db
            + SAFETY_MARGIN_DB)


def power_margin_db(length_km: float, loss_db_per_km: float = 0.5,
                    splices: int = 0, splice_loss_db: float = 0.1,
                    connectors: int = 2) -> float:
    """Margin between received power and receiver sensitivity, dB."""
    attenuation = link_budget_db(length_km, loss_db_per_km, splices,
                                 splice_loss_db, connectors)
    received = TX_POWER_DBM - attenuation
    return received - RX_SENSITIVITY_DBM


def frame_error_probability(length_km: float, loss_db_per_km: float = 0.5,
                            splices: int = 0, splice_loss_db: float = 0.1,
                            connectors: int = 2) -> float:
    """IEEE 802.3 frame error probability of the classical link.

    The mapping follows the qualitative shape of the measurement-driven model
    in the paper: essentially zero errors with healthy margin, an extremely
    sharp rise as the margin is exhausted, and a dead link (probability 1)
    once the received power falls below the receiver sensitivity.
    """
    margin = power_margin_db(length_km, loss_db_per_km, splices,
                             splice_loss_db, connectors)
    if margin <= 0:
        return 1.0
    probability = 10.0 ** (-_DECADES_PER_DB * margin)
    return float(min(max(probability, 0.0), 1.0))


def undetected_crc_error_probability(frame_error: float,
                                     frame_bits: int = 12144) -> float:
    """Probability a frame error slips past the IEEE 802.3 CRC-32.

    The paper computes ~1.4e-23 for the worst realistic case and ignores such
    errors; we expose the estimate so that the assumption can be checked.  The
    CRC-32 misses a fraction of roughly 2^-32 of error patterns.
    """
    if not 0.0 <= frame_error <= 1.0:
        raise ValueError(f"frame_error={frame_error} is not a probability")
    if frame_bits <= 0:
        raise ValueError(f"frame_bits={frame_bits} must be positive")
    return frame_error * 2.0 ** -32
