"""Optical fibre helpers: attenuation, transmissivity and propagation delay."""

from __future__ import annotations

from repro.sim.channel import FIBRE_LIGHT_SPEED_KM_S


def fiber_attenuation_db(length_km: float, loss_db_per_km: float) -> float:
    """Total attenuation in dB over ``length_km`` of fibre."""
    if length_km < 0:
        raise ValueError(f"negative fibre length {length_km}")
    if loss_db_per_km < 0:
        raise ValueError(f"negative fibre loss {loss_db_per_km}")
    return length_km * loss_db_per_km


def fiber_transmissivity(length_km: float, loss_db_per_km: float) -> float:
    """Probability a photon survives the fibre (10^(-L*gamma/10), Eq. 33)."""
    attenuation = fiber_attenuation_db(length_km, loss_db_per_km)
    return 10.0 ** (-attenuation / 10.0)


def propagation_delay(length_km: float) -> float:
    """One-way propagation delay in seconds over ``length_km`` of fibre."""
    if length_km < 0:
        raise ValueError(f"negative fibre length {length_km}")
    return length_km / FIBRE_LIGHT_SPEED_KM_S
