"""NV-centre hardware models and scenario parameter sets.

This package models the physical layer substrate of the paper: the NV-centre
quantum processing device (electron communication qubit + carbon memory
qubit), single-click photon emission, the heralding midpoint station with its
imperfect beam-splitter measurement, optical fibre, and the classical
1000BASE-ZX control link.

The two evaluation scenarios of the paper are available as factory functions:

>>> from repro.hardware import lab_scenario, ql2020_scenario
>>> lab = lab_scenario()
>>> ql = ql2020_scenario()
"""

from repro.hardware.parameters import (
    CoherenceTimes,
    NVGateParameters,
    OpticalParameters,
    TimingParameters,
    ClassicalLinkParameters,
    ScenarioConfig,
    lab_scenario,
    ql2020_scenario,
)
from repro.hardware.emission import spin_photon_state, photon_survival_probability
from repro.hardware.heralding import (
    HeraldingOutcome,
    beam_splitter_kraus,
    MidpointStationModel,
    HeraldedStateSampler,
    AttemptOutcome,
)
from repro.hardware.nv_device import NVQuantumProcessor, QubitSlot, QubitRole
from repro.hardware.pair import EntangledPair
from repro.hardware.classical_link import frame_error_probability, link_budget_db
from repro.hardware.fiber import fiber_attenuation_db, fiber_transmissivity, propagation_delay

__all__ = [
    "CoherenceTimes",
    "NVGateParameters",
    "OpticalParameters",
    "TimingParameters",
    "ClassicalLinkParameters",
    "ScenarioConfig",
    "lab_scenario",
    "ql2020_scenario",
    "spin_photon_state",
    "photon_survival_probability",
    "HeraldingOutcome",
    "beam_splitter_kraus",
    "MidpointStationModel",
    "HeraldedStateSampler",
    "AttemptOutcome",
    "NVQuantumProcessor",
    "QubitSlot",
    "QubitRole",
    "EntangledPair",
    "frame_error_probability",
    "link_budget_db",
    "fiber_attenuation_db",
    "fiber_transmissivity",
    "propagation_delay",
]
