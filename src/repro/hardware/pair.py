"""Entangled pair bookkeeping.

An :class:`EntangledPair` is the quantum payload the link layer delivers: the
two-qubit state shared between node A (qubit 0) and node B (qubit 1), plus the
metadata the EGP attaches to it (entanglement identifier, creation time,
heralded Bell state).

The pair owns its density matrix; hardware models apply local noise to one
side through :meth:`apply_one_sided_kraus`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.quantum.density import DensityMatrix
from repro.quantum.states import BellIndex, bell_state


@dataclass
class EntangledPair:
    """A heralded entangled pair shared between the two nodes.

    Attributes
    ----------
    state:
        Two-qubit density matrix; qubit 0 is node A's half, qubit 1 node B's.
    heralded_bell:
        Bell state announced by the midpoint (|Psi+> or |Psi->).
    created_at:
        Simulation time of the heralding signal.
    midpoint_sequence:
        Sequence number assigned by the heralding station.
    """

    state: DensityMatrix
    heralded_bell: BellIndex
    created_at: float
    midpoint_sequence: int = 0
    corrected: bool = False
    #: Identifier of the physical qubit holding each side (A, B), set by the QMM.
    qubit_ids: dict[str, int] = field(default_factory=dict)

    def apply_one_sided_kraus(self, kraus_operators: Sequence[np.ndarray],
                              side: str) -> None:
        """Apply a single-qubit channel to one node's half of the pair.

        ``side`` is ``"A"`` or ``"B"``.
        """
        self.state.apply_kraus(kraus_operators, qubits=[self._side_index(side)])

    def apply_one_sided_unitary(self, unitary: np.ndarray, side: str) -> None:
        """Apply a single-qubit unitary to one node's half of the pair."""
        self.state.apply_unitary(unitary, qubits=[self._side_index(side)])

    def measure_side(self, side: str, basis: str,
                     rng: Optional[np.random.Generator] = None) -> int:
        """Projectively measure one side in the X/Y/Z basis (noiseless readout)."""
        return self.state.measure(self._side_index(side), basis=basis, rng=rng)

    def fidelity(self, target: Optional[BellIndex] = None) -> float:
        """Fidelity to ``target`` (default: the corrected/heralded Bell state).

        After the |Psi-> -> |Psi+> correction has been applied the natural
        target is |Psi+> regardless of the heralding signal.
        """
        if target is None:
            target = BellIndex.PSI_PLUS if self.corrected else self.heralded_bell
        return self.state.fidelity_to_pure(bell_state(target))

    @staticmethod
    def _side_index(side: str) -> int:
        side = side.upper()
        if side == "A":
            return 0
        if side == "B":
            return 1
        raise ValueError(f"side must be 'A' or 'B', got {side!r}")
