"""Heralding midpoint station model (paper Appendix D.5).

The station interferes the two incoming photonic qubits on a 50:50
beam-splitter and watches two detectors.  Success is declared when exactly
one detector clicks, which projects the two remote communication qubits onto
(approximately) a |Psi+> or |Psi-> Bell state.

Imperfections modelled:

* partial photon indistinguishability (visibility |mu|^2 < 1) via the
  effective Kraus operators of Appendix D.5.3,
* non-unit detector efficiency,
* dark counts,
* all the per-arm emission/collection/transmission noise applied by
  :mod:`repro.hardware.emission` before the photons arrive.

Because every entanglement attempt with the same bright-state population
``alpha`` is statistically identical, the full density-matrix calculation is
done once per ``alpha`` by :class:`HeraldedStateSampler` and then sampled
cheaply per MHP cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Optional, Sequence

import numpy as np

from repro.hardware.emission import spin_photon_state
from repro.hardware.parameters import OpticalParameters, ScenarioConfig
from repro.quantum.density import DensityMatrix
from repro.quantum.states import BellIndex, bell_state


class HeraldingOutcome(Enum):
    """Observable outcome of one heralding attempt."""

    FAILURE = "failure"          # no detector clicked, or both clicked
    PSI_PLUS = "psi_plus"        # left detector clicked
    PSI_MINUS = "psi_minus"      # right detector clicked

    @property
    def is_success(self) -> bool:
        """True when the midpoint declares entanglement."""
        return self is not HeraldingOutcome.FAILURE

    @property
    def bell_index(self) -> Optional[BellIndex]:
        """The heralded Bell state, or ``None`` on failure."""
        if self is HeraldingOutcome.PSI_PLUS:
            return BellIndex.PSI_PLUS
        if self is HeraldingOutcome.PSI_MINUS:
            return BellIndex.PSI_MINUS
        return None


def beam_splitter_kraus(mu: float) -> dict[str, np.ndarray]:
    """Effective Kraus operators of the beam-splitter measurement.

    ``mu`` is the (real) photon overlap; the Hong-Ou-Mandel visibility is
    ``mu**2``.  Operators act on the two photon presence/absence qubits in
    standard ordering (photon from A, photon from B) and correspond to
    non-photon-number-resolving detectors (paper Eqs. 94-97).

    Returns a dict with keys ``"none"`` (no click), ``"left"`` (detector c),
    ``"right"`` (detector d) and ``"both"`` (coincidence).
    """
    if not 0.0 <= mu <= 1.0:
        raise ValueError(f"photon overlap mu={mu} must be in [0, 1]")
    s_plus = (math.sqrt(1.0 + mu) + math.sqrt(1.0 - mu)) / math.sqrt(2.0)
    s_minus = (math.sqrt(1.0 + mu) - math.sqrt(1.0 - mu)) / math.sqrt(2.0)
    both_amp = math.sqrt(1.0 + mu ** 2)

    # Standard basis ordering |00>, |01>, |10>, |11> where the first qubit is
    # the photon from node A (paper arm "a"/"l") and the second from node B.
    e_none = np.zeros((4, 4), dtype=complex)
    e_none[0, 0] = 1.0

    e_left = np.zeros((4, 4), dtype=complex)
    e_left[1, 1] = s_plus / 2.0
    e_left[2, 2] = s_plus / 2.0
    e_left[1, 2] = s_minus / 2.0
    e_left[2, 1] = s_minus / 2.0
    e_left[3, 3] = both_amp / 2.0

    e_right = np.zeros((4, 4), dtype=complex)
    e_right[1, 1] = s_plus / 2.0
    e_right[2, 2] = s_plus / 2.0
    e_right[1, 2] = -s_minus / 2.0
    e_right[2, 1] = -s_minus / 2.0
    e_right[3, 3] = both_amp / 2.0

    e_both = np.zeros((4, 4), dtype=complex)
    e_both[3, 3] = math.sqrt(1.0 - mu ** 2) / math.sqrt(2.0)

    return {"none": e_none, "left": e_left, "right": e_right, "both": e_both}


@dataclass(frozen=True)
class AttemptOutcome:
    """One possible result of an entanglement generation attempt."""

    outcome: HeraldingOutcome
    probability: float
    #: Conditional two-qubit state of (electron A, electron B) given this
    #: outcome, or ``None`` for failures.
    state: Optional[DensityMatrix]

    @property
    def is_success(self) -> bool:
        """Whether the outcome heralds entanglement."""
        return self.outcome.is_success

    def fidelity(self, target: Optional[BellIndex] = None) -> float:
        """Fidelity of the conditional state to the heralded (or given) Bell state."""
        if self.state is None:
            return 0.0
        bell = target if target is not None else self.outcome.bell_index
        if bell is None:
            return 0.0
        return self.state.fidelity_to_pure(bell_state(bell))


class MidpointStationModel:
    """Beam-splitter + detectors at the heralding station.

    Parameters
    ----------
    visibility:
        Photon indistinguishability |mu|^2.
    p_detection:
        Detector efficiency.
    p_dark:
        Dark-count probability per detector per detection window.
    """

    def __init__(self, visibility: float = 0.9, p_detection: float = 0.8,
                 p_dark: float = 0.0) -> None:
        if not 0.0 <= visibility <= 1.0:
            raise ValueError(f"visibility {visibility} not in [0, 1]")
        for name, value in (("p_detection", p_detection), ("p_dark", p_dark)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} not in [0, 1]")
        self.visibility = visibility
        self.mu = math.sqrt(visibility)
        self.p_detection = p_detection
        self.p_dark = p_dark
        self._kraus = beam_splitter_kraus(self.mu)

    def _observed_click_distribution(self, ideal: str) -> dict[tuple[bool, bool], float]:
        """Distribution over observed (left, right) click patterns given the
        ideal beam-splitter outcome."""
        ideal_left = ideal in ("left", "both")
        ideal_right = ideal in ("right", "both")
        p_left = (self.p_detection if ideal_left else 0.0)
        p_left = p_left + (1.0 - p_left) * self.p_dark
        p_right = (self.p_detection if ideal_right else 0.0)
        p_right = p_right + (1.0 - p_right) * self.p_dark
        distribution = {}
        for left in (False, True):
            for right in (False, True):
                probability = ((p_left if left else 1.0 - p_left)
                               * (p_right if right else 1.0 - p_right))
                distribution[(left, right)] = probability
        return distribution

    def outcome_distribution(self, joint_state: DensityMatrix,
                             electron_qubits: Sequence[int] = (0, 2),
                             photon_qubits: Sequence[int] = (1, 3),
                             ) -> list[AttemptOutcome]:
        """Full outcome distribution for a joint (eA, pA, eB, pB) state.

        Returns one :class:`AttemptOutcome` per observable outcome.  The
        conditional electron-electron states are mixtures over the ideal
        beam-splitter branches consistent with the observed click pattern,
        so dark counts correctly degrade the heralded state.
        """
        branch_probability: dict[str, float] = {}
        branch_state: dict[str, Optional[np.ndarray]] = {}
        for label, kraus in self._kraus.items():
            conditional = joint_state.copy()
            conditional.apply_kraus([kraus], qubits=list(photon_qubits))
            probability = conditional.trace()
            branch_probability[label] = max(probability, 0.0)
            if probability > 1e-15:
                normalised = DensityMatrix(conditional.matrix / probability,
                                           validate=False)
                reduced = normalised.partial_trace(list(electron_qubits))
                branch_state[label] = reduced.matrix
            else:
                branch_state[label] = None

        # Accumulate observed click patterns over ideal branches.
        pattern_probability: dict[tuple[bool, bool], float] = {}
        pattern_state: dict[tuple[bool, bool], np.ndarray] = {}
        for label, p_branch in branch_probability.items():
            if p_branch <= 0:
                continue
            for pattern, p_pattern in self._observed_click_distribution(label).items():
                weight = p_branch * p_pattern
                if weight <= 0:
                    continue
                pattern_probability[pattern] = (
                    pattern_probability.get(pattern, 0.0) + weight)
                if branch_state[label] is not None:
                    accumulated = pattern_state.get(
                        pattern, np.zeros((4, 4), dtype=complex))
                    pattern_state[pattern] = accumulated + weight * branch_state[label]

        outcomes = []
        failure_probability = 0.0
        for pattern, probability in pattern_probability.items():
            left, right = pattern
            if left == right:
                failure_probability += probability
                continue
            outcome = (HeraldingOutcome.PSI_PLUS if left
                       else HeraldingOutcome.PSI_MINUS)
            state_matrix = pattern_state.get(pattern)
            state = None
            if state_matrix is not None and probability > 0:
                state = DensityMatrix(state_matrix / probability, validate=False)
            outcomes.append(AttemptOutcome(outcome=outcome,
                                           probability=probability,
                                           state=state))
        outcomes.append(AttemptOutcome(outcome=HeraldingOutcome.FAILURE,
                                       probability=failure_probability,
                                       state=None))
        return outcomes


class HeraldedStateSampler:
    """Per-``alpha`` cache of the attempt outcome distribution.

    One sampler fully characterises the physical entanglement generation for
    a scenario and bright-state population: success probability, heralded
    states and fidelities.  The MHP samples from it once per attempt.
    """

    def __init__(self, alpha_a: float, alpha_b: float,
                 optics_a: OpticalParameters, optics_b: OpticalParameters) -> None:
        self.alpha_a = alpha_a
        self.alpha_b = alpha_b
        self.optics_a = optics_a
        self.optics_b = optics_b
        station = MidpointStationModel(
            visibility=optics_a.visibility,
            p_detection=optics_a.p_detection,
            p_dark=optics_a.dark_count_probability(),
        )
        state_a = spin_photon_state(alpha_a, optics_a)
        state_b = spin_photon_state(alpha_b, optics_b)
        joint = state_a.tensor(state_b)
        self._outcomes = station.outcome_distribution(joint)
        self._probabilities = np.array([o.probability for o in self._outcomes])
        total = self._probabilities.sum()
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            # Renormalise tiny numerical drift; anything larger is a bug.
            if abs(total - 1.0) > 1e-3:
                raise RuntimeError(f"outcome probabilities sum to {total}")
            self._probabilities = self._probabilities / total
        self._cumulative = np.cumsum(self._probabilities)
        successes = [o for o in self._outcomes if o.is_success]
        self._success_outcomes = successes
        success_probabilities = np.array([o.probability for o in successes])
        success_total = success_probabilities.sum()
        if success_total > 0:
            self._success_cumulative = np.cumsum(success_probabilities
                                                 / success_total)
        else:
            self._success_cumulative = np.array([])

    @classmethod
    def for_scenario(cls, scenario: ScenarioConfig,
                     alpha: float) -> "HeraldedStateSampler":
        """Sampler for symmetric bright-state population ``alpha``."""
        return _cached_sampler(scenario, float(alpha))

    @property
    def outcomes(self) -> list[AttemptOutcome]:
        """All observable outcomes with probabilities and conditional states."""
        return list(self._outcomes)

    @property
    def success_probability(self) -> float:
        """Probability that one attempt heralds entanglement."""
        return float(sum(o.probability for o in self._outcomes if o.is_success))

    def average_success_fidelity(self, target: Optional[BellIndex] = None) -> float:
        """Success-probability-weighted fidelity of the heralded state."""
        successes = [o for o in self._outcomes if o.is_success]
        total = sum(o.probability for o in successes)
        if total <= 0:
            return 0.0
        return float(sum(o.probability * o.fidelity(target) for o in successes)
                     / total)

    def sample(self, rng: np.random.Generator) -> AttemptOutcome:
        """Draw the outcome of one entanglement generation attempt."""
        index = int(np.searchsorted(self._cumulative, rng.random()))
        index = min(index, len(self._outcomes) - 1)
        return self._outcomes[index]

    def sample_success(self, rng: np.random.Generator) -> AttemptOutcome:
        """Draw an outcome conditioned on the attempt having succeeded."""
        if len(self._success_outcomes) == 0:
            raise RuntimeError("scenario has zero success probability")
        index = int(np.searchsorted(self._success_cumulative, rng.random()))
        index = min(index, len(self._success_outcomes) - 1)
        return self._success_outcomes[index]

    def sample_attempts_until_success(self, rng: np.random.Generator,
                                      max_attempts: int) -> Optional[int]:
        """Number of the first successful attempt within a batch.

        Returns a 1-based attempt index, or ``None`` if all ``max_attempts``
        attempts fail.  Statistically identical to sampling each attempt
        independently with the sampler's success probability.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        p_succ = self.success_probability
        if p_succ <= 0:
            return None
        attempt = int(rng.geometric(p_succ))
        return attempt if attempt <= max_attempts else None


@lru_cache(maxsize=256)
def _cached_sampler(scenario: ScenarioConfig, alpha: float) -> HeraldedStateSampler:
    return HeraldedStateSampler(alpha, alpha, scenario.optics_a, scenario.optics_b)
