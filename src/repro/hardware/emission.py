"""Single-click spin-photon emission model (paper Appendix D.4).

A microwave pulse prepares the communication qubit in
``sqrt(alpha)|0> + sqrt(1-alpha)|1>`` (``|0>`` is the *bright* state), and a
resonant laser pulse triggers emission of a photon if the qubit is bright.
The resulting joint state of the communication qubit (C) and the travelling
photon (P, encoded as presence/absence) is::

    sqrt(alpha)|0>_C |1>_P + sqrt(1-alpha)|1>_C |0>_P

On top of the ideal state, this module applies the per-arm noise processes of
Appendix D.4:

* two-photon emission -> dephasing on the communication qubit,
* optical phase uncertainty -> dephasing on the photon qubit,
* finite detection window (coherent emission) -> amplitude damping,
* collection losses (zero-phonon line, fibre coupling, conversion) -> damping,
* fibre transmission losses -> amplitude damping.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hardware.fiber import fiber_transmissivity
from repro.hardware.parameters import OpticalParameters
from repro.quantum import noise
from repro.quantum.density import DensityMatrix


def spin_photon_ket(alpha: float) -> np.ndarray:
    """Ideal spin-photon state vector for bright-state population ``alpha``.

    Qubit ordering is (communication qubit, photon qubit).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha={alpha} is not a probability")
    ket = np.zeros(4, dtype=complex)
    ket[0b01] = math.sqrt(alpha)        # |0>_C |1>_P : bright, photon emitted
    ket[0b10] = math.sqrt(1.0 - alpha)  # |1>_C |0>_P : dark, no photon
    return ket


def spin_photon_state(alpha: float,
                      optics: OpticalParameters) -> DensityMatrix:
    """Noisy spin-photon state of one node after emission and fibre transit.

    Returns a two-qubit :class:`DensityMatrix` with qubit 0 the communication
    qubit and qubit 1 the photon (presence/absence) qubit as it arrives at the
    heralding station.
    """
    # Internal hot path: the ket is normalised by construction and every
    # operation below preserves validity, so skip the eigenvalue check.
    state = DensityMatrix.from_ket(spin_photon_ket(alpha), validate=False)

    # Two-photon emission: modelled as dephasing on the communication qubit
    # (paper D.4.3); the dephasing probability is half the double-emission
    # probability so that the coherence is reduced by (1 - p_double).
    if optics.p_double_emission > 0:
        state.apply_kraus(noise.dephasing_kraus(optics.p_double_emission / 2.0),
                          qubits=[0])

    # Optical phase uncertainty between the two fibre arms (paper D.4.2):
    # dephasing on the photon qubit with parameter from the Bessel ratio.
    phase_dephasing = noise.dephasing_probability_from_phase_std(optics.phase_std)
    if phase_dephasing > 0:
        state.apply_kraus(noise.dephasing_kraus(phase_dephasing), qubits=[1])

    # Finite detection window / coherent emission (paper D.4.4).
    window_damping = math.exp(-optics.detection_window
                              / optics.emission_time_constant)
    # Collection losses (paper D.4.5).
    collection_damping = 1.0 - (optics.p_zero_phonon * optics.p_collection
                                * optics.p_frequency_conversion)
    # Fibre transmission losses (paper D.4.6).
    transmission_damping = 1.0 - fiber_transmissivity(optics.fiber_length_km,
                                                      optics.fiber_loss_db_per_km)
    for damping in (window_damping, collection_damping, transmission_damping):
        if damping > 0:
            state.apply_kraus(noise.amplitude_damping_kraus(damping), qubits=[1])
    return state


def photon_survival_probability(optics: OpticalParameters) -> float:
    """Probability an emitted photon reaches the midpoint detectors.

    Excludes detector efficiency, which is applied classically at the
    midpoint.
    """
    return optics.survival_probability()


def analytic_success_probability(alpha: float, optics_a: OpticalParameters,
                                 optics_b: OpticalParameters) -> float:
    """First-order estimate of the heralding success probability.

    ``p_succ ~= alpha * (p_a + p_b) * p_det`` where ``p_x`` is the photon
    survival probability of each arm — the paper quotes this as
    ``p_succ ~= 2 alpha p_det`` for a symmetric setup.  Used for workload
    scaling and sanity checks; the exact value is produced by the heralded
    state sampler.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha={alpha} is not a probability")
    p_a = optics_a.survival_probability() * optics_a.p_detection
    p_b = optics_b.survival_probability() * optics_b.p_detection
    return alpha * (p_a + p_b)
