"""NV-centre quantum processing device model.

Each controllable node hosts one :class:`NVQuantumProcessor` with a single
electron-spin *communication* qubit (optical interface) and one or more
carbon-13 *memory* qubits.  The device model applies the noise processes of
the paper's Appendix D to the halves of entangled pairs stored in its qubits:

* T1/T2 decay while a qubit idles,
* depolarising gate noise when moving a state to memory (E-C controlled
  sqrt(X) gates),
* per-attempt dephasing of the carbon memory while further entanglement
  attempts run (Eq. 25),
* asymmetric, noisy electron readout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.hardware.pair import EntangledPair
from repro.hardware.parameters import CoherenceTimes, NVGateParameters
from repro.quantum import noise


class QubitRole(Enum):
    """Physical role of a qubit in the NV device."""

    COMMUNICATION = "communication"
    MEMORY = "memory"


@dataclass
class QubitSlot:
    """A physical qubit position in the device."""

    qubit_id: int
    role: QubitRole
    in_use: bool = False
    pair: Optional[EntangledPair] = None
    #: Simulation time at which the current state was last touched; used to
    #: apply idle decay lazily.
    last_update: float = 0.0
    metadata: dict = field(default_factory=dict)


class OutOfQubitsError(RuntimeError):
    """Raised when a qubit of the requested role is not available."""


class NVQuantumProcessor:
    """Model of one node's NV-centre quantum processor.

    Parameters
    ----------
    name:
        Node name ("A" or "B"); selects which half of stored pairs this
        device acts on.
    gate_parameters:
        Noise and timing constants (paper Table 6).
    num_communication:
        Number of electron communication qubits (1 for NV).
    num_memory:
        Number of carbon memory qubits.
    rng:
        Random generator used for measurements.
    backend:
        Physics backend that applies the noise channels and readout to pair
        states; a name, an instance, or ``None`` for the environment default.
    """

    def __init__(self, name: str, gate_parameters: NVGateParameters,
                 num_communication: int = 1, num_memory: int = 1,
                 rng: Optional[np.random.Generator] = None,
                 backend=None) -> None:
        from repro.backends import get_backend

        if name.upper() not in ("A", "B"):
            raise ValueError(f"node name must be 'A' or 'B', got {name!r}")
        self.name = name.upper()
        self.gates = gate_parameters
        self.backend = get_backend(backend)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.slots: list[QubitSlot] = []
        qubit_id = 0
        for _ in range(num_communication):
            self.slots.append(QubitSlot(qubit_id, QubitRole.COMMUNICATION))
            qubit_id += 1
        for _ in range(num_memory):
            self.slots.append(QubitSlot(qubit_id, QubitRole.MEMORY))
            qubit_id += 1

    # ------------------------------------------------------------------ #
    # Qubit slot management (used by the QMM)
    # ------------------------------------------------------------------ #
    def free_slots(self, role: Optional[QubitRole] = None) -> list[QubitSlot]:
        """All currently unused slots, optionally filtered by role."""
        return [slot for slot in self.slots
                if not slot.in_use and (role is None or slot.role == role)]

    def reserve(self, role: QubitRole) -> QubitSlot:
        """Reserve a free qubit of the given role.

        Raises :class:`OutOfQubitsError` if none is available.
        """
        available = self.free_slots(role)
        if not available:
            raise OutOfQubitsError(
                f"node {self.name} has no free {role.value} qubit")
        slot = available[0]
        slot.in_use = True
        return slot

    def release(self, slot: QubitSlot) -> None:
        """Release a previously reserved slot."""
        slot.in_use = False
        slot.pair = None
        slot.metadata.clear()

    def release_all(self) -> None:
        """Release every slot (used on protocol reset)."""
        for slot in self.slots:
            self.release(slot)

    def slot_by_id(self, qubit_id: int) -> QubitSlot:
        """Look up a slot by physical qubit id."""
        for slot in self.slots:
            if slot.qubit_id == qubit_id:
                return slot
        raise KeyError(f"node {self.name} has no qubit {qubit_id}")

    # ------------------------------------------------------------------ #
    # Noise application
    # ------------------------------------------------------------------ #
    def _coherence_for(self, slot: QubitSlot) -> CoherenceTimes:
        if slot.role is QubitRole.COMMUNICATION:
            return self.gates.electron_coherence
        return self.gates.carbon_coherence

    def apply_idle_decay(self, pair: EntangledPair, slot: QubitSlot,
                         duration: float) -> None:
        """Apply T1/T2 decay to this node's half of ``pair`` for ``duration``."""
        if duration <= 0:
            return
        self.backend.apply_t1t2(pair, self.name, self._coherence_for(slot),
                                duration)

    def apply_initialization_noise(self, pair: EntangledPair) -> None:
        """Depolarising noise from imperfect electron initialisation."""
        self.backend.apply_depolarizing(pair, self.name,
                                        self.gates.electron_init_fidelity)

    def move_to_memory(self, pair: EntangledPair,
                       communication_slot: QubitSlot,
                       memory_slot: QubitSlot) -> float:
        """Swap this node's half of ``pair`` from the electron to a carbon.

        Applies the gate noise of the two E-C controlled-sqrt(X) gates used by
        the swap, plus electron decay over the swap duration, and rebinds the
        pair to the memory slot.  Returns the duration of the operation.
        """
        duration = self.gates.swap_to_memory_duration
        # Two E-C gates: approximate their combined error as two depolarising
        # applications on the transferred qubit.  The pulse sequence that
        # implements the swap dynamically decouples the electron (Section
        # D.2.2), so no additional free-evolution T2 decay is applied for the
        # swap duration; the gate fidelity already captures the residual error.
        self.backend.apply_depolarizing(pair, self.name,
                                        self.gates.ec_gate_fidelity)
        self.backend.apply_depolarizing(pair, self.name,
                                        self.gates.ec_gate_fidelity)
        communication_slot.pair = None
        communication_slot.in_use = False
        memory_slot.pair = pair
        memory_slot.in_use = True
        pair.qubit_ids[self.name] = memory_slot.qubit_id
        return duration

    def apply_attempt_dephasing(self, pair: EntangledPair, slot: QubitSlot,
                                attempts: int, alpha: float) -> None:
        """Carbon dephasing from ``attempts`` further entanglement attempts.

        While new entanglement attempts run, the repeated electron resets
        dephase any state stored in the carbon memory (Eq. 25/26).
        """
        if attempts <= 0 or slot.role is not QubitRole.MEMORY:
            return
        per_attempt = noise.nuclear_dephasing_per_attempt(
            alpha, self.gates.carbon_coupling_rad_s,
            self.gates.carbon_reset_decay_s)
        # N attempts shrink coherence by (1 - p)^N; express as one dephasing.
        coherence_factor = (1.0 - 2.0 * per_attempt) ** attempts
        effective = (1.0 - coherence_factor) / 2.0
        self.backend.apply_dephasing(pair, self.name, effective)

    def apply_correction(self, pair: EntangledPair) -> None:
        """Apply the local Z gate converting |Psi-> into |Psi+> (Eq. 13)."""
        self.backend.apply_correction(pair, self.name,
                                      self.gates.electron_gate_fidelity)

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def measure_pair(self, pair: EntangledPair, basis: str = "Z") -> int:
        """Measure this node's half of ``pair`` with noisy electron readout.

        The requested basis is rotated onto Z before the asymmetric readout
        POVM of Eq. (23) is applied.
        """
        return self.backend.measure_pair(pair, self.name, basis,
                                         self.gates.readout_fidelity_0,
                                         self.gates.readout_fidelity_1,
                                         self.rng)

    # ------------------------------------------------------------------ #
    # Timing helpers
    # ------------------------------------------------------------------ #
    def readout_duration(self) -> float:
        """Duration of one electron readout."""
        return self.gates.readout_duration

    def memory_reinit_overhead(self) -> float:
        """Fraction of time lost to periodic carbon re-initialisation."""
        period = self.gates.carbon_reinit_period
        if period <= 0:
            return 0.0
        return self.gates.carbon_reinit_duration / period

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        used = sum(1 for slot in self.slots if slot.in_use)
        return (f"<NVQuantumProcessor {self.name} qubits={len(self.slots)} "
                f"in_use={used}>")
