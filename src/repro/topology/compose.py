"""Entanglement-swapping mathematics for repeater chains.

Two independent implementations of the same Bell-state measurement (BSM) are
provided on purpose:

* :func:`swap_states` — the *circuit* path used by the live
  :class:`~repro.topology.swap.SwapAsapEGP` protocol: CNOT + Hadamard on the
  repeater's two qubits, two projective Z measurements, Pauli-frame
  correction of the far endpoint;
* :func:`project_swap` — the *projector* path used by tests: a Bell-basis
  projector applied directly to the joint state, with the same correction.

Both map a pair of |Psi+>-target link states onto one |Psi+>-target
end-to-end state; the equivalence of the two paths (for every measurement
outcome) is what the "analytic composition" acceptance test pins down.

For Werner inputs the composition has the well-known closed form
``F = 1/4 + 3/4 * prod((4 F_i - 1) / 3)`` (:func:`werner_chain_fidelity`).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.quantum import gates
from repro.quantum.density import DensityMatrix
from repro.quantum.states import BellIndex, bell_state

#: Measurement outcome (m1, m2) -> Bell state of the measured qubit pair.
#: After CNOT(control=first, target=second) + H(first), the Bell basis maps
#: onto the computational basis as Phi+ -> |00>, Psi+ -> |01>,
#: Phi- -> |10>, Psi- -> |11>.
OUTCOME_TO_BELL: dict[tuple[int, int], BellIndex] = {
    (0, 0): BellIndex.PHI_PLUS,
    (0, 1): BellIndex.PSI_PLUS,
    (1, 0): BellIndex.PHI_MINUS,
    (1, 1): BellIndex.PSI_MINUS,
}


def correction_unitary(outcome: tuple[int, int]) -> np.ndarray:
    """Pauli correction on the *right* endpoint for a BSM outcome.

    Both input links target |Psi+>; measuring the two repeater qubits in the
    Bell basis leaves the endpoints in ``X^(1-m2) Z^(m1) |Psi+>`` (up to a
    global phase), so applying that same Pauli restores |Psi+>.  The
    ``(0, 1)`` outcome (Psi+ measured) needs no correction.
    """
    m1, m2 = outcome
    unitary = np.eye(2, dtype=complex)
    if m2 == 0:
        unitary = gates.X @ unitary
    if m1 == 1:
        unitary = gates.Z @ unitary
    return unitary


def swap_states(left: DensityMatrix, right: DensityMatrix,
                rng: np.random.Generator,
                gate_fidelity: float = 1.0,
                ) -> tuple[tuple[int, int], DensityMatrix]:
    """Entanglement swap via the BSM circuit (the live protocol path).

    ``left`` and ``right`` are two-qubit states ordered (endpoint, repeater)
    and (repeater, endpoint) respectively.  The joint register is
    ``[end_left, rep_left, rep_right, end_right]``; the BSM measures qubits
    1 and 2.  ``gate_fidelity < 1`` applies depolarising noise to both
    repeater qubits before the measurement (the two-qubit BSM gate error);
    the Pauli correction itself is tracked in the classical Pauli frame, not
    applied as a physical gate.

    Returns the measurement outcome ``(m1, m2)`` and the corrected two-qubit
    end-to-end state.
    """
    joint = left.tensor(right)
    if gate_fidelity < 1.0:
        from repro.quantum.noise import depolarizing_kraus

        kraus = depolarizing_kraus(gate_fidelity)
        joint.apply_kraus(kraus, qubits=[1])
        joint.apply_kraus(kraus, qubits=[2])
    joint.apply_unitary(gates.CNOT, qubits=[1, 2])
    joint.apply_unitary(gates.H, qubits=[1])
    m1 = joint.measure(1, rng=rng)
    m2 = joint.measure(2, rng=rng)
    joint.apply_unitary(correction_unitary((m1, m2)), qubits=[3])
    return (m1, m2), joint.partial_trace([0, 3])


def project_swap(left: DensityMatrix, right: DensityMatrix,
                 outcome: tuple[int, int],
                 ) -> tuple[float, DensityMatrix]:
    """Entanglement swap via direct Bell projection (the verification path).

    Projects the two repeater qubits of ``left (x) right`` onto the Bell
    state announced by ``outcome``, applies the matching Pauli correction to
    the right endpoint and traces out the measured qubits.  Returns the
    outcome probability and the corrected end-to-end state (the maximally
    mixed state for zero-probability outcomes).
    """
    joint = left.tensor(right)
    ket = bell_state(OUTCOME_TO_BELL[outcome])
    projector = np.outer(ket, ket.conj())
    probability = joint.outcome_probability(projector, qubits=[1, 2])
    probability = min(max(probability, 0.0), 1.0)
    if probability <= 0:
        return 0.0, DensityMatrix.maximally_mixed(2)
    joint.apply_kraus([projector], qubits=[1, 2])
    matrix = joint.matrix / probability
    projected = DensityMatrix(matrix, validate=False)
    projected.apply_unitary(correction_unitary(outcome), qubits=[3])
    return probability, projected.partial_trace([0, 3])


def outcome_average_swap(left: DensityMatrix,
                         right: DensityMatrix) -> DensityMatrix:
    """Outcome-averaged (deterministic CPTP) composition of two link states.

    Averaging the corrected post-measurement states over all four BSM
    outcomes, weighted by their probabilities, gives the end-to-end state a
    heralded-and-corrected swap delivers *on average*.  The map is
    associative, which is what makes swap order irrelevant for chain
    statistics.
    """
    total = np.zeros((4, 4), dtype=complex)
    for outcome in OUTCOME_TO_BELL:
        probability, state = project_swap(left, right, outcome)
        total += probability * state.matrix
    return DensityMatrix(total, validate=False)


def compose_chain(states: Iterable[DensityMatrix],
                  outcomes: Optional[Iterable[tuple[int, int]]] = None,
                  ) -> DensityMatrix:
    """Fold a sequence of per-link states into one end-to-end state.

    With ``outcomes`` given (one BSM outcome per interior node, left to
    right) the composition follows those specific heralded branches via
    :func:`project_swap`; without it the outcome-averaged map is used.
    """
    states = list(states)
    if not states:
        raise ValueError("no link states to compose")
    if outcomes is None:
        result = states[0]
        for state in states[1:]:
            result = outcome_average_swap(result, state)
        return result
    outcomes = list(outcomes)
    if len(outcomes) != len(states) - 1:
        raise ValueError(f"{len(states)} links need {len(states) - 1} swap "
                         f"outcomes, got {len(outcomes)}")
    result = states[0]
    for state, outcome in zip(states[1:], outcomes):
        _, result = project_swap(result, state, outcome)
    return result


def werner_state(fidelity: float,
                 target: BellIndex = BellIndex.PSI_PLUS) -> DensityMatrix:
    """Werner state with the given fidelity to ``target``."""
    ket = bell_state(target)
    pure = np.outer(ket, ket.conj())
    mixed = (np.eye(4, dtype=complex) - pure) / 3.0
    return DensityMatrix(fidelity * pure + (1.0 - fidelity) * mixed,
                         validate=False)


def werner_chain_fidelity(fidelities: Iterable[float]) -> float:
    """Closed-form end-to-end fidelity of a chain of Werner links.

    ``F = 1/4 + 3/4 * prod((4 F_i - 1) / 3)`` — swapping Werner states
    yields a Werner state whose "Werner parameter" is the product of the
    per-link parameters.
    """
    product = 1.0
    for fidelity in fidelities:
        product *= (4.0 * fidelity - 1.0) / 3.0
    return 0.25 + 0.75 * product
