"""Multi-link network topologies composed from link-layer building blocks.

The spec layer (:mod:`repro.topology.spec`) is imported eagerly — it is pure
data and is what :mod:`repro.runtime.scenarios` embeds into scenario specs.
The live layers (network instantiation, the swap-ASAP protocol, the runner)
are re-exported lazily: they pull in :mod:`repro.runtime`, which itself
imports the spec layer, so loading them at package-import time would be
circular.
"""

from repro.topology.spec import LinkSpec, SwitchSpec, Topology

_LAZY = {
    "LinkInstance": "repro.topology.network",
    "SwitchSchedule": "repro.topology.network",
    "TopologyNetwork": "repro.topology.network",
    "SwapAsapEGP": "repro.topology.swap",
    "EndToEndRecord": "repro.topology.swap",
    "TopologyRun": "repro.topology.run",
    "run_topology": "repro.topology.run",
    "jain_fairness": "repro.topology.run",
    "swap_states": "repro.topology.compose",
    "project_swap": "repro.topology.compose",
    "compose_chain": "repro.topology.compose",
    "outcome_average_swap": "repro.topology.compose",
    "werner_state": "repro.topology.compose",
    "werner_chain_fidelity": "repro.topology.compose",
}

__all__ = ["LinkSpec", "SwitchSpec", "Topology", *sorted(_LAZY)]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
