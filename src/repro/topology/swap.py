"""Swap-ASAP entanglement swapping over per-link EGP instances.

:class:`SwapAsapEGP` is the chain-level protocol that turns the link layer
into a building block: it listens for delivered create-and-keep pairs on
every link of a chain, buffers them as *segments* (entangled spans between
two chain nodes) and, as soon as two segments meet at an interior node,
performs a Bell-state measurement there — swap as soon as possible — until a
segment spans the whole chain and is delivered as end-to-end entanglement.

Physics handled here:

* idle decay of buffered halves (each endpoint's device T1/T2 applied for
  the time a segment waits in memory, via the same backend path as the
  single-link EGP);
* the BSM itself via :func:`repro.topology.compose.swap_states` (CNOT + H +
  two projective measurements on the repeater's qubits, optional
  depolarising gate noise);
* Pauli-frame correction of the far endpoint (tracked classically, as real
  repeater stacks do — no physical gate is applied);
* memory management: the two measured repeater qubits are released back to
  their EGPs immediately after the swap, the end-node qubits on end-to-end
  delivery.

The protocol is deliberately synchronous within the simulation event that
delivers the second half of a link pair: swaps take zero simulated time
(the BSM duration is far below the attempt timescales that dominate chain
latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.messages import RequestType
from repro.hardware.pair import EntangledPair
from repro.quantum.density import DensityMatrix
from repro.quantum.states import BellIndex
from repro.topology.compose import swap_states

if TYPE_CHECKING:
    from repro.topology.network import LinkInstance
    from repro.topology.spec import Topology


@dataclass
class _Endpoint:
    """One end of a segment: a qubit held in a specific device slot."""

    node: str
    device: object
    egp: object
    slot: object
    logical_qubit_id: int

    def release(self) -> None:
        self.egp.release_delivered_pair(self.logical_qubit_id)


@dataclass
class SwapEvent:
    """Instrumentation record of one Bell-state measurement.

    ``left_state`` / ``right_state`` are copies of the two input segment
    states *after* idle decay was brought up to the swap time, so an
    independent composition of them (``project_swap`` with the same
    ``outcome``) must reproduce ``output_state`` exactly.
    """

    node: str
    time: float
    outcome: tuple[int, int]
    left_state: DensityMatrix
    right_state: DensityMatrix
    output_state: DensityMatrix


@dataclass
class Segment:
    """An entangled span between two chain nodes."""

    left: _Endpoint
    right: _Endpoint
    pair: EntangledPair
    #: Earliest CREATE submission among the constituent link requests.
    created_at: float
    #: Decay watermark: endpoint qubits are up to date at this sim time.
    last_update: float
    hops: list[dict] = field(default_factory=list)
    swap_outcomes: list[tuple[int, int]] = field(default_factory=list)
    swap_events: list[SwapEvent] = field(default_factory=list)


@dataclass
class EndToEndRecord:
    """One delivered end-to-end pair."""

    delivered_at: float
    fidelity: float
    latency: float
    swaps: int
    hops: list[dict]
    swap_outcomes: list[tuple[int, int]]
    #: Final two-qubit state (in-process instrumentation, not serialised).
    state: Optional[DensityMatrix] = field(default=None, repr=False)
    swap_events: list[SwapEvent] = field(default_factory=list, repr=False)


class SwapAsapEGP:
    """Chain controller performing entanglement swapping at interior nodes.

    Parameters
    ----------
    topology:
        A validated ``kind == "chain"`` topology.
    links:
        The instantiated :class:`~repro.topology.network.LinkInstance`
        objects, in chain order (link ``i`` connects chain nodes ``i`` and
        ``i + 1``; its internal "A" role is the left node).
    rng:
        Measurement randomness for the Bell-state measurements.
    swap_gate_fidelity:
        Depolarising no-error probability of the BSM's two-qubit gate
        (1.0 = ideal BSM, the default).
    """

    def __init__(self, topology: "Topology", links: "list[LinkInstance]",
                 rng: np.random.Generator,
                 swap_gate_fidelity: float = 1.0) -> None:
        self.topology = topology
        self.links = links
        self.rng = rng
        self.swap_gate_fidelity = float(swap_gate_fidelity)
        self.engine = links[0].network.engine
        self.end_to_end: list[EndToEndRecord] = []
        self.statistics = {"swaps": 0, "segments": 0, "pairs_delivered": 0}
        #: Optional :class:`repro.obs.Tracer`; ``None`` keeps emission a
        #: single ``is not None`` check (zero-cost default).
        self.tracer = None
        self._interior = set(topology.interior_nodes())
        self._end_left = topology.nodes[0]
        self._end_right = topology.nodes[-1]
        # (link index, entanglement id) -> {"A"/"B": (ok, arrival time)}
        self._pending: dict[tuple, dict] = {}
        # Segments waiting for a partner, keyed by their boundary node.
        self._ending_at: dict[str, list[Segment]] = {}
        self._starting_at: dict[str, list[Segment]] = {}
        for link in links:
            for role in ("A", "B"):
                link.network.nodes[role].egp.add_ok_listener(
                    lambda ok, link=link, role=role:
                    self._on_ok(link, role, ok))

    # ------------------------------------------------------------------ #
    # Link deliveries -> segments
    # ------------------------------------------------------------------ #
    def _on_ok(self, link: "LinkInstance", role: str, ok) -> None:
        if ok.request_type is not RequestType.KEEP:
            raise RuntimeError(
                "swap-ASAP chains serve create-and-keep traffic only; "
                "a measure-directly OK reached the chain controller")
        key = (link.index, tuple(ok.entanglement_id))
        pending = self._pending.setdefault(key, {})
        pending[role] = (ok, self.engine.now)
        if len(pending) < 2:
            return
        del self._pending[key]
        self._segment_from_link(link, pending["A"][0], pending["A"][1],
                                pending["B"][0], pending["B"][1])

    def _segment_from_link(self, link: "LinkInstance", ok_a, arrived_a: float,
                           ok_b, arrived_b: float) -> None:
        now = self.engine.now
        pair = ok_a.pair
        endpoints = []
        for role, ok, arrived in (("A", ok_a, arrived_a),
                                  ("B", ok_b, arrived_b)):
            node = link.network.nodes[role]
            slot = node.device.slot_by_id(ok.logical_qubit_id)
            # Bring the half up to date: the link EGP decays each side only
            # until its own delivery; buffer time since then is ours.
            node.device.apply_idle_decay(pair, slot, now - arrived)
            endpoints.append(_Endpoint(
                node=link.spec.node_a if role == "A" else link.spec.node_b,
                device=node.device, egp=node.egp, slot=slot,
                logical_qubit_id=ok.logical_qubit_id))
        fidelity = pair.fidelity(BellIndex.PSI_PLUS)
        created_at = min(ok_a.create_time, ok_b.create_time)
        segment = Segment(
            left=endpoints[0], right=endpoints[1], pair=pair,
            created_at=created_at, last_update=now,
            hops=[{"link": link.spec.name, "fidelity": fidelity,
                   "latency": now - created_at}])
        self.statistics["segments"] += 1
        if self.tracer is not None:
            self.tracer.event(now, "swap.segment", link=link.spec.name,
                              fidelity=fidelity, latency=now - created_at)
        self._add_segment(segment)

    # ------------------------------------------------------------------ #
    # Swap-ASAP core
    # ------------------------------------------------------------------ #
    def _add_segment(self, segment: Segment) -> None:
        while True:
            left_queue = self._ending_at.get(segment.left.node)
            if segment.left.node in self._interior and left_queue:
                other = left_queue.pop(0)
                self._unregister(other)
                segment = self._swap(other, segment)
                continue
            right_queue = self._starting_at.get(segment.right.node)
            if segment.right.node in self._interior and right_queue:
                other = right_queue.pop(0)
                self._unregister(other)
                segment = self._swap(segment, other)
                continue
            break
        if (segment.left.node == self._end_left
                and segment.right.node == self._end_right):
            self._deliver(segment)
            return
        self._starting_at.setdefault(segment.left.node, []).append(segment)
        self._ending_at.setdefault(segment.right.node, []).append(segment)

    def _unregister(self, segment: Segment) -> None:
        for queues, node in ((self._starting_at, segment.left.node),
                             (self._ending_at, segment.right.node)):
            queue = queues.get(node)
            if queue is not None and segment in queue:
                queue.remove(segment)

    def _refresh(self, segment: Segment, now: float) -> None:
        """Apply buffered idle decay to both endpoint qubits."""
        duration = now - segment.last_update
        if duration > 0:
            segment.left.device.apply_idle_decay(segment.pair,
                                                 segment.left.slot, duration)
            segment.right.device.apply_idle_decay(segment.pair,
                                                  segment.right.slot, duration)
        segment.last_update = now

    def _swap(self, left: Segment, right: Segment) -> Segment:
        now = self.engine.now
        node = left.right.node
        self._refresh(left, now)
        self._refresh(right, now)
        left_state = left.pair.state.copy()
        right_state = right.pair.state.copy()
        outcome, state = swap_states(left.pair.state, right.pair.state,
                                     self.rng,
                                     gate_fidelity=self.swap_gate_fidelity)
        event = SwapEvent(node=node, time=now, outcome=outcome,
                          left_state=left_state, right_state=right_state,
                          output_state=state.copy())
        # The two measured repeater qubits are free again.
        left.right.release()
        right.left.release()
        self.statistics["swaps"] += 1
        if self.tracer is not None:
            # Swap provenance: where the BSM happened, which span it merged,
            # and the measurement outcome (enough to replay the correction).
            self.tracer.event(now, "swap.swap", node=node,
                              left=left.left.node, right=right.right.node,
                              outcome=[int(bit) for bit in outcome])
        merged_pair = EntangledPair(state=state,
                                    heralded_bell=BellIndex.PSI_PLUS,
                                    created_at=now, corrected=True)
        return Segment(
            left=left.left, right=right.right, pair=merged_pair,
            created_at=min(left.created_at, right.created_at),
            last_update=now,
            hops=left.hops + right.hops,
            swap_outcomes=left.swap_outcomes + [outcome] + right.swap_outcomes,
            swap_events=left.swap_events + [event] + right.swap_events)

    def _deliver(self, segment: Segment) -> None:
        now = self.engine.now
        self._refresh(segment, now)
        record = EndToEndRecord(
            delivered_at=now,
            fidelity=segment.pair.fidelity(BellIndex.PSI_PLUS),
            latency=now - segment.created_at,
            swaps=len(segment.swap_outcomes),
            hops=segment.hops,
            swap_outcomes=segment.swap_outcomes,
            state=segment.pair.state.copy(),
            swap_events=segment.swap_events)
        self.end_to_end.append(record)
        self.statistics["pairs_delivered"] += 1
        if self.tracer is not None:
            self.tracer.event(now, "swap.deliver",
                              fidelity=record.fidelity,
                              latency=record.latency, swaps=record.swaps)
        segment.left.release()
        segment.right.release()
