"""High-level runner for topology scenarios (chains and switched stars).

:class:`TopologyRun` is the multi-link analogue of
:class:`~repro.runtime.runner.SimulationRun`: it instantiates a
:class:`~repro.topology.network.TopologyNetwork`, drives every link with its
own :class:`~repro.runtime.workload.RequestGenerator` (per-link seeds derived
from the topology seed) and per-link :class:`~repro.analysis.metrics.
MetricsCollector`, and finalises into the same :class:`~repro.runtime.runner.
RunResult` — extended with per-hop (``hops``) and end-to-end
(``end_to_end``) statistics.

The end-to-end summary classes a chain reports are keyed ``"E2E"``: the
delivered unit of a chain run is the swapped end-to-end pair, not the
per-link pair (those appear under ``hops``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import MetricsCollector, MetricsSummary
from repro.core.messages import RequestType
from repro.runtime.runner import RunResult
from repro.runtime.workload import RequestGenerator, WorkloadSpec
from repro.topology.network import TopologyNetwork
from repro.topology.spec import Topology


def _weighted_mean(pairs: "list[tuple[float, float]]") -> Optional[float]:
    """Mean of (value, weight) pairs; ``None`` when total weight is zero."""
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        return None
    return sum(value * weight for value, weight in pairs) / total


def _link_digest(name: str, summary: MetricsSummary) -> dict:
    """Plain-data per-hop digest of one link's metrics summary."""
    pairs = sum(summary.pairs_delivered.values())
    fidelity = _weighted_mean(
        [(summary.average_fidelity[cls], summary.pairs_delivered.get(cls, 0))
         for cls in summary.average_fidelity])
    latency = _weighted_mean(
        [(summary.average_pair_latency[cls],
          summary.pairs_delivered.get(cls, 0))
         for cls in summary.average_pair_latency])
    return {
        "link": name,
        "pairs": pairs,
        "throughput": summary.throughput_total(),
        "fidelity": fidelity,
        "latency": latency,
        "errors": sum(summary.errors.values()),
    }


def _merge_counts(dicts: "list[dict]") -> dict:
    merged: dict = {}
    for entry in dicts:
        for key, value in entry.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index of per-link allocations (1.0 = perfectly fair).

    Defined as ``(sum x)^2 / (n * sum x^2)``; an all-zero allocation is
    reported as fair (there is nothing to share unfairly).
    """
    values = list(values)
    if not values:
        return 1.0
    square_sum = sum(value * value for value in values)
    if square_sum <= 0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


class TopologyRun:
    """One complete multi-link simulation of a topology.

    Mirrors :class:`~repro.runtime.runner.SimulationRun` (including the
    ``start`` / ``advance_to`` / ``finalize`` split) so the sweep layer can
    treat single-link and topology scenarios uniformly.  Chains accept
    create-and-keep workloads only — a measure-directly request consumes the
    electron at attempt time and leaves nothing to swap.
    """

    def __init__(self, topology: Topology,
                 workload: Sequence[WorkloadSpec],
                 scheduler: str = "FCFS",
                 seed: Optional[int] = 12345,
                 emission_multiplexing: bool = True,
                 attempt_batch_size: int = 1,
                 backend=None,
                 engine=None,
                 elide_watchdog: Optional[bool] = None,
                 timer_elision: bool = True,
                 swap_gate_fidelity: float = 1.0,
                 obs="env") -> None:
        workload = list(workload)
        if topology.kind == "chain":
            for spec in workload:
                if spec.request_type is not RequestType.KEEP:
                    raise ValueError(
                        f"chain topologies serve create-and-keep workloads "
                        f"only; got a {spec.priority.name} (measure-directly) "
                        f"workload")
        self.topology = topology
        self.seed = seed
        self.network = TopologyNetwork(
            topology, scheduler=scheduler, seed=seed,
            emission_multiplexing=emission_multiplexing,
            attempt_batch_size=attempt_batch_size, backend=backend,
            event_queue=engine, elide_watchdog=elide_watchdog,
            timer_elision=timer_elision,
            swap_gate_fidelity=swap_gate_fidelity)
        # Chains buffer delivered pairs for swapping, so memory release is
        # owned by the swap controller; star links behave like independent
        # single-link runs (the application consumes pairs on delivery).
        release = topology.kind != "chain"
        self.collectors = [MetricsCollector(link.network,
                                            release_memory=release)
                           for link in self.network.links]
        self.generators = []
        for link, collector in zip(self.network.links, self.collectors):
            link_seed = self.network.seeds[link.index]
            workload_seed = None if link_seed is None else link_seed + 1
            self.generators.append(
                RequestGenerator(link.network, workload, metrics=collector,
                                 seed=workload_seed))
        self._scheduler_name = (scheduler if isinstance(scheduler, str)
                                else scheduler.name)
        # Observability: mirrors SimulationRun — an ObsSession instance,
        # None to disable, or "env" to resolve from REPRO_OBS.
        if obs == "env":
            from repro.obs import session_from_env

            obs = session_from_env()
        self.obs = obs
        if self.obs is not None:
            self.obs.attach_topology_network(self.network)
            self.obs.start_profiler()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, duration: float) -> RunResult:
        """Run the whole topology for ``duration`` simulated seconds."""
        self.start()
        self.network.run(duration)
        return self.finalize(duration)

    def start(self) -> None:
        """Begin every link's workload."""
        for generator in self.generators:
            generator.start()

    def advance_to(self, time: float) -> None:
        """Advance the shared engine to absolute simulated ``time``."""
        self.network.run_until(time)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def finalize(self, duration: float) -> RunResult:
        """Collect per-hop and end-to-end results after the run."""
        link_summaries = [collector.summary()
                          for collector in self.collectors]
        hops = [_link_digest(link.name, summary)
                for link, summary in zip(self.network.links, link_summaries)]
        if self.topology.kind == "chain":
            end_to_end = self._chain_end_to_end(duration)
            summary = self._chain_summary(duration, link_summaries,
                                          end_to_end)
        else:
            end_to_end = self._star_end_to_end(duration, hops)
            summary = self._star_summary(duration, link_summaries)
        result = RunResult(
            scenario_name=self.topology.name,
            scheduler_name=self._scheduler_name,
            simulated_time=duration,
            summary=summary,
            requests_issued=sum(generator.requests_issued
                                for generator in self.generators),
            seed=self.seed,
            backend=self.network.backend.name,
            engine=self.network.engine.queue_name,
            events_processed=self.network.engine.processed_events,
            events_elided=self.network.engine.elided_events,
            hops=hops,
            end_to_end=end_to_end,
            topology=self.topology.name,
            network=self.network,
            obs=self.obs,
        )
        if self.obs is not None:
            self.obs.finish_run(result)
        return result

    def _chain_end_to_end(self, duration: float) -> dict:
        records = self.network.swap.end_to_end
        pairs = len(records)
        return {
            "pairs": pairs,
            "throughput": pairs / duration if duration > 0 else 0.0,
            "fidelity": (sum(r.fidelity for r in records) / pairs
                         if pairs else None),
            "min_fidelity": (min(r.fidelity for r in records)
                             if pairs else None),
            "latency": (sum(r.latency for r in records) / pairs
                        if pairs else None),
            "swaps": self.network.swap.statistics["swaps"],
            "links": len(self.network.links),
        }

    def _chain_summary(self, duration: float,
                       link_summaries: "list[MetricsSummary]",
                       end_to_end: dict) -> MetricsSummary:
        pairs = end_to_end["pairs"]
        fidelity = end_to_end["fidelity"]
        latency = end_to_end["latency"]
        return MetricsSummary(
            duration=duration,
            throughput={"E2E": end_to_end["throughput"]},
            average_fidelity={} if fidelity is None else {"E2E": fidelity},
            average_request_latency=({} if latency is None
                                     else {"E2E": latency}),
            average_scaled_latency={},
            average_pair_latency=({} if latency is None
                                  else {"E2E": latency}),
            pairs_delivered={"E2E": pairs},
            requests_submitted=_merge_counts(
                [s.requests_submitted for s in link_summaries]),
            requests_completed=_merge_counts(
                [s.requests_completed for s in link_summaries]),
            errors=_merge_counts([s.errors for s in link_summaries]),
            expires=sum(s.expires for s in link_summaries),
            oks=sum(s.oks for s in link_summaries),
            average_queue_length=(
                sum(s.average_queue_length for s in link_summaries)
                / len(link_summaries)),
        )

    def _star_end_to_end(self, duration: float, hops: "list[dict]") -> dict:
        pairs = sum(hop["pairs"] for hop in hops)
        fidelity = _weighted_mean([(hop["fidelity"], hop["pairs"])
                                   for hop in hops
                                   if hop["fidelity"] is not None])
        latency = _weighted_mean([(hop["latency"], hop["pairs"])
                                  for hop in hops
                                  if hop["latency"] is not None])
        return {
            "pairs": pairs,
            "throughput": pairs / duration if duration > 0 else 0.0,
            "fidelity": fidelity,
            "latency": latency,
            "fairness": jain_fairness([hop["pairs"] for hop in hops]),
            "links": len(hops),
        }

    def _star_summary(self, duration: float,
                      link_summaries: "list[MetricsSummary]",
                      ) -> MetricsSummary:
        def merged_mean(field: str, weight_field: str) -> dict:
            values: dict[str, list[tuple[float, float]]] = {}
            for summary in link_summaries:
                weights = getattr(summary, weight_field)
                for cls, value in getattr(summary, field).items():
                    values.setdefault(cls, []).append(
                        (value, weights.get(cls, 0)))
            merged = {}
            for cls, entries in values.items():
                mean = _weighted_mean(entries)
                if mean is not None:
                    merged[cls] = mean
            return merged

        return MetricsSummary(
            duration=duration,
            throughput=_merge_counts([s.throughput for s in link_summaries]),
            average_fidelity=merged_mean("average_fidelity",
                                         "pairs_delivered"),
            average_request_latency=merged_mean("average_request_latency",
                                                "requests_completed"),
            average_scaled_latency=merged_mean("average_scaled_latency",
                                               "requests_completed"),
            average_pair_latency=merged_mean("average_pair_latency",
                                             "pairs_delivered"),
            pairs_delivered=_merge_counts(
                [s.pairs_delivered for s in link_summaries]),
            requests_submitted=_merge_counts(
                [s.requests_submitted for s in link_summaries]),
            requests_completed=_merge_counts(
                [s.requests_completed for s in link_summaries]),
            errors=_merge_counts([s.errors for s in link_summaries]),
            expires=sum(s.expires for s in link_summaries),
            oks=sum(s.oks for s in link_summaries),
            average_queue_length=(
                sum(s.average_queue_length for s in link_summaries)
                / len(link_summaries)),
        )


def run_topology(topology: Topology, workload: Sequence[WorkloadSpec],
                 duration: float, **kwargs) -> RunResult:
    """Convenience one-shot topology runner (examples, benchmarks)."""
    return TopologyRun(topology, workload, **kwargs).run(duration)
