"""Instantiate a :class:`~repro.topology.spec.Topology` as live link stacks.

Every link of the topology becomes one full, independent
:class:`~repro.network.network.LinkLayerNetwork` (midpoint heralding, MHP,
distributed queue, FEU, EGP on both nodes) — all sharing a single
:class:`~repro.sim.engine.SimulationEngine`, so the whole multi-link network
advances on one event clock.  Per-link RNG streams are derived from the
topology seed with ``SeedSequence.spawn``, keeping multi-link runs exactly
reproducible.

On top of the links:

* chains get a :class:`~repro.topology.swap.SwapAsapEGP` controller that
  swaps segments at interior nodes into end-to-end entanglement;
* stars get a :class:`SwitchSchedule` — a round-robin time-division schedule
  installed as the ``attempt_gate`` of every link's midpoint, plus the
  switch's insertion loss folded into each link's optical parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.network.network import LinkLayerNetwork
from repro.sim.engine import SimulationEngine
from repro.topology.spec import LinkSpec, Topology
from repro.topology.swap import SwapAsapEGP


@dataclass
class LinkInstance:
    """One instantiated link: its spec and its live link-layer network."""

    index: int
    spec: LinkSpec
    network: LinkLayerNetwork

    @property
    def name(self) -> str:
        return self.spec.name


class SwitchSchedule:
    """Round-robin time-division schedule of a switched midpoint.

    Link ``i`` owns every ``num_links``-th slot of ``slot_duration``
    simulated seconds.  :meth:`gate` produces the per-link ``attempt_gate``
    callable installed on the midpoint: it returns how many attempts of a
    window starting *now* fall inside the link's active slot (0 when the
    switch is currently serving another link).
    """

    def __init__(self, num_links: int, slot_duration: float) -> None:
        if num_links < 1:
            raise ValueError("schedule needs at least one link")
        if slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        self.num_links = num_links
        self.slot_duration = float(slot_duration)

    def active_link(self, time: float) -> int:
        """Index of the link the switch serves at ``time``."""
        return int(math.floor(time / self.slot_duration)) % self.num_links

    def next_active(self, link_index: int, time: float) -> float:
        """When link ``link_index``'s slot next opens at or after ``time``."""
        period = self.num_links * self.slot_duration
        period_start = math.floor(time / period) * period
        slot_start = period_start + link_index * self.slot_duration
        if time >= slot_start + self.slot_duration - 1e-12:
            slot_start += period
        return max(slot_start, time)

    def gate(self, link_index: int):
        """The ``attempt_gate`` callable for link ``link_index``.

        Active slot: a positive count of attempts that fit before the slot
        closes.  Inactive: a non-positive count whose magnitude is the
        number of attempts until the slot next opens, so the midpoint burns
        exactly up to the slot boundary and the link's next GEN window
        starts active — never phase-locked into a peer's slot (fixed-size
        analytic fast-forward windows would otherwise starve whenever the
        window length is a multiple of the schedule period).
        """

        def attempt_gate(now: float, batch: int, stride: int,
                         cycle_time: float) -> int:
            step = max(stride * cycle_time, 1e-12)
            if self.active_link(now) != link_index:
                reopen = self.next_active(link_index, now)
                burn = int(math.ceil((reopen - now) / step - 1e-9))
                return -max(1, burn)
            slot_end = ((math.floor(now / self.slot_duration) + 1)
                        * self.slot_duration)
            allowed = int(math.ceil((slot_end - now) / step - 1e-9))
            return max(1, min(batch, allowed))

        return attempt_gate


def _with_insertion_loss(scenario, loss_db: float):
    """Fold an optical switch's insertion loss into a link scenario.

    The loss multiplies the frequency-conversion/outcoupling efficiency of
    both arms — photons from either node traverse the switch on the way to
    the heralding detectors.
    """
    if loss_db <= 0:
        return scenario
    factor = 10.0 ** (-loss_db / 10.0)
    return scenario.with_optics(
        optics_a=replace(scenario.optics_a,
                         p_frequency_conversion=(
                             scenario.optics_a.p_frequency_conversion
                             * factor)),
        optics_b=replace(scenario.optics_b,
                         p_frequency_conversion=(
                             scenario.optics_b.p_frequency_conversion
                             * factor)))


def derive_link_seeds(seed: Optional[int],
                      count: int) -> list[Optional[int]]:
    """Independent per-link seeds (plus one extra for the swap RNG)."""
    if seed is None:
        return [None] * (count + 1)
    children = np.random.SeedSequence(seed).spawn(count + 1)
    return [int(child.generate_state(1, dtype=np.uint64)[0])
            for child in children]


class TopologyNetwork:
    """All links of a topology, live, on one shared event engine.

    Accepts the same knobs as a single-link
    :class:`~repro.runtime.runner.SimulationRun` (scheduler, seed, attempt
    batching, backend, event engine, timer elision) and applies them to
    every link; ``swap_gate_fidelity`` parameterises the repeater BSM noise
    for chains.
    """

    def __init__(self, topology: Topology,
                 scheduler: str = "FCFS",
                 seed: Optional[int] = 12345,
                 emission_multiplexing: bool = True,
                 attempt_batch_size: int = 1,
                 backend=None,
                 event_queue=None,
                 elide_watchdog: Optional[bool] = None,
                 timer_elision: bool = True,
                 swap_gate_fidelity: float = 1.0) -> None:
        from repro.backends import get_backend

        topology.validate()
        self.topology = topology
        self.engine = SimulationEngine(queue=event_queue)
        self.backend = get_backend(backend)
        seeds = derive_link_seeds(seed, len(topology.links))
        #: Per-link seeds (last entry feeds the swap RNG) — exposed so the
        #: runner can derive per-link workload seeds the same way a
        #: single-link run derives its workload seed from the network seed.
        self.seeds = seeds
        self.links: list[LinkInstance] = []
        for index, link_spec in enumerate(topology.links):
            scenario = link_spec.arm_scenario()
            if topology.switch is not None:
                scenario = _with_insertion_loss(
                    scenario, topology.switch.insertion_loss_db)
            network = LinkLayerNetwork(
                scenario, scheduler=scheduler, seed=seeds[index],
                emission_multiplexing=emission_multiplexing,
                attempt_batch_size=attempt_batch_size,
                engine=self.engine, backend=self.backend,
                elide_watchdog=elide_watchdog, timer_elision=timer_elision)
            self.links.append(LinkInstance(index=index, spec=link_spec,
                                           network=network))
        self.schedule: Optional[SwitchSchedule] = None
        self.swap: Optional[SwapAsapEGP] = None
        if topology.kind == "star":
            self.schedule = SwitchSchedule(len(self.links),
                                           topology.switch.slot_duration)
            for link in self.links:
                link.network.midpoint.attempt_gate = self.schedule.gate(
                    link.index)
        elif topology.kind == "chain":
            swap_rng = np.random.default_rng(seeds[-1])
            self.swap = SwapAsapEGP(topology, self.links, swap_rng,
                                    swap_gate_fidelity=swap_gate_fidelity)

    def run(self, duration: float) -> int:
        """Advance the shared engine by ``duration`` simulated seconds."""
        return self.engine.run(until=self.engine.now + duration)

    def run_until(self, time: float) -> int:
        """Advance the shared engine to absolute simulated ``time``."""
        return self.engine.run(until=time)
