"""Declarative network topologies built from link-layer links.

A :class:`Topology` describes an N-node network as a set of named nodes and
links, where every link carries its own :class:`~repro.hardware.parameters.
ScenarioConfig` (hardware parameters, midpoint placement).  The spec layer is
pure data: it knows nothing about simulation engines or protocols — the
:mod:`repro.topology.network` module instantiates one MHP/EGP link-layer
stack per link from it.

Two constructors cover the paper-adjacent topologies:

* :meth:`Topology.chain` — a linear chain of automated repeater nodes; the
  swap-ASAP protocol (:mod:`repro.topology.swap`) turns per-link pairs into
  end-to-end entanglement;
* :meth:`Topology.switched_star` — several node pairs time-sharing a single
  heralding midpoint through a lossy optical switch
  (:class:`SwitchSpec`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing
from dataclasses import dataclass, replace
from typing import Optional

from repro.hardware.parameters import (
    ScenarioConfig,
    lab_scenario,
    ql2020_scenario,
)


def build_dataclass(cls: type, data: dict):
    """Rebuild a (possibly nested) dataclass from ``dataclasses.asdict`` output.

    Field types are resolved through ``typing.get_type_hints`` (the modules
    use ``from __future__ import annotations``, so ``fields()`` only carries
    strings); nested dataclasses and ``Optional`` wrappers are reconstructed
    recursively.  Unknown keys are ignored so older serialised plans keep
    loading after a field is added.
    """
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for spec_field in dataclasses.fields(cls):
        if spec_field.name not in data:
            continue
        value = data[spec_field.name]
        hint = hints.get(spec_field.name)
        if typing.get_origin(hint) is typing.Union:
            args = [arg for arg in typing.get_args(hint)
                    if arg is not type(None)]
            hint = args[0] if len(args) == 1 else None
        if dataclasses.is_dataclass(hint) and isinstance(value, dict):
            value = build_dataclass(hint, value)
        kwargs[spec_field.name] = value
    return cls(**kwargs)


def hardware_config(hardware: "str | ScenarioConfig") -> ScenarioConfig:
    """Resolve a hardware name (``"Lab"`` / ``"QL2020"``) or pass a config."""
    if isinstance(hardware, ScenarioConfig):
        return hardware
    if hardware.lower() == "lab":
        return lab_scenario()
    if hardware.lower() == "ql2020":
        return ql2020_scenario()
    raise ValueError(f"unknown hardware scenario {hardware!r}")


@dataclass(frozen=True)
class LinkSpec:
    """One physical link of a topology.

    ``scenario`` carries the full per-link hardware parameters (the same
    :class:`ScenarioConfig` a single-link simulation uses); the topology node
    names map onto the link's internal ``"A"``/``"B"`` roles in declaration
    order.  ``midpoint_position`` places the heralding station along the
    fibre: the total fibre length of the link's optics is split
    ``position : (1 - position)`` between the A and B arms.
    """

    node_a: str
    node_b: str
    scenario: ScenarioConfig
    midpoint_position: float = 0.5

    @property
    def name(self) -> str:
        """Display name, e.g. ``"n0-n1"``."""
        return f"{self.node_a}-{self.node_b}"

    def arm_scenario(self) -> ScenarioConfig:
        """The link scenario with the midpoint placed per ``midpoint_position``.

        The combined fibre length of both optical arms is preserved; only
        its split between the A and B arms moves with the midpoint.
        """
        if self.midpoint_position == 0.5:
            return self.scenario
        total = (self.scenario.optics_a.fiber_length_km
                 + self.scenario.optics_b.fiber_length_km)
        optics_a = replace(self.scenario.optics_a,
                           fiber_length_km=total * self.midpoint_position)
        optics_b = replace(self.scenario.optics_b,
                           fiber_length_km=total * (1 - self.midpoint_position))
        return self.scenario.with_optics(optics_a=optics_a, optics_b=optics_b)


@dataclass(frozen=True)
class SwitchSpec:
    """A lossy optical switch time-sharing one midpoint between links.

    ``insertion_loss_db`` is applied to *both* optical arms of every link
    behind the switch (photons traverse the switch in each direction);
    ``slot_duration`` is the round-robin time slot during which exactly one
    link's attempts reach the heralding station — attempts of inactive links
    fail deterministically (their photons are not routed).
    """

    slot_duration: float = 0.005
    insertion_loss_db: float = 1.5
    schedule: str = "round-robin"


@dataclass(frozen=True)
class Topology:
    """A declarative multi-link network specification.

    ``kind`` selects the composition protocol: ``"chain"`` runs swap-ASAP
    entanglement swapping at the interior nodes, ``"star"`` time-shares a
    switched midpoint between independent end-node pairs.
    """

    name: str
    kind: str
    nodes: tuple[str, ...]
    links: tuple[LinkSpec, ...]
    switch: Optional[SwitchSpec] = None

    KINDS = ("chain", "star")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def chain(cls, num_nodes: int,
              hardware: "str | ScenarioConfig" = "Lab",
              name: Optional[str] = None) -> "Topology":
        """A linear repeater chain of ``num_nodes`` nodes (≥ 2).

        Link ``i`` connects node ``n{i}`` (internal role A) to node
        ``n{i+1}`` (internal role B); every link uses the same hardware
        parameters.  Per-link overrides are expressed by rebuilding the
        ``links`` tuple with :func:`dataclasses.replace`.
        """
        if num_nodes < 2:
            raise ValueError(f"a chain needs at least 2 nodes, got {num_nodes}")
        config = hardware_config(hardware)
        nodes = tuple(f"n{i}" for i in range(num_nodes))
        links = tuple(LinkSpec(node_a=nodes[i], node_b=nodes[i + 1],
                               scenario=config)
                      for i in range(num_nodes - 1))
        topology = cls(name=name or f"chain{num_nodes}_{config.name}",
                       kind="chain", nodes=nodes, links=links)
        topology.validate()
        return topology

    @classmethod
    def switched_star(cls, num_pairs: int,
                      hardware: "str | ScenarioConfig" = "Lab",
                      slot_duration: float = 0.005,
                      insertion_loss_db: float = 1.5,
                      name: Optional[str] = None) -> "Topology":
        """``num_pairs`` end-node pairs sharing one switched midpoint."""
        if num_pairs < 1:
            raise ValueError(f"a star needs at least 1 pair, got {num_pairs}")
        config = hardware_config(hardware)
        nodes: list[str] = []
        links: list[LinkSpec] = []
        for i in range(num_pairs):
            left, right = f"a{i}", f"b{i}"
            nodes.extend((left, right))
            links.append(LinkSpec(node_a=left, node_b=right, scenario=config))
        topology = cls(name=name or f"star{num_pairs}_{config.name}",
                       kind="star", nodes=tuple(nodes), links=tuple(links),
                       switch=SwitchSpec(slot_duration=slot_duration,
                                         insertion_loss_db=insertion_loss_db))
        topology.validate()
        return topology

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` on any structural inconsistency."""
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown topology kind {self.kind!r}; "
                             f"expected one of {self.KINDS}")
        if not self.nodes:
            raise ValueError("topology has no nodes")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError("duplicate node names in topology")
        if not self.links:
            raise ValueError("topology has no links")
        known = set(self.nodes)
        for link in self.links:
            if link.node_a == link.node_b:
                raise ValueError(f"self-link at node {link.node_a!r}")
            for node in (link.node_a, link.node_b):
                if node not in known:
                    raise ValueError(f"link {link.name!r} references unknown "
                                     f"node {node!r}")
            if not 0.0 < link.midpoint_position < 1.0:
                raise ValueError(
                    f"link {link.name!r} midpoint_position "
                    f"{link.midpoint_position} outside (0, 1)")
        if self.kind == "chain":
            if self.switch is not None:
                raise ValueError("chain topologies have no switch")
            if len(self.links) != len(self.nodes) - 1:
                raise ValueError(
                    f"a {len(self.nodes)}-node chain needs "
                    f"{len(self.nodes) - 1} links, got {len(self.links)}")
            for i, link in enumerate(self.links):
                if (link.node_a, link.node_b) != (self.nodes[i],
                                                  self.nodes[i + 1]):
                    raise ValueError(
                        f"chain link {i} must connect {self.nodes[i]!r} -> "
                        f"{self.nodes[i + 1]!r}, got {link.name!r}")
        if self.kind == "star":
            if self.switch is None:
                raise ValueError("star topologies need a switch spec")
            if self.switch.slot_duration <= 0:
                raise ValueError("switch slot_duration must be positive")
            if self.switch.insertion_loss_db < 0:
                raise ValueError("switch insertion loss cannot be negative")
            endpoints = [node for link in self.links
                         for node in (link.node_a, link.node_b)]
            if len(set(endpoints)) != len(endpoints):
                raise ValueError("star links must connect disjoint node pairs")

    def interior_nodes(self) -> tuple[str, ...]:
        """Repeater nodes of a chain (empty for other kinds)."""
        if self.kind != "chain":
            return ()
        return self.nodes[1:-1]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serialisable representation (exact round-trip)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "nodes": list(self.nodes),
            "links": [{
                "node_a": link.node_a,
                "node_b": link.node_b,
                "scenario": dataclasses.asdict(link.scenario),
                "midpoint_position": link.midpoint_position,
            } for link in self.links],
            "switch": (None if self.switch is None
                       else dataclasses.asdict(self.switch)),
        }

    def identity_key(self) -> str:
        """Short content hash of the full topology definition.

        Recorded in resume-cache entries (see :mod:`repro.runtime.cache`) so
        a topology redefinition under an unchanged name is detected and
        reported instead of silently served stale results.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode()).hexdigest()[:20]

    @classmethod
    def from_dict(cls, data: dict) -> "Topology":
        """Rebuild a topology serialised with :meth:`to_dict`."""
        links = tuple(
            LinkSpec(node_a=entry["node_a"], node_b=entry["node_b"],
                     scenario=build_dataclass(ScenarioConfig,
                                              entry["scenario"]),
                     midpoint_position=entry.get("midpoint_position", 0.5))
            for entry in data["links"])
        switch = (build_dataclass(SwitchSpec, data["switch"])
                  if data.get("switch") else None)
        topology = cls(name=data["name"], kind=data["kind"],
                       nodes=tuple(data["nodes"]), links=links, switch=switch)
        topology.validate()
        return topology
