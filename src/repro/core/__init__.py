"""Link layer (EGP) and physical layer (MHP) protocols.

This package contains the paper's primary contribution: the protocols that
turn physical-layer heralded entanglement attempts into a robust link-layer
entanglement generation service.

Layering (paper Figure 5)::

    Higher layer --CREATE/OK/ERR--> EGP (link layer)
    EGP --poll/yes-no--> MHP (physical layer)
    MHP --GEN/REPLY--> Heralding midpoint

Public API highlights
---------------------
``EntanglementRequest``
    The CREATE request submitted by higher layers.
``EGP``
    The link-layer Entanglement Generation Protocol.
``NodeMHP`` / ``MidpointHeraldingService``
    The physical-layer Midpoint Heralding Protocol.
``FCFSScheduler`` / ``WeightedFairScheduler``
    Scheduling strategies studied in Section 6.3.
"""

from repro.core.messages import (
    RequestType,
    Priority,
    EntanglementRequest,
    OkMessage,
    ErrorMessage,
    ErrorCode,
    ExpireNotice,
    EntanglementId,
    MHPReply,
    MHPError,
    GenMessage,
    PollResponse,
)
from repro.core.distributed_queue import DistributedQueue, QueueItem, LocalQueue
from repro.core.qmm import QuantumMemoryManager
from repro.core.feu import FidelityEstimationUnit, FidelityEstimate
from repro.core.scheduler import (
    SchedulingStrategy,
    FCFSScheduler,
    WeightedFairScheduler,
)
from repro.core.mhp import NodeMHP, MidpointHeraldingService
from repro.core.egp import EGP

__all__ = [
    "RequestType",
    "Priority",
    "EntanglementRequest",
    "OkMessage",
    "ErrorMessage",
    "ErrorCode",
    "ExpireNotice",
    "EntanglementId",
    "MHPReply",
    "MHPError",
    "GenMessage",
    "PollResponse",
    "DistributedQueue",
    "QueueItem",
    "LocalQueue",
    "QuantumMemoryManager",
    "FidelityEstimationUnit",
    "FidelityEstimate",
    "SchedulingStrategy",
    "FCFSScheduler",
    "WeightedFairScheduler",
    "NodeMHP",
    "MidpointHeraldingService",
    "EGP",
]
