"""Distributed Queue Protocol (DQP) — paper Appendix E.1.

Both controllable nodes must trigger entanglement attempts for the *same*
request in the *same* MHP cycle.  The DQP achieves this agreement by keeping
synchronised local queues at both nodes: one node (A) is the *master* of the
queue and assigns sequence numbers, the other (B) is the *slave*.

Properties implemented (Appendix E.1.2):

* total order and arrival-time ordering within each priority queue,
* equal queue number / uniqueness / consistency of absolute queue ids,
* windowed fairness between the two origins,
* ``min_time`` (schedule cycle) so that neither node starts generating before
  the other has the item,
* retransmission of ADD frames when ACK/REJ is lost,
* rejection when the queue is full or the peer's policy refuses the purpose id.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.messages import (
    AbsoluteQueueId,
    EntanglementRequest,
    ErrorCode,
    Priority,
    QueueAck,
    QueueAdd,
    QueueReject,
)
from repro.sim.channel import ClassicalChannel
from repro.sim.engine import SimulationEngine
from repro.sim.entity import Protocol

#: Maintain per-lane ready lists by delta updates (add / remove / ACK /
#: cycle-advance promotion) instead of rescanning the whole lane after every
#: mutation.  The full rescan remains as the fallback path (first query,
#: or after :meth:`LocalQueue.invalidate_ready_cache`); flipping this off
#: restores rescan-on-every-mutation for debugging.
INCREMENTAL_READY = True


@dataclass
class QueueItem:
    """One entry of the distributed queue."""

    request: EntanglementRequest
    queue_id: AbsoluteQueueId
    schedule_cycle: int
    timeout_cycle: Optional[int]
    added_at: float
    pairs_remaining: int
    acknowledged: bool = False
    #: Position in the owning lane's arrival sequence (assigned by
    #: :meth:`LocalQueue.add`); delta-maintained ready lists merge on it to
    #: keep arrival order without consulting the lane's ``_order`` list.
    arrival_order: int = 0
    #: Virtual finish time used by weighted-fair-queueing schedulers.
    virtual_finish: float = 0.0
    #: Cycle until which generation for this item is suspended (used while the
    #: peer applies the |Psi-> correction).
    suspended_until_cycle: int = 0
    #: Number of pairs successfully delivered so far.
    pairs_delivered: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def priority(self) -> Priority:
        """Priority of the underlying request."""
        return self.request.priority

    def is_ready(self, cycle: int) -> bool:
        """Whether this item may be served in MHP cycle ``cycle``.

        Readiness caching invariant (see :meth:`LocalQueue.ready_items`):
        the fields this predicate reads — ``acknowledged``,
        ``schedule_cycle``, ``suspended_until_cycle``, ``pairs_remaining``
        — may only change through paths that invalidate the owning queue's
        ready cache (``LocalQueue.add/remove``, ``DistributedQueue`` frame
        handling), with one audited exception: the EGP decrements
        ``pairs_remaining`` on delivery and, when it reaches zero, removes
        the item before the next readiness query.

        NOTE: :meth:`LocalQueue.ready_items` inlines this predicate in its
        rebuild loop (the per-item method call is measurable on deep
        backlogs) — keep the two in sync when changing readiness rules.
        """
        return (self.acknowledged
                and cycle >= self.schedule_cycle
                and cycle >= self.suspended_until_cycle
                and self.pairs_remaining > 0)


class LocalQueue:
    """A single priority lane of the distributed queue."""

    def __init__(self, queue_id: int, max_size: int = 256,
                 version_cell: Optional[list] = None) -> None:
        self.queue_id = queue_id
        self.max_size = max_size
        self._items: dict[int, QueueItem] = {}
        self._order: list[int] = []
        # Ready-list cache: the EGP asks for ready items every GEN cycle,
        # but the answer only changes when the queue mutates or a waiting
        # item crosses its schedule/suspension cycle.  ``_ready_next_change``
        # is the earliest such crossing; until then a cache hit skips the
        # per-item scan entirely.
        self._ready_cache: Optional[list[QueueItem]] = None
        self._ready_cycle: int = -1
        self._ready_next_change: float = math.inf
        #: Acknowledged items with a schedule/suspension threshold beyond
        #: ``_ready_cycle``, in arrival order — the promotion frontier the
        #: incremental path draws from when the cycle advances (valid only
        #: while ``_ready_cache`` is not ``None``).
        self._waiting: list[QueueItem] = []
        #: Arrival-sequence source for :attr:`QueueItem.arrival_order`.
        self._arrivals = itertools.count()
        #: Mutation counter, optionally shared with the owning
        #: :class:`DistributedQueue` so its flattened ready tuple can verify
        #: all lanes at once (one int compare instead of per-lane calls).
        self._version_cell = version_cell if version_cell is not None else [0]

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, queue_seq: int) -> bool:
        return queue_seq in self._items

    @property
    def is_full(self) -> bool:
        """Whether the queue has reached its maximum size."""
        return len(self._items) >= self.max_size

    def invalidate_ready_cache(self) -> None:
        """Drop the cached ready list (full-rescan fallback for any
        readiness-affecting mutation the delta paths don't cover)."""
        self._ready_cache = None
        self._version_cell[0] += 1

    def add(self, item: QueueItem) -> None:
        """Insert ``item`` keyed by its queue sequence number."""
        seq = item.queue_id.queue_seq
        if seq in self._items:
            raise ValueError(f"queue {self.queue_id} already holds seq {seq}")
        if self.is_full:
            raise OverflowError(f"queue {self.queue_id} is full")
        item.arrival_order = next(self._arrivals)
        self._items[seq] = item
        self._order.append(seq)
        if not INCREMENTAL_READY or self._ready_cache is None:
            self.invalidate_ready_cache()
            return
        # Delta: an unacknowledged item is invisible to readiness until its
        # ACK arrives (see :meth:`mark_acknowledged`), so the cached list —
        # and its identity, which the schedulers memoise on — stays valid.
        if item.acknowledged:
            self._insert_visible(item)

    def mark_acknowledged(self, item: QueueItem) -> None:
        """Readiness delta for a resident item whose ACK just arrived
        (``acknowledged`` already flipped by the caller)."""
        if not INCREMENTAL_READY or self._ready_cache is None:
            self.invalidate_ready_cache()
            return
        self._insert_visible(item)

    def _insert_visible(self, item: QueueItem) -> None:
        """Slot an acknowledged item into the cached ready list or the
        waiting frontier, keeping both arrival-ordered."""
        if item.pairs_remaining <= 0:
            return
        threshold = max(item.schedule_cycle, item.suspended_until_cycle)
        if threshold <= self._ready_cycle:
            # Ready at the cached cycle: publish a NEW list object (the
            # identity change is what invalidates scheduler memoisation).
            ready = list(self._ready_cache)
            position = len(ready)
            while (position > 0
                   and ready[position - 1].arrival_order > item.arrival_order):
                position -= 1
            ready.insert(position, item)
            self._ready_cache = ready
            self._version_cell[0] += 1
        else:
            waiting = self._waiting
            position = len(waiting)
            while (position > 0
                   and waiting[position - 1].arrival_order
                   > item.arrival_order):
                position -= 1
            waiting.insert(position, item)
            if threshold < self._ready_next_change:
                # Tightening the crossing must bump the version so the
                # owning DistributedQueue re-aggregates its flat horizon.
                self._ready_next_change = threshold
                self._version_cell[0] += 1

    def get(self, queue_seq: int) -> Optional[QueueItem]:
        """Item with the given sequence number, or ``None``."""
        return self._items.get(queue_seq)

    def remove(self, queue_seq: int) -> Optional[QueueItem]:
        """Remove and return the item with the given sequence number."""
        item = self._items.pop(queue_seq, None)
        if item is None:
            return None
        self._order.remove(queue_seq)
        if not INCREMENTAL_READY or self._ready_cache is None:
            self.invalidate_ready_cache()
            return item
        # Delta removal.  Identity scans throughout: QueueItem's dataclass
        # equality compares fields, and two distinct items may compare
        # equal — only ``is`` names the right one.
        for position, ready_item in enumerate(self._ready_cache):
            if ready_item is item:
                ready = list(self._ready_cache)
                del ready[position]
                self._ready_cache = ready
                self._version_cell[0] += 1
                return item
        for position, waiting_item in enumerate(self._waiting):
            if waiting_item is item:
                # ``_ready_next_change`` may now be earlier than any real
                # crossing; that is conservative — the promotion pass at
                # that cycle finds nothing and recomputes the horizon.
                del self._waiting[position]
                return item
        return item  # unacknowledged (or pairs exhausted): was invisible

    def items_in_order(self) -> list[QueueItem]:
        """All items in arrival order."""
        return [self._items[seq] for seq in self._order]

    def ready_items(self, cycle: int) -> list[QueueItem]:
        """Items that may be served in ``cycle``, in arrival order.

        Cached between calls: the list is rebuilt only after a mutation
        (add / remove / acknowledgement — see :meth:`invalidate_ready_cache`)
        or once ``cycle`` reaches the earliest schedule/suspension crossing
        of a waiting item.  Callers must treat the returned list as
        read-only (the EGP and schedulers already do).
        """
        if self._ready_cache is not None and self._ready_cycle <= cycle:
            if cycle < self._ready_next_change:
                return self._ready_cache
            if INCREMENTAL_READY:
                return self._promote(cycle)
        ready = []
        waiting = []
        next_change = math.inf
        items = self._items
        for seq in self._order:
            item = items[seq]
            # Inlined ``item.is_ready(cycle)``: the rebuild scans every
            # resident item and deep MD backlogs make the per-item method
            # call measurable on the poll hot path.
            if not item.acknowledged or item.pairs_remaining <= 0:
                continue
            if (cycle >= item.schedule_cycle
                    and cycle >= item.suspended_until_cycle):
                ready.append(item)
            else:
                # Not ready yet, but will become ready without any further
                # mutation once its schedule/suspension cycle passes.
                threshold = max(item.schedule_cycle,
                                item.suspended_until_cycle)
                if threshold > cycle:
                    waiting.append(item)
                    next_change = min(next_change, threshold)
        self._ready_cache = ready
        self._waiting = waiting
        self._ready_cycle = cycle
        self._ready_next_change = next_change
        return ready

    def _promote(self, cycle: int) -> list[QueueItem]:
        """Cycle-advance delta: move waiting items whose threshold passed
        into the ready list instead of rescanning the whole lane."""
        promoted = []
        waiting = []
        next_change = math.inf
        for item in self._waiting:
            if item.pairs_remaining <= 0:
                continue  # delivered out from under us; removal is pending
            threshold = max(item.schedule_cycle, item.suspended_until_cycle)
            if threshold <= cycle:
                promoted.append(item)
            else:
                waiting.append(item)
                next_change = min(next_change, threshold)
        self._waiting = waiting
        self._ready_cycle = cycle
        self._ready_next_change = next_change
        if promoted:
            # Arrival-order merge of two arrival-ordered runs, into a NEW
            # list object (identity change = memoisation invalidation).
            ready = self._ready_cache
            merged = []
            i = j = 0
            while i < len(ready) and j < len(promoted):
                if ready[i].arrival_order <= promoted[j].arrival_order:
                    merged.append(ready[i])
                    i += 1
                else:
                    merged.append(promoted[j])
                    j += 1
            merged.extend(ready[i:])
            merged.extend(promoted[j:])
            self._ready_cache = merged
            self._version_cell[0] += 1
        return self._ready_cache


@dataclass
class _PendingAdd:
    """Book-keeping for an ADD awaiting acknowledgement."""

    comm_seq: int
    frame: QueueAdd
    callback: Callable[[Optional[QueueItem], Optional[ErrorCode]], None]
    item: Optional[QueueItem]
    retries: int = 0


class DistributedQueue(Protocol):
    """One node's end of the distributed queue.

    Parameters
    ----------
    engine:
        Simulation engine.
    node_name:
        Local node name ("A" or "B").
    is_master:
        Whether this node holds the master copy (assigns sequence numbers).
    priorities:
        The priority lanes to create (one :class:`LocalQueue` per priority).
    max_queue_size:
        Maximum items per lane (the paper uses 256).
    window_size:
        Maximum outstanding un-acknowledged ADDs per origin (fairness window).
    ack_timeout:
        Time to wait for an ACK/REJ before retransmitting the ADD.
    max_retries:
        Retransmissions before the add is abandoned with a NOTIME error.
    accept_policy:
        Predicate deciding whether a peer's request (by purpose id) is
        accepted; returning ``False`` triggers a REJ / DENIED.
    """

    def __init__(self, engine: SimulationEngine, node_name: str,
                 is_master: bool,
                 priorities: tuple[Priority, ...] = (Priority.NL, Priority.CK,
                                                     Priority.MD),
                 max_queue_size: int = 256,
                 window_size: int = 16,
                 ack_timeout: float = 1e-3,
                 max_retries: int = 10,
                 accept_policy: Optional[Callable[[EntanglementRequest], bool]] = None,
                 ) -> None:
        super().__init__(engine, name=f"DQP-{node_name}")
        self.node_name = node_name
        self.is_master = is_master
        #: Shared mutation counter: any lane's readiness-affecting change
        #: bumps it, which is the flat ready cache's invalidation signal.
        self._version = [0]
        self.queues: dict[int, LocalQueue] = {
            int(priority): LocalQueue(int(priority), max_size=max_queue_size,
                                      version_cell=self._version)
            for priority in priorities
        }
        self.window_size = window_size
        self.ack_timeout = ack_timeout
        self._ack_timeout_name = f"{self.name}.ack_timeout"
        self.max_retries = max_retries
        self.accept_policy = accept_policy or (lambda request: True)
        self._channel: Optional[ClassicalChannel] = None
        self._comm_seq = itertools.count()
        self._master_seq: dict[int, itertools.count] = {
            queue_id: itertools.count() for queue_id in self.queues
        }
        self._pending: dict[int, _PendingAdd] = {}
        # Flat ready-list cache: valid while every lane's (cached) ready
        # list is the identical object it was on the previous call.
        self._flat_ready: Optional[tuple[QueueItem, ...]] = None
        self._flat_sources: tuple[list[QueueItem], ...] = ()
        # Fast-path validity window for the flat cache: no lane mutated
        # (version) and ``cycle`` below the earliest readiness crossing.
        self._flat_version = -1
        self._flat_cycle = -1
        self._flat_next_change = -math.inf
        #: Called whenever an item is added locally (either origin).
        self.on_item_added: Optional[Callable[[QueueItem], None]] = None
        self.statistics = {"adds_sent": 0, "adds_received": 0,
                           "acks_sent": 0, "rejects_sent": 0,
                           "retransmissions": 0, "abandoned": 0}

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def attach_channel(self, channel: ClassicalChannel) -> None:
        """Set the classical channel used to reach the peer DQP."""
        self._channel = channel

    def receive(self, frame: object) -> None:
        """Entry point for frames arriving from the peer DQP."""
        if isinstance(frame, QueueAdd):
            self._handle_add(frame)
        elif isinstance(frame, QueueAck):
            self._handle_ack(frame)
        elif isinstance(frame, QueueReject):
            self._handle_reject(frame)
        else:
            raise TypeError(f"unexpected DQP frame {type(frame).__name__}")

    # ------------------------------------------------------------------ #
    # Local API used by the EGP
    # ------------------------------------------------------------------ #
    def queue_for_priority(self, priority: Priority) -> int:
        """Queue id used for requests of the given priority."""
        return int(priority)

    def outstanding_adds(self) -> int:
        """Number of local ADDs still awaiting acknowledgement."""
        return len(self._pending)

    def total_length(self) -> int:
        """Total number of items across all priority lanes."""
        return sum(len(queue) for queue in self.queues.values())

    def add(self, request: EntanglementRequest, schedule_cycle: int,
            timeout_cycle: Optional[int],
            callback: Callable[[Optional[QueueItem], Optional[ErrorCode]], None],
            ) -> None:
        """Add ``request`` to the distributed queue.

        ``callback(item, error)`` fires once the add is resolved: on success
        ``item`` is the local :class:`QueueItem` and ``error`` is ``None``;
        on failure ``item`` is ``None`` and ``error`` describes the reason.
        """
        if self._channel is None:
            raise RuntimeError("DQP channel not attached")
        queue_id = self.queue_for_priority(request.priority)
        queue = self.queues[queue_id]
        if queue.is_full:
            callback(None, ErrorCode.REJECTED)
            return
        if len(self._pending) >= self.window_size:
            callback(None, ErrorCode.NOTIME)
            return
        comm_seq = next(self._comm_seq)
        if self.is_master:
            queue_seq = next(self._master_seq[queue_id])
            item = self._make_item(request, queue_id, queue_seq,
                                   schedule_cycle, timeout_cycle)
            queue.add(item)
            frame = QueueAdd(origin=self.node_name, comm_seq=comm_seq,
                             queue_id=queue_id, queue_seq=queue_seq,
                             request=request, schedule_cycle=schedule_cycle,
                             timeout_cycle=timeout_cycle)
        else:
            item = None
            frame = QueueAdd(origin=self.node_name, comm_seq=comm_seq,
                             queue_id=queue_id, queue_seq=None,
                             request=request, schedule_cycle=schedule_cycle,
                             timeout_cycle=timeout_cycle)
        pending = _PendingAdd(comm_seq=comm_seq, frame=frame,
                              callback=callback, item=item)
        self._pending[comm_seq] = pending
        self._transmit_add(pending)

    def remove(self, queue_id: AbsoluteQueueId) -> Optional[QueueItem]:
        """Remove an item once its request completed, timed out or expired."""
        queue = self.queues.get(queue_id.queue_id)
        if queue is None:
            return None
        return queue.remove(queue_id.queue_seq)

    def get(self, queue_id: AbsoluteQueueId) -> Optional[QueueItem]:
        """Look up an item by absolute queue id."""
        queue = self.queues.get(queue_id.queue_id)
        if queue is None:
            return None
        return queue.get(queue_id.queue_seq)

    def ready_items(self, cycle: int) -> tuple[QueueItem, ...]:
        """All ready items across lanes (the scheduler picks among these).

        Returned as an immutable *tuple*, cached on the identity of the
        per-lane cached lists: while no lane rebuilt its ready list, the
        same tuple object comes back.  That saves the per-cycle copy on
        deep queues — and because the object is immutable and stable
        between mutations, the schedulers memoise their selection on it
        (see :meth:`~repro.core.scheduler.FCFSScheduler.select`).
        """
        # Fast path: no lane mutated since the last call and ``cycle`` is
        # still below every lane's next readiness crossing — one int
        # compare instead of per-lane cache checks.
        if (self._flat_version == self._version[0]
                and self._flat_cycle <= cycle < self._flat_next_change
                and self._flat_ready is not None):
            return self._flat_ready
        sources = tuple(queue.ready_items(cycle)
                        for queue in self.queues.values())
        self._flat_version = self._version[0]
        self._flat_cycle = cycle
        self._flat_next_change = min(
            (queue._ready_next_change for queue in self.queues.values()),
            default=math.inf)
        previous = self._flat_sources
        if (self._flat_ready is not None and len(sources) == len(previous)
                and all(a is b for a, b in zip(sources, previous))):
            return self._flat_ready
        flat = tuple(item for source in sources for item in source)
        self._flat_sources = sources
        self._flat_ready = flat
        return flat

    def next_ready_change(self) -> float:
        """Earliest cycle at which a currently waiting item becomes ready
        without any further mutation (``math.inf`` when none is pending).

        Valid for the cycle passed to the latest :meth:`ready_items` call —
        the EGP consults it right after an empty ready answer to decide
        when a poll could next be useful (busy-poll elision).  It may be
        conservative (earlier than any real crossing) after a waiting item
        was removed, which only costs one extra promotion pass.
        """
        return self._flat_next_change

    # ------------------------------------------------------------------ #
    # Frame handling
    # ------------------------------------------------------------------ #
    def _transmit_add(self, pending: _PendingAdd) -> None:
        assert self._channel is not None
        self.statistics["adds_sent"] += 1
        self._channel.send(pending.frame)
        self.call_after(self.ack_timeout, self._check_ack,
                        args=(pending.comm_seq,),
                        name=self._ack_timeout_name)

    def _check_ack(self, comm_seq: int) -> None:
        pending = self._pending.get(comm_seq)
        if pending is None:
            return
        pending.retries += 1
        if pending.retries > self.max_retries:
            # Abandon: roll back any local insertion (master origin).
            self.statistics["abandoned"] += 1
            del self._pending[comm_seq]
            if pending.item is not None:
                self.remove(pending.item.queue_id)
            pending.callback(None, ErrorCode.NOTIME)
            return
        self.statistics["retransmissions"] += 1
        self._transmit_add(pending)

    def _handle_add(self, frame: QueueAdd) -> None:
        assert self._channel is not None
        self.statistics["adds_received"] += 1
        queue = self.queues.get(frame.queue_id)
        if queue is None or not self.accept_policy(frame.request):
            self.statistics["rejects_sent"] += 1
            self._channel.send(QueueReject(origin=self.node_name,
                                           comm_seq=frame.comm_seq,
                                           queue_id=frame.queue_id,
                                           reason=ErrorCode.DENIED))
            return
        if self.is_master:
            # Peer (slave) origin: assign the sequence number here.
            queue_seq = next(self._master_seq[frame.queue_id])
        else:
            # Master origin: sequence number was assigned by the master.
            if frame.queue_seq is None:
                raise ValueError("ADD from master is missing a queue sequence")
            queue_seq = frame.queue_seq
        if queue.is_full:
            self.statistics["rejects_sent"] += 1
            self._channel.send(QueueReject(origin=self.node_name,
                                           comm_seq=frame.comm_seq,
                                           queue_id=frame.queue_id,
                                           reason=ErrorCode.REJECTED))
            return
        existing = queue.get(queue_seq)
        if existing is None:
            item = self._make_item(frame.request, frame.queue_id, queue_seq,
                                   frame.schedule_cycle, frame.timeout_cycle)
            item.acknowledged = True
            queue.add(item)
            if self.on_item_added is not None:
                self.on_item_added(item)
        self.statistics["acks_sent"] += 1
        self._channel.send(QueueAck(origin=self.node_name,
                                    comm_seq=frame.comm_seq,
                                    queue_id=frame.queue_id,
                                    queue_seq=queue_seq))

    def _handle_ack(self, frame: QueueAck) -> None:
        pending = self._pending.pop(frame.comm_seq, None)
        if pending is None:
            return  # duplicate ACK after retransmission
        queue = self.queues[frame.queue_id]
        resident: Optional[QueueItem]
        if pending.item is not None:
            # Master origin: the item has been resident (unacknowledged,
            # hence invisible to readiness) since the local add.
            item = resident = pending.item
        else:
            # Slave origin: we only now learn the queue sequence number.
            item = self._make_item(pending.frame.request, frame.queue_id,
                                   frame.queue_seq,
                                   pending.frame.schedule_cycle,
                                   pending.frame.timeout_cycle)
            if queue.get(frame.queue_seq) is None:
                queue.add(item)
                resident = item
            else:
                resident = None  # defensive: never feed a non-resident
                # item to the ready list (the resident copy rules)
        item.acknowledged = True
        # Flipping ``acknowledged`` changes readiness: delta-insert the
        # resident item (or rescan, when the incremental path is off).
        if resident is not None:
            queue.mark_acknowledged(resident)
        if self.on_item_added is not None:
            self.on_item_added(item)
        pending.callback(item, None)

    def _handle_reject(self, frame: QueueReject) -> None:
        pending = self._pending.pop(frame.comm_seq, None)
        if pending is None:
            return
        if pending.item is not None:
            self.remove(pending.item.queue_id)
        pending.callback(None, frame.reason)

    def _make_item(self, request: EntanglementRequest, queue_id: int,
                   queue_seq: int, schedule_cycle: int,
                   timeout_cycle: Optional[int]) -> QueueItem:
        return QueueItem(
            request=request,
            queue_id=AbsoluteQueueId(queue_id, queue_seq),
            schedule_cycle=schedule_cycle,
            timeout_cycle=timeout_cycle,
            added_at=self.now,
            pairs_remaining=request.number,
            acknowledged=False,
        )
