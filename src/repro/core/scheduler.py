"""EGP scheduling strategies (paper Sections 5.2.4 and 6.3, Appendix C.2).

The scheduler decides which ready queue item is served next.  Any strategy is
admissible as long as it is *deterministic* given the (synchronised) queue
state, so that both nodes independently pick the same request.

Implemented strategies:

``FCFSScheduler``
    First-come-first-serve over all priority lanes, ordered by absolute
    arrival (queue id is only a tie-breaker).

``WeightedFairScheduler``
    The paper's WFQ strategy: requests of the highest priority class
    (NL, priority 1) are always served first (strict priority); the remaining
    classes share capacity through weighted fair queueing using virtual
    finish times.  ``HigherWFQ`` (CK weight 10, MD weight 1) and ``LowerWFQ``
    (CK weight 2, MD weight 1) from Appendix C.2 are provided as factories.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.core.distributed_queue import QueueItem
from repro.core.messages import Priority


class SchedulingStrategy(ABC):
    """Picks the next queue item to serve among the ready ones."""

    #: Human-readable name used in benchmark output.
    name: str = "base"

    @abstractmethod
    def select(self, ready_items: Sequence[QueueItem],
               cycle: int) -> Optional[QueueItem]:
        """Return the item to serve in this MHP cycle, or ``None``."""

    def on_enqueue(self, item: QueueItem, cycle: int) -> None:
        """Hook invoked when an item enters the queue (used by WFQ)."""

    def on_pair_delivered(self, item: QueueItem, cycle: int) -> None:
        """Hook invoked when a pair for ``item`` is delivered."""


class _SelectionCache:
    """Memoises a scheduler's choice on the *identity* of the ready tuple.

    The EGP polls the scheduler every GEN cycle, but between queue
    mutations :meth:`DistributedQueue.ready_items` returns the identical
    immutable tuple — and every field the selection depends on
    (``added_at``, ``queue_id``, ``priority``, ``virtual_finish``) is fixed
    by the time an item appears in a ready list.  Same tuple object
    therefore implies the same choice, so the O(n) ``min`` scan of a deep
    queue runs once per mutation instead of once per cycle.  Only tuples
    are memoised — a mutable list (e.g. hand-built in tests) can be edited
    in place under the cache, so it always takes the scan path — and the
    strong reference to the memoised tuple keeps its ``id`` from being
    reused.
    """

    def __init__(self) -> None:
        self._items: Optional[Sequence[QueueItem]] = None
        self._choice: Optional[QueueItem] = None

    def lookup(self, ready_items: Sequence[QueueItem],
               ) -> "tuple[bool, Optional[QueueItem]]":
        if ready_items is self._items:
            return True, self._choice
        return False, None

    def store(self, ready_items: Sequence[QueueItem],
              choice: Optional[QueueItem]) -> Optional[QueueItem]:
        if isinstance(ready_items, tuple):
            self._items = ready_items
            self._choice = choice
        return choice


class FCFSScheduler(SchedulingStrategy):
    """First-come-first-serve across all priority lanes."""

    name = "FCFS"

    def __init__(self) -> None:
        self._cache = _SelectionCache()

    def select(self, ready_items: Sequence[QueueItem],
               cycle: int) -> Optional[QueueItem]:
        if not ready_items:
            return None
        if len(ready_items) == 1:
            # Single candidate: no scan, no cache churn.
            return self._cache.store(ready_items, ready_items[0])
        hit, choice = self._cache.lookup(ready_items)
        if hit:
            return choice
        return self._cache.store(
            ready_items,
            min(ready_items,
                key=lambda item: (item.added_at, item.queue_id)))


class WeightedFairScheduler(SchedulingStrategy):
    """Strict priority for NL plus weighted fair queueing for the rest.

    Parameters
    ----------
    weights:
        Mapping of priority to WFQ weight for the non-strict classes.  The
        paper's *HigherWFQ* uses ``{CK: 10, MD: 1}`` and *LowerWFQ*
        ``{CK: 2, MD: 1}``.
    strict_priorities:
        Priorities served ahead of everything else, in order.
    """

    def __init__(self, weights: Optional[dict[Priority, float]] = None,
                 strict_priorities: Sequence[Priority] = (Priority.NL,),
                 name: str = "WFQ") -> None:
        self.weights = weights or {Priority.CK: 10.0, Priority.MD: 1.0}
        for priority, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight for {priority} must be positive")
        self.strict_priorities = tuple(strict_priorities)
        self.name = name
        #: WFQ virtual time, advanced as pairs complete.  Only consulted at
        #: enqueue time (it stamps ``virtual_finish``), so advancing it does
        #: not perturb the selection cache.
        self._virtual_time = 0.0
        self._cache = _SelectionCache()

    @classmethod
    def higher_wfq(cls) -> "WeightedFairScheduler":
        """The paper's HigherWFQ: CK weight 10, MD weight 1."""
        return cls(weights={Priority.CK: 10.0, Priority.MD: 1.0},
                   name="HigherWFQ")

    @classmethod
    def lower_wfq(cls) -> "WeightedFairScheduler":
        """The paper's LowerWFQ: CK weight 2, MD weight 1."""
        return cls(weights={Priority.CK: 2.0, Priority.MD: 1.0},
                   name="LowerWFQ")

    # ------------------------------------------------------------------ #
    # Strategy interface
    # ------------------------------------------------------------------ #
    def on_enqueue(self, item: QueueItem, cycle: int) -> None:
        if item.priority in self.strict_priorities:
            return
        weight = self.weights.get(item.priority, 1.0)
        # Virtual finish time: start at max(virtual time, 0) and add the
        # request's normalised service demand.
        service = item.request.number / weight
        item.virtual_finish = max(self._virtual_time, item.virtual_finish) + service

    def on_pair_delivered(self, item: QueueItem, cycle: int) -> None:
        if item.priority in self.strict_priorities:
            return
        weight = self.weights.get(item.priority, 1.0)
        self._virtual_time += 1.0 / weight

    def select(self, ready_items: Sequence[QueueItem],
               cycle: int) -> Optional[QueueItem]:
        if not ready_items:
            return None
        if len(ready_items) == 1:
            return self._cache.store(ready_items, ready_items[0])
        hit, choice = self._cache.lookup(ready_items)
        if hit:
            return choice
        return self._cache.store(ready_items, self._select(ready_items))

    def _select(self, ready_items: Sequence[QueueItem],
                ) -> Optional[QueueItem]:
        for priority in self.strict_priorities:
            strict = [item for item in ready_items if item.priority == priority]
            if strict:
                return min(strict,
                           key=lambda item: (item.added_at, item.queue_id))
        weighted = [item for item in ready_items
                    if item.priority not in self.strict_priorities]
        if not weighted:
            return None
        return min(weighted,
                   key=lambda item: (item.virtual_finish, item.added_at,
                                     item.queue_id))


def make_scheduler(name: str) -> SchedulingStrategy:
    """Factory used by the scenario catalogue and benchmarks.

    Accepted names: ``"FCFS"``, ``"HigherWFQ"``, ``"LowerWFQ"`` and ``"WFQ"``
    (alias for HigherWFQ, the variant used in the paper's Table 1).
    """
    normalized = name.strip().lower()
    if normalized == "fcfs":
        return FCFSScheduler()
    if normalized in ("higherwfq", "wfq"):
        return WeightedFairScheduler.higher_wfq()
    if normalized == "lowerwfq":
        return WeightedFairScheduler.lower_wfq()
    raise ValueError(f"unknown scheduler {name!r}")
