"""Midpoint Heralding Protocol (MHP) — the physical layer (paper Section 5.1).

Two cooperating pieces:

``NodeMHP``
    Runs at each controllable node.  Every MHP cycle it polls the link layer
    (EGP); on a "yes" it triggers an entanglement generation attempt and sends
    a GEN frame to the heralding station.  Replies from the station are
    forwarded up to the EGP.  The MHP keeps no protocol state of its own.

``MidpointHeraldingService``
    Runs at the automated heralding station.  It pairs up GEN frames from the
    two nodes that belong to the same cycle, verifies that their absolute
    queue ids match, resolves the physical attempt through the configured
    :class:`~repro.backends.base.PhysicsBackend`, and sends REPLY frames back
    to both nodes.  On success it assigns the unique midpoint sequence number
    that the EGP later uses to build entanglement identifiers.

A GEN frame may cover a whole *batch* of attempts spaced ``cycle_stride``
MHP cycles apart (Section 5.1 batched operation, and the analytic backend's
geometric fast-forward): the midpoint then resolves the run of attempts in
one step and emits the REPLY at the time of the successful (or last)
attempt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.core.messages import GenMessage, MHPError, MHPReply, PollResponse
from repro.hardware.pair import EntangledPair
from repro.hardware.parameters import ScenarioConfig
from repro.sim.channel import ClassicalChannel
from repro.sim.engine import EventHandle, ReusableTimer, SimulationEngine
from repro.sim.entity import Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PhysicsBackend

_GATED_SAMPLE = None


def _gated_sample():
    """The all-failed herald sample of a switched-away attempt window.

    Lazy because :mod:`repro.backends.base` imports hardware modules; only
    switched topologies ever hit this path.
    """
    global _GATED_SAMPLE
    if _GATED_SAMPLE is None:
        from repro.backends.base import HeraldSample

        _GATED_SAMPLE = HeraldSample(outcome_code=0, state=None)
    return _GATED_SAMPLE


class NodeMHP(Protocol):
    """Node-side MHP: polls the EGP each cycle and talks to the midpoint.

    Parameters
    ----------
    engine:
        Simulation engine.
    node_name:
        "A" or "B".
    scenario:
        Hardware scenario; provides the MHP cycle time and attempt spacings.
    """

    def __init__(self, engine: SimulationEngine, node_name: str,
                 scenario: ScenarioConfig) -> None:
        super().__init__(engine, name=f"MHP-{node_name}")
        self.node_name = node_name
        self.scenario = scenario
        self.cycle_time = scenario.timing.mhp_cycle
        #: Callback into the EGP: () -> PollResponse.
        self.poll_callback: Optional[Callable[[], PollResponse]] = None
        #: Callback into the EGP: (MHPReply) -> None.
        self.reply_callback: Optional[Callable[[MHPReply], None]] = None
        self._channel: Optional[ClassicalChannel] = None
        #: One reusable event object serves the whole poll series — the
        #: MHP's fixed-cadence cycle timer is the engine's hottest customer,
        #: and the name is precomputed for the same reason.
        self._poll_timer: ReusableTimer = engine.timer(
            self._poll, name=f"{self.name}.poll")
        self._next_poll_scheduled: Optional[float] = None
        #: End of the attempt window opened by the last GEN frame; no new
        #: attempt may start before it (prevents overlapping attempt streams).
        self._attempt_window_end = 0.0
        #: GEN cycle of the currently open attempt window; only the REPLY
        #: belonging to this window may close it early.
        self._attempt_window_cycle: Optional[int] = None
        self.attempts_triggered = 0
        self.replies_received = 0
        #: Optional :class:`repro.obs.Tracer`; ``None`` keeps emission a
        #: single ``is not None`` check (zero-cost default).
        self.tracer = None

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def attach_channel(self, channel: ClassicalChannel) -> None:
        """Set the classical channel towards the heralding station."""
        self._channel = channel

    def receive(self, frame: object) -> None:
        """Entry point for REPLY frames arriving from the midpoint."""
        if not isinstance(frame, MHPReply):
            raise TypeError(f"unexpected MHP frame {type(frame).__name__}")
        self.replies_received += 1
        # A REPLY closes the attempt window it belongs to — and only that
        # window (with multiplexed batching the next window's GEN is usually
        # already out when the previous REPLY arrives; truncating it would
        # fork a second, overlapping attempt stream).  The midpoint resolved
        # every attempt up to the reported one, so new attempts may start
        # once both nodes have seen the REPLY — the deterministic
        # content-derived close time (see MHPReply.sync_close_time) keeps
        # the two nodes' batched attempt streams on the same MHP cycles
        # despite their asymmetric reply delays.
        if frame.cycle == self._attempt_window_cycle:
            close = frame.sync_close_time(self.scenario.timing)
            self._attempt_window_end = min(self._attempt_window_end, close)
        if self.reply_callback is not None:
            self.reply_callback(frame)

    # ------------------------------------------------------------------ #
    # Cycle bookkeeping
    # ------------------------------------------------------------------ #
    def current_cycle(self) -> int:
        """MHP cycle number containing the current simulation time.

        A small epsilon guards against floating-point rounding placing an
        exact cycle-boundary timestamp into the previous cycle.
        """
        return int(self._engine._now / self.cycle_time + 1e-9)

    def cycle_start(self, cycle: int) -> float:
        """Simulation time at which ``cycle`` begins."""
        return cycle * self.cycle_time

    def next_cycle_at_or_after(self, time: float) -> int:
        """First cycle starting at or after ``time``."""
        return int(math.ceil(time / self.cycle_time - 1e-12))

    # ------------------------------------------------------------------ #
    # Attempt loop
    # ------------------------------------------------------------------ #
    def next_poll_time(self, not_before: Optional[float] = None) -> float:
        """The time :meth:`notify_work` would poll at for ``not_before``.

        Exposed so the EGP can *preview* the upcoming poll (timer elision:
        deferring a poll that would provably answer "no" requires knowing
        exactly when it would fire).
        """
        now = self._engine._now
        earliest = now if not_before is None else max(now, not_before)
        earliest = max(earliest, self._attempt_window_end)
        cycle = self.next_cycle_at_or_after(earliest)
        poll_time = self.cycle_start(cycle)
        if poll_time < now:
            poll_time = self.cycle_start(cycle + 1)
        return poll_time

    def notify_work(self, not_before: Optional[float] = None) -> None:
        """Tell the MHP that the EGP may have an attempt to make.

        The MHP wakes up at the next cycle boundary (at or after
        ``not_before`` when given) and polls the EGP.  Polling stops again as
        soon as the EGP answers "no", so idle periods cost no events.
        """
        poll_time = self.next_poll_time(not_before)
        if (self._next_poll_scheduled is not None
                and self._next_poll_scheduled <= poll_time + 1e-15):
            # An earlier (or equal) poll is already armed and will cover
            # this wake-up: scheduling another would be pure churn.
            self._engine.note_elided(f"{self.name}.dup_poll")
            return
        self._next_poll_scheduled = poll_time
        self._poll_timer.arm_at(poll_time)

    def _poll(self) -> None:
        self._next_poll_scheduled = None
        if self.poll_callback is None or self._channel is None:
            return
        if self._engine._now < self._attempt_window_end - 1e-15:
            # A previously granted attempt window is still open (this poll was
            # scheduled before the window was extended); do not start an
            # overlapping attempt stream.
            return
        response = self.poll_callback()
        if not response.attempt:
            return
        if response.queue_id is None:
            raise ValueError("EGP answered yes without an absolute queue id")
        self.attempts_triggered += 1
        if self.tracer is not None:
            self.tracer.counter(f"{self.name}.gen")
        cycle = self.current_cycle()
        batch = max(1, int(response.max_attempts))
        stride = max(1, int(response.attempt_stride))
        frame = GenMessage(origin=self.node_name, queue_id=response.queue_id,
                           cycle=cycle, alpha=response.alpha,
                           timestamp=self.now, batch_size=batch,
                           cycle_stride=stride)
        self._channel.send(frame)
        # The batch's attempts run at cycle, cycle + stride, ...; the window
        # closes one cycle after the last attempt starts.
        self._attempt_window_cycle = cycle
        self._attempt_window_end = (self.now
                                    + ((batch - 1) * stride + 1)
                                    * self.cycle_time)
        # Keep polling: the next opportunity is after the granted batch of
        # cycles; the EGP decides whether it actually wants to attempt again
        # (e.g. it will answer "no" while waiting for a K-type REPLY).  For
        # a blocking attempt the EGP asks us to skip this — the poll would
        # provably find it still blocked, and its REPLY handler re-arms
        # polling in every branch (as does the reply watchdog on loss).
        if not response.skip_followup_poll:
            self.notify_work(self._attempt_window_end)
        else:
            self._engine.note_elided(f"{self.name}.followup_poll")


@dataclass
class _PendingGen:
    """A GEN frame waiting at the midpoint for its counterpart."""

    frame: GenMessage
    received_at: float
    timed_out: bool = False
    #: Handle of the match-window timeout, cancelled once the peer arrives.
    timeout: Optional[EventHandle] = None


class MidpointHeraldingService(Protocol):
    """Heralding station service matching GEN frames and issuing REPLYs.

    Parameters
    ----------
    engine:
        Simulation engine.
    scenario:
        Hardware scenario; provides the heralded-state model and cycle time.
    rng:
        Random generator used to sample attempt outcomes.
    match_window:
        How long to wait for the second GEN of a cycle before declaring
        ``NO_MESSAGE_OTHER`` (defaults to two MHP cycles plus the largest
        node-midpoint delay).
    backend:
        Physics backend resolving attempt outcomes; a name, an instance, or
        ``None`` for the environment default (``REPRO_BACKEND``).
    timer_elision:
        Collapse each delayed (batched) REPLY into a single delivery event
        instead of a hand-over timer plus a channel event.  ``False``
        restores the reference two-event pattern (benchmarks, equivalence
        pinning).
    """

    def __init__(self, engine: SimulationEngine, scenario: ScenarioConfig,
                 rng: Optional[np.random.Generator] = None,
                 match_window: Optional[float] = None,
                 backend: "PhysicsBackend | str | None" = None,
                 timer_elision: bool = True) -> None:
        from repro.backends import get_backend

        super().__init__(engine, name="Midpoint")
        self.scenario = scenario
        self.backend = get_backend(backend)
        self.rng = rng if rng is not None else np.random.default_rng()
        timing = scenario.timing
        if match_window is None:
            match_window = (2 * timing.mhp_cycle
                            + max(timing.midpoint_delay_a,
                                  timing.midpoint_delay_b))
        self.match_window = match_window
        self.timer_elision = bool(timer_elision)
        self._match_timeout_name = f"{self.name}.match_timeout"
        self._batched_reply_name = f"{self.name}.batched_reply"
        self._channels: dict[str, ClassicalChannel] = {}
        self._pending: dict[int, _PendingGen] = {}
        self._sequence = 0
        #: Optional optical-switch gate (set by ``repro.topology`` for
        #: switched multi-link networks): a callable
        #: ``(now, batch, stride, cycle_time) -> int``.  A positive return
        #: is how many attempts of the window starting *now* reach the
        #: heralding optics; a return ``<= 0`` means the switch is serving
        #: another link — its magnitude is the number of attempts until
        #: this link's slot next opens, and that many attempts (capped at
        #: the window) fail deterministically.  Burning only up to the slot
        #: boundary (instead of the whole window) keeps the next GEN
        #: aligned with the link's active slot — fixed-size fast-forward
        #: windows could otherwise phase-lock into a peer's slot and starve.
        self.attempt_gate = None
        self.statistics = {
            "attempts": 0,
            "successes": 0,
            "queue_mismatches": 0,
            "unmatched": 0,
        }
        #: Optional :class:`repro.obs.Tracer`; ``None`` keeps emission a
        #: single ``is not None`` check (zero-cost default).
        self.tracer = None

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def attach_channel(self, node_name: str, channel: ClassicalChannel) -> None:
        """Register the channel used to send REPLYs to ``node_name``."""
        self._channels[node_name] = channel

    @property
    def sequence(self) -> int:
        """Current midpoint sequence number (number of successes so far)."""
        return self._sequence

    def receive(self, frame: object) -> None:
        """Entry point for GEN frames arriving from either node."""
        if not isinstance(frame, GenMessage):
            raise TypeError(f"unexpected midpoint frame {type(frame).__name__}")
        self._handle_gen(frame)

    # ------------------------------------------------------------------ #
    # GEN matching
    # ------------------------------------------------------------------ #
    def _handle_gen(self, frame: GenMessage) -> None:
        pending = self._pending.get(frame.cycle)
        if pending is None:
            record = _PendingGen(frame=frame, received_at=self.now)
            record.timeout = self.call_after(
                self.match_window, self._expire_pending,
                args=(frame.cycle,), name=self._match_timeout_name)
            self._pending[frame.cycle] = record
            return
        if pending.frame.origin == frame.origin:
            # Duplicate from the same node (e.g. after retransmission): keep
            # the newer frame and continue waiting for the peer.
            pending.frame = frame
            pending.received_at = self.now
            return
        del self._pending[frame.cycle]
        if pending.timeout is not None:
            pending.timeout.cancel()
        self._process_pair(pending.frame, frame)

    def _expire_pending(self, cycle: int) -> None:
        pending = self._pending.pop(cycle, None)
        if pending is None:
            return
        self.statistics["unmatched"] += 1
        frame = pending.frame
        if self.tracer is not None:
            self.tracer.event(self.now, f"{self.name}.cycle", cycle=cycle,
                              outcome="unmatched", origin=frame.origin)
        reply = MHPReply(outcome=0, sequence=self._sequence,
                         queue_id=frame.queue_id, peer_queue_id=None,
                         error=MHPError.NO_MESSAGE_OTHER, cycle=cycle)
        self._send_reply(frame.origin, reply)

    def _process_pair(self, first: GenMessage, second: GenMessage) -> None:
        frame_a = first if first.origin == "A" else second
        frame_b = second if first.origin == "A" else first
        self.statistics["attempts"] += 1
        cycle = frame_a.cycle
        if frame_a.queue_id != frame_b.queue_id:
            self.statistics["queue_mismatches"] += 1
            if self.tracer is not None:
                self.tracer.event(self.now, f"{self.name}.cycle", cycle=cycle,
                                  outcome="queue_mismatch")
            for frame, peer in ((frame_a, frame_b), (frame_b, frame_a)):
                reply = MHPReply(outcome=0, sequence=self._sequence,
                                 queue_id=frame.queue_id,
                                 peer_queue_id=peer.queue_id,
                                 error=MHPError.QUEUE_MISMATCH, cycle=cycle)
                self._send_reply(frame.origin, reply)
            return

        model = self.backend.attempt_model(self.scenario, frame_a.alpha)
        batch = max(1, min(frame_a.batch_size, frame_b.batch_size))
        stride = max(1, min(frame_a.cycle_stride, frame_b.cycle_stride))
        cycle_time = self.scenario.timing.mhp_cycle

        if self.attempt_gate is not None:
            allowed = int(self.attempt_gate(self.now, batch, stride,
                                            cycle_time))
            if allowed <= 0:
                burn = min(batch, max(1, -allowed))
                attempts_used, sample = burn, _gated_sample()
            else:
                attempts_used, sample = model.resolve(self.rng,
                                                      min(batch, allowed))
        else:
            attempts_used, sample = model.resolve(self.rng, batch)
        self.statistics["attempts"] += attempts_used - 1  # first one counted above

        # The successful (or last) attempt happens attempts_used - 1 attempt
        # strides after the first one; replies leave the station then.
        reply_emit_delay = (attempts_used - 1) * stride * cycle_time

        pair: Optional[EntangledPair] = None
        outcome_code = 0
        if sample.success:
            outcome_code = sample.outcome_code
            self._sequence += 1
            self.statistics["successes"] += 1
            pair = EntangledPair(state=sample.state,
                                 heralded_bell=sample.bell_index,
                                 created_at=self.now + reply_emit_delay,
                                 midpoint_sequence=self._sequence)
        if self.tracer is not None:
            self.tracer.event(
                self.now, f"{self.name}.cycle", cycle=cycle,
                outcome="success" if sample.success else "fail",
                attempts=attempts_used,
                **({"sequence": self._sequence} if sample.success else {}))
        for frame, peer in ((frame_a, frame_b), (frame_b, frame_a)):
            reply = MHPReply(outcome=outcome_code, sequence=self._sequence,
                             queue_id=frame.queue_id,
                             peer_queue_id=peer.queue_id,
                             error=MHPError.NONE, cycle=cycle, pair=pair,
                             attempts_used=attempts_used,
                             cycle_stride=stride)
            self._send_reply(frame.origin, reply, delay=reply_emit_delay)

    def _send_reply(self, node_name: str, reply: MHPReply,
                    delay: float = 0.0) -> None:
        channel = self._channels.get(node_name)
        if channel is None:
            raise RuntimeError(f"no channel registered for node {node_name}")
        if self.timer_elision:
            # One event per delayed reply (delivery at delay + channel
            # delay) instead of an intermediate hand-over event per window.
            if delay > 0:
                self._engine.note_elided(self._batched_reply_name)
            channel.send_delayed(reply, delay)
        elif delay <= 0:
            channel.send(reply)
        else:
            self.call_after(delay, channel.send, args=(reply,),
                            name=self._batched_reply_name)
