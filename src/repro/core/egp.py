"""Entanglement Generation Protocol (EGP) — the link layer (paper Section 5.2).

The EGP turns the physical layer's entanglement attempts into the robust
service defined in Section 4.1: higher layers submit CREATE requests and
receive OK messages (with entanglement identifiers and goodness estimates) or
error messages (UNSUPP, TIMEOUT, OUTOFMEM, MEMEXCEEDED, DENIED, EXPIRE).

One EGP instance runs at each controllable node.  Its building blocks are the
distributed queue (agreement on which request to serve), the quantum memory
manager (qubit allocation), the fidelity estimation unit (translating F_min
into generation parameters) and a scheduling strategy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.distributed_queue import DistributedQueue, QueueItem
from repro.core.feu import FidelityEstimationUnit
from repro.core.messages import (
    AbsoluteQueueId,
    EntanglementId,
    EntanglementRequest,
    ErrorCode,
    ErrorMessage,
    ExpireAck,
    ExpireNotice,
    MHPError,
    MHPReply,
    OkMessage,
    PollResponse,
    RequestType,
)
from repro.core.mhp import NodeMHP
from repro.core.qmm import QuantumMemoryManager, QubitAllocation
from repro.core.scheduler import SchedulingStrategy
from repro.hardware.nv_device import NVQuantumProcessor
from repro.hardware.pair import EntangledPair
from repro.hardware.parameters import ScenarioConfig
from repro.quantum.fidelity import qber_from_fidelity_werner
from repro.sim.channel import ClassicalChannel
from repro.sim.engine import SimulationEngine
from repro.sim.entity import Protocol

#: Measurement bases cycled through for measure-directly requests when the
#: request does not pin a basis.  Indexed by the midpoint sequence number so
#: that both nodes pick the same basis without extra communication.
_MEASURE_BASES = ("X", "Y", "Z")


@dataclass
class _InFlightAttempt:
    """Book-keeping for an attempt whose REPLY is still outstanding."""

    cycle: int
    queue_id: AbsoluteQueueId
    create_id: int
    request_type: RequestType
    alpha: float
    pair_index: int
    allocation: Optional[QubitAllocation]
    started_at: float
    #: Granted batch size and attempt stride (cycles between attempts).
    batch: int = 1
    stride: int = 1
    #: Handle of the reply watchdog, cancelled when the REPLY arrives.
    watchdog: Optional[object] = None


@dataclass
class _PendingExpire:
    """An EXPIRE notice awaiting acknowledgement from the peer."""

    notice: ExpireNotice
    retries: int = 0


class EGP(Protocol):
    """Link-layer Entanglement Generation Protocol for one node.

    Parameters
    ----------
    engine, node_name, peer_name:
        Simulation engine and the names of this node and its peer.
    scenario:
        Hardware scenario configuration.
    device:
        This node's NV quantum processor.
    mhp:
        The node-side MHP instance (physical layer).
    dqp:
        This node's end of the distributed queue.
    feu:
        Fidelity estimation unit.
    scheduler:
        Scheduling strategy (FCFS or WFQ variants).
    rng:
        Random generator (measurement sampling).
    emission_multiplexing:
        Allow measure-directly attempts in every MHP cycle without waiting for
        the previous REPLY (Section 5.2.5).
    elide_watchdog:
        Skip scheduling the per-attempt lost-REPLY watchdog.  ``None``
        (default) elides exactly when ``frame_loss_probability == 0`` — the
        REPLY provably arrives, so the watchdog would always be cancelled
        unfired; outcomes are bit-identical with and without it.
    timer_elision:
        Skip scheduling GEN/REPLY polls that would provably answer "no"
        (see the attribute docstring).  ``False`` restores the reference
        scheduling pattern.
    """

    #: Retransmission interval and limit for EXPIRE notices.
    EXPIRE_RETRY_INTERVAL = 5e-3
    EXPIRE_MAX_RETRIES = 10

    def __init__(self, engine: SimulationEngine, node_name: str, peer_name: str,
                 scenario: ScenarioConfig, device: NVQuantumProcessor,
                 mhp: NodeMHP, dqp: DistributedQueue,
                 feu: FidelityEstimationUnit, scheduler: SchedulingStrategy,
                 rng: Optional[np.random.Generator] = None,
                 emission_multiplexing: bool = True,
                 attempt_batch_size: int = 1,
                 backend=None,
                 elide_watchdog: Optional[bool] = None,
                 timer_elision: bool = True) -> None:
        from repro.backends import get_backend

        super().__init__(engine, name=f"EGP-{node_name}")
        self.node_name = node_name
        self.peer_name = peer_name
        self.scenario = scenario
        self.backend = get_backend(backend)
        self.device = device
        self.mhp = mhp
        self.dqp = dqp
        self.feu = feu
        self.scheduler = scheduler
        self.rng = rng if rng is not None else np.random.default_rng()
        self.emission_multiplexing = emission_multiplexing
        if attempt_batch_size < 1:
            raise ValueError(f"attempt_batch_size must be >= 1, "
                             f"got {attempt_batch_size}")
        self.attempt_batch_size = attempt_batch_size
        self.qmm = QuantumMemoryManager(device)
        #: Reply-watchdog elision (the ROADMAP's named hot-path item): when
        #: the classical channels cannot lose frames the REPLY provably
        #: arrives, so the per-attempt lost-REPLY watchdog would always be
        #: scheduled and then cancelled — pure event churn.  Outcomes are
        #: bit-identical either way (pinned in tier-1); pass
        #: ``elide_watchdog=False`` to force the reference behaviour.
        if elide_watchdog is None:
            elide_watchdog = scenario.classical.frame_loss_probability == 0.0
        self.elide_watchdog = bool(elide_watchdog)
        #: Timer elision for the GEN/REPLY hot path: skip scheduling polls
        #: that would provably answer "no" — the MHP's follow-up poll while
        #: a blocking attempt is in flight, and the post-REPLY poll that
        #: lands before the next K attempt may start.  Outcome-preserving:
        #: every state change that could make an earlier poll useful
        #: (item added, pair delivered, storage released, REPLY, watchdog)
        #: schedules its own poll.  ``False`` restores the reference
        #: scheduling pattern (used by benchmarks and equivalence tests).
        self.timer_elision = bool(timer_elision)
        #: granted_batch is pure in (request type, batch, multiplexing,
        #: timing, loss) and all but the type are fixed per EGP — cache it.
        self._grant_cache: dict[RequestType, object] = {}
        #: At most one blocking attempt is in flight at a time, so a single
        #: reusable timer serves every reply watchdog without allocating.
        self._watchdog_timer = engine.timer(
            self._reply_watchdog, name=f"{self.name}.reply_watchdog")
        self._request_timeout_name = f"{self.name}.request_timeout"
        self._expire_retry_name = f"{self.name}.expire_retry"

        # Wiring into the MHP and DQP.
        self.mhp.poll_callback = self.handle_poll
        self.mhp.reply_callback = self.handle_reply
        self.dqp.on_item_added = self._on_queue_item_added

        self._peer_channel: Optional[ClassicalChannel] = None
        self._inflight: dict[int, _InFlightAttempt] = {}
        self._blocking_cycle: Optional[int] = None
        self._busy_until = 0.0
        #: Earliest time the next K-type attempt may start.  Derived from the
        #: attempt cycle plus the scenario's K attempt spacing so that both
        #: nodes independently compute the same value and stay aligned on the
        #: same MHP cycle despite their different reply delays.
        self._next_keep_attempt_time = 0.0
        self._expected_sequence = 1
        self._keep_attempt_time_since_reinit = 0.0
        self._pending_expires: dict[int, _PendingExpire] = {}
        self._expire_counter = 0

        #: Higher-layer callbacks.
        self.ok_listeners: list[Callable[[OkMessage], None]] = []
        self.error_listeners: list[Callable[[ErrorMessage], None]] = []

        #: Optional :class:`repro.obs.Tracer`; ``None`` keeps every
        #: emission a single ``is not None`` check (zero-cost default).
        self.tracer = None

        self.statistics = {
            "creates_accepted": 0,
            "creates_rejected": 0,
            "oks_issued": 0,
            "errors_issued": 0,
            "expires_sent": 0,
            "expires_received": 0,
            "attempts": 0,
            "successes": 0,
            "allocation_failures": 0,
            "lost_reply_recoveries": 0,
            "timeouts": 0,
        }

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def attach_peer_channel(self, channel: ClassicalChannel) -> None:
        """Set the classical channel used for EGP<->EGP messages (EXPIRE)."""
        self._peer_channel = channel

    def receive_peer(self, message: object) -> None:
        """Entry point for EGP-level messages from the peer node."""
        if isinstance(message, ExpireNotice):
            self._handle_expire_notice(message)
        elif isinstance(message, ExpireAck):
            self._handle_expire_ack(message)
        else:
            raise TypeError(f"unexpected EGP message {type(message).__name__}")

    def add_ok_listener(self, callback: Callable[[OkMessage], None]) -> None:
        """Register a higher-layer callback for OK messages."""
        self.ok_listeners.append(callback)

    def add_error_listener(self, callback: Callable[[ErrorMessage], None]) -> None:
        """Register a higher-layer callback for error messages."""
        self.error_listeners.append(callback)

    # ------------------------------------------------------------------ #
    # Higher-layer API
    # ------------------------------------------------------------------ #
    def create(self, request: EntanglementRequest) -> int:
        """Submit a CREATE request (Section 4.1.1).

        Returns the create id; completion or failure is reported through the
        OK / error listeners.
        """
        request.origin = self.node_name
        request.create_time = self.now
        if not request.remote_node_id:
            request.remote_node_id = self.peer_name

        estimate = self.feu.estimate_for_fidelity(request.min_fidelity,
                                                  request.request_type)
        if estimate is None:
            self._reject(request, ErrorCode.UNSUPP,
                         detail="requested fidelity unattainable")
            return request.create_id
        if request.max_time > 0:
            min_completion = estimate.minimum_completion_time(request.number)
            if min_completion > request.max_time:
                self._reject(request, ErrorCode.UNSUPP,
                             detail=f"needs ~{min_completion:.3f}s "
                                    f"> max_time {request.max_time}s")
                return request.create_id

        pairs_simultaneously = request.number if request.atomic else 1
        memory_error = self.qmm.can_satisfy(request.request_type,
                                            pairs_simultaneously)
        if memory_error is ErrorCode.MEMEXCEEDED:
            self._reject(request, ErrorCode.MEMEXCEEDED,
                         detail="atomic request exceeds quantum memory")
            return request.create_id

        schedule_cycle = self._schedule_cycle_for_new_request()
        timeout_cycle = None
        if request.max_time > 0:
            timeout_cycle = self.mhp.next_cycle_at_or_after(
                self.now + request.max_time)
        self.dqp.add(request, schedule_cycle, timeout_cycle,
                     callback=lambda item, error, req=request:
                     self._on_add_resolved(req, item, error))
        return request.create_id

    def release_delivered_pair(self, logical_qubit_id: int) -> None:
        """Free the storage qubit of a delivered pair (called by higher layer)."""
        self.qmm.release_storage(logical_qubit_id)
        if self.timer_elision and self.dqp.total_length() == 0:
            # Nothing resident to serve: the poll would provably answer
            # "no", and any future add schedules its own poll
            # (``_on_queue_item_added``).
            self._engine.note_elided(f"{self.name}.release_poll")
            return
        self.mhp.notify_work()

    # ------------------------------------------------------------------ #
    # CREATE handling internals
    # ------------------------------------------------------------------ #
    def _schedule_cycle_for_new_request(self) -> int:
        """Earliest MHP cycle at which both nodes can know about the request."""
        delay = self.scenario.classical.node_to_node_delay
        # Two-way handshake of the DQP plus one cycle of margin.
        earliest = self.now + 2 * delay + self.scenario.timing.mhp_cycle
        return self.mhp.next_cycle_at_or_after(earliest)

    def _on_add_resolved(self, request: EntanglementRequest,
                         item: Optional[QueueItem],
                         error: Optional[ErrorCode]) -> None:
        if error is not None:
            code = error
            if code is ErrorCode.DENIED:
                detail = "peer refused the request"
            elif code is ErrorCode.REJECTED:
                detail = "distributed queue full"
            else:
                detail = "could not enqueue request in time"
            self._reject(request, code, detail=detail)
            return
        self.statistics["creates_accepted"] += 1

    def _on_queue_item_added(self, item: QueueItem) -> None:
        cycle = self.mhp.current_cycle()
        if self.tracer is not None:
            self.tracer.event(self.now, f"{self.name}.enqueue",
                              queue_id=list(item.queue_id),
                              depth=self.dqp.total_length())
        self.scheduler.on_enqueue(item, cycle)
        if item.timeout_cycle is not None:
            timeout_time = self.mhp.cycle_start(item.timeout_cycle)
            self.call_at(max(timeout_time, self.now), self._handle_timeout,
                         args=(item.queue_id,),
                         name=self._request_timeout_name)
        start_time = self.mhp.cycle_start(item.schedule_cycle)
        self.mhp.notify_work(not_before=start_time)

    def _reject(self, request: EntanglementRequest, error: ErrorCode,
                detail: str = "") -> None:
        self.statistics["creates_rejected"] += 1
        self._emit_error(ErrorMessage(create_id=request.create_id, error=error,
                                      origin=request.origin,
                                      purpose_id=request.purpose_id,
                                      detail=detail))

    def _handle_timeout(self, queue_id: AbsoluteQueueId) -> None:
        item = self.dqp.get(queue_id)
        if item is None or item.pairs_remaining <= 0:
            return
        self.dqp.remove(queue_id)
        self.statistics["timeouts"] += 1
        if self.timer_elision:
            # A removal can change the scheduler's choice; a poll deferred
            # past the K attempt spacing on the removed item's account must
            # not starve the new selection, so wake the MHP (a no-op poll
            # at worst).
            self.mhp.notify_work()
        if item.request.origin == self.node_name:
            self._emit_error(ErrorMessage(create_id=item.request.create_id,
                                          error=ErrorCode.TIMEOUT,
                                          origin=self.node_name,
                                          purpose_id=item.request.purpose_id,
                                          detail="request deadline exceeded"))

    # ------------------------------------------------------------------ #
    # MHP poll handling (the scheduler's "trigger pair" step)
    # ------------------------------------------------------------------ #
    def handle_poll(self) -> PollResponse:
        """Answer the MHP's poll for this cycle (paper Protocol 2, step 2)."""
        now = self.now
        if now < self._busy_until:
            self.mhp.notify_work(not_before=self._busy_until)
            return PollResponse.no_attempt()
        cycle = self.mhp.current_cycle()
        if self._blocking_cycle is not None:
            return PollResponse.no_attempt()

        ready = self.dqp.ready_items(cycle)
        if not ready:
            if self.timer_elision:
                # Busy-poll elision: the queue's incremental ready cache
                # already knows the earliest cycle at which a waiting item
                # crosses its schedule/suspension threshold (valid right
                # after the ``ready_items`` call above).  Poll exactly
                # then — an unacknowledged item needs no poll until its
                # ACK arrives, and that ACK schedules its own poll
                # (``_on_queue_item_added``), so ``inf`` means stop.
                watermark = self.dqp.next_ready_change()
                if math.isfinite(watermark):
                    self.mhp.notify_work(
                        not_before=self.mhp.cycle_start(int(watermark)) +
                        self.scenario.timing.mhp_cycle)
                else:
                    self._engine.note_elided(f"{self.name}.busy_poll")
                return PollResponse.no_attempt()
            # Reference pattern: if items are merely waiting for their
            # schedule cycle, make sure the MHP polls again when the earliest
            # one becomes ready (avoids a dead stop on rounding edge cases).
            pending = [item.schedule_cycle
                       for queue in self.dqp.queues.values()
                       for item in queue.items_in_order()
                       if item.pairs_remaining > 0]
            if pending:
                self.mhp.notify_work(
                    not_before=self.mhp.cycle_start(min(pending)) +
                    self.scenario.timing.mhp_cycle)
            return PollResponse.no_attempt()
        item = self.scheduler.select(ready, cycle)
        if item is None:
            return PollResponse.no_attempt()
        request = item.request
        if (request.request_type is RequestType.KEEP
                and now < self._next_keep_attempt_time - 1e-15):
            self.mhp.notify_work(not_before=self._next_keep_attempt_time)
            return PollResponse.no_attempt()

        allocation: Optional[QubitAllocation] = None
        if request.request_type is RequestType.KEEP:
            allocation = self.qmm.allocate(RequestType.KEEP)
            if allocation is None:
                self.statistics["allocation_failures"] += 1
                # Memory is temporarily unavailable: retry a little later.
                self.mhp.notify_work(
                    not_before=now + 10 * self.scenario.timing.mhp_cycle)
                return PollResponse.no_attempt()
        else:
            if self.qmm.free_communication_qubits() < 1:
                self.statistics["allocation_failures"] += 1
                self.mhp.notify_work(
                    not_before=now + 10 * self.scenario.timing.mhp_cycle)
                return PollResponse.no_attempt()

        estimate = item.metadata.get("feu_estimate")
        if estimate is None:
            estimate = self.feu.estimate_for_fidelity(request.min_fidelity,
                                                      request.request_type)
            item.metadata["feu_estimate"] = estimate
        if estimate is None:
            # Hardware drifted since admission; reject now.
            self.dqp.remove(item.queue_id)
            if request.origin == self.node_name:
                self._reject(request, ErrorCode.UNSUPP,
                             detail="fidelity became unattainable")
            if allocation is not None:
                self.qmm.release(allocation)
            return PollResponse.no_attempt()

        # Batching policy belongs to the physics backend: the exact backend
        # never goes beyond the configured batch size, while the analytic
        # backend widens the window so runs of failed cycles resolve in O(1)
        # events (Section 5.1 batched operation).
        grant = self._grant_cache.get(request.request_type)
        if grant is None:
            grant = self.backend.granted_batch(
                request.request_type, self.attempt_batch_size,
                self.emission_multiplexing, self.scenario.timing,
                frame_loss_probability=(
                    self.scenario.classical.frame_loss_probability))
            self._grant_cache[request.request_type] = grant
        attempt = _InFlightAttempt(
            cycle=cycle,
            queue_id=item.queue_id,
            create_id=request.create_id,
            request_type=request.request_type,
            alpha=estimate.alpha,
            pair_index=item.pairs_delivered + 1,
            allocation=allocation,
            started_at=now,
            batch=grant.batch,
            stride=grant.stride,
        )
        self._inflight[cycle] = attempt
        self.statistics["attempts"] += 1
        if self.tracer is not None:
            self.tracer.counter(f"{self.name}.attempts")

        blocking = (request.request_type is RequestType.KEEP
                    or not self.emission_multiplexing)
        if blocking:
            self._blocking_cycle = cycle
            if not self.elide_watchdog:
                attempt.watchdog = self._schedule_reply_watchdog(cycle, grant)
            else:
                self._engine.note_elided(f"{self.name}.reply_watchdog")
        if request.request_type is RequestType.KEEP:
            # Deterministic spacing of K attempts (t_attempt / r_attempt of
            # Section 4.4): both nodes derive the earliest next attempt from
            # the attempt's cycle, not from when their own REPLY arrives, so
            # their trigger cycles remain synchronised.  For batches the
            # next attempt may start one spacing after the batch's last
            # attempt (shortened again in handle_reply when the REPLY
            # reports an earlier success).
            timing = self.scenario.timing
            if grant.stride == 1:
                spacing = max(timing.attempt_spacing_k,
                              grant.batch * timing.mhp_cycle)
            else:
                spacing = ((grant.batch - 1) * grant.stride * timing.mhp_cycle
                           + timing.attempt_spacing_k)
            self._next_keep_attempt_time = self.mhp.cycle_start(cycle) + spacing

        return PollResponse(
            attempt=True,
            queue_id=item.queue_id,
            request_type=request.request_type,
            alpha=estimate.alpha,
            pair_index=attempt.pair_index,
            measure_basis=request.measure_basis or "Z",
            create_id=request.create_id,
            max_attempts=grant.batch,
            attempt_stride=grant.stride,
            skip_followup_poll=blocking and self.timer_elision,
        )

    def _reply_sync_time(self, reply: MHPReply) -> float:
        """Deterministic scheduling floor for ``reply`` (never its arrival).

        See :meth:`MHPReply.sync_close_time`: both nodes compute the same
        value, so post-REPLY scheduling stays aligned; the cost is that the
        nearer node idles for the delay asymmetry before its next attempt.
        """
        return max(self.now, reply.sync_close_time(self.scenario.timing))

    def _notify_after_reply(self, sync: float,
                            include_busy: bool = False) -> None:
        """Re-arm MHP polling after a REPLY, eliding provably useless polls.

        With timer elision on, the poll is deferred past (a) the device
        busy window — ``handle_poll`` would answer "no" and re-arm at
        ``_busy_until`` anyway — and (b) the K attempt spacing, when the
        scheduler's current choice at the upcoming poll is a keep-type item
        that may not start before ``_next_keep_attempt_time`` (the
        ``keep_spacing`` early-exit would re-arm at exactly that time).
        Both checks replicate the poll's own logic on the same state;
        anything that changes that state before the deferred poll
        (enqueue, delivery, release, another REPLY) schedules its own
        poll, so no wake-up is ever lost.
        """
        not_before = max(self._busy_until, sync) if include_busy else sync
        if self.timer_elision:
            if self._busy_until > not_before:
                not_before = self._busy_until
            nka = self._next_keep_attempt_time
            poll_time = self.mhp.next_poll_time(not_before)
            if nka > poll_time + 1e-15:
                # Preview at the cycle the poll would actually run in, so
                # items whose schedule cycle starts between now and the
                # poll are visible exactly as the poll would see them.
                # The ready tuple is identity-stable between mutations, so
                # the scheduler's memoised selection answers in O(1) on
                # the repeat lookups of a busy lane.
                cycle = self.mhp.next_cycle_at_or_after(poll_time)
                ready = self.dqp.ready_items(cycle)
                if ready:
                    item = self.scheduler.select(ready, cycle)
                    if (item is not None
                            and item.request.request_type is RequestType.KEEP):
                        not_before = max(not_before, nka)
        self.mhp.notify_work(not_before=not_before)

    def _account_carbon_reinitialisation(self, attempts: int,
                                         base_time: float) -> None:
        """Model the periodic carbon re-initialisation overhead for K attempts.

        The carbon memory must be re-initialised for ``carbon_reinit_duration``
        every ``carbon_reinit_period`` of attempt time (Section D.3.3), which
        is what makes E ~= 1.1 for K requests in the Lab scenario.
        """
        gates = self.scenario.gates
        self._keep_attempt_time_since_reinit += (
            attempts * self.scenario.timing.mhp_cycle)
        while self._keep_attempt_time_since_reinit >= gates.carbon_reinit_period:
            self._keep_attempt_time_since_reinit -= gates.carbon_reinit_period
            self._busy_until = max(self._busy_until,
                                   base_time + gates.carbon_reinit_duration)

    def _schedule_reply_watchdog(self, cycle: int, grant=None):
        timing = self.scenario.timing
        cycles = 1 if grant is None else grant.cycles
        deadline = (2 * max(timing.midpoint_delay_a, timing.midpoint_delay_b)
                    + (cycles + 20) * timing.mhp_cycle)
        return self._watchdog_timer.arm_after(deadline, args=(cycle,))

    def _reply_watchdog(self, cycle: int) -> None:
        """Recover from a REPLY that never arrived (lost classical frame)."""
        attempt = self._inflight.pop(cycle, None)
        if attempt is None:
            return
        self.statistics["lost_reply_recoveries"] += 1
        if self._blocking_cycle == cycle:
            self._blocking_cycle = None
        if attempt.allocation is not None:
            self.qmm.release(attempt.allocation)
        self.mhp.notify_work()

    # ------------------------------------------------------------------ #
    # MHP reply handling
    # ------------------------------------------------------------------ #
    def handle_reply(self, reply: MHPReply) -> None:
        """Process a RESULT forwarded by the MHP (paper Protocol 2, step 3)."""
        # All post-REPLY scheduling is floored at the deterministic sync
        # time so that both nodes pick the same next attempt cycle despite
        # their different reply delays (see _reply_sync_time).
        sync = self._reply_sync_time(reply)
        attempt = self._inflight.pop(reply.cycle, None)
        if self._blocking_cycle == reply.cycle:
            self._blocking_cycle = None
        if attempt is not None and attempt.watchdog is not None:
            attempt.watchdog.cancel()
            attempt.watchdog = None
        if attempt is not None and attempt.request_type is RequestType.KEEP:
            self._account_carbon_reinitialisation(reply.attempts_used, sync)
            if attempt.batch > 1:
                # Batched K window: the REPLY pins down which attempt of the
                # window succeeded (or that all failed), so the next attempt
                # may start one spacing after that attempt instead of after
                # the whole granted window.  Derived from REPLY fields only,
                # so both nodes stay synchronised.
                timing = self.scenario.timing
                attempt_time = (self.mhp.cycle_start(attempt.cycle)
                                + (reply.attempts_used - 1) * attempt.stride
                                * timing.mhp_cycle)
                self._next_keep_attempt_time = (attempt_time
                                                + timing.attempt_spacing_k)

        if reply.error is not MHPError.NONE:
            if attempt is not None and attempt.allocation is not None:
                self.qmm.release(attempt.allocation)
            self._notify_after_reply(sync)
            return

        if not reply.success:
            if attempt is not None and attempt.allocation is not None:
                self.qmm.release(attempt.allocation)
            self._notify_after_reply(sync)
            return

        item = self.dqp.get(reply.queue_id) if reply.queue_id else None
        if attempt is None or item is None or reply.pair is None:
            # No local record: the request expired locally, or state is
            # inconsistent.  Free resources and let the peer know the pair is
            # unusable (Protocol 2, step 3(b)).
            if attempt is not None and attempt.allocation is not None:
                self.qmm.release(attempt.allocation)
            self._expected_sequence = reply.sequence + 1
            if reply.queue_id is not None:
                self._send_expire(reply.queue_id,
                                  create_id=attempt.create_id if attempt else 0,
                                  low=reply.sequence, high=reply.sequence)
            self._notify_after_reply(sync)
            return

        # Sequence-number processing (Protocol 2, step 3(c)iii).
        if reply.sequence > self._expected_sequence:
            self._emit_error(ErrorMessage(
                create_id=item.request.create_id, error=ErrorCode.EXPIRE,
                origin=self.node_name, purpose_id=item.request.purpose_id,
                sequence_low=self._expected_sequence,
                sequence_high=reply.sequence - 1,
                detail="missed midpoint sequence numbers"))
            self._send_expire(item.queue_id, item.request.create_id,
                              low=self._expected_sequence,
                              high=reply.sequence - 1)
            self._expected_sequence = reply.sequence + 1
            if attempt.allocation is not None:
                self.qmm.release(attempt.allocation)
            self._notify_after_reply(sync)
            return
        if reply.sequence < self._expected_sequence:
            if attempt.allocation is not None:
                self.qmm.release(attempt.allocation)
            self._notify_after_reply(sync)
            return
        self._expected_sequence = reply.sequence + 1
        self.statistics["successes"] += 1

        pair: EntangledPair = reply.pair
        if item.request.request_type is RequestType.KEEP:
            # K requests hold the electron until the REPLY arrives, so it
            # decoheres during the round trip.  M requests measure the
            # communication qubit right after photon emission (Section 5.1.2),
            # long before the REPLY, so no waiting decay applies.
            self._apply_reply_wait_decay(pair, attempt)
        self._apply_correction_if_needed(pair, reply, item)

        request = item.request
        if request.max_time > 0 and self.now > request.create_time + request.max_time:
            # Too late: the deadline passed while the attempt was in flight.
            self._handle_timeout(item.queue_id)
            if attempt.allocation is not None:
                self.qmm.release(attempt.allocation)
            self._notify_after_reply(sync)
            return

        if request.request_type is RequestType.KEEP:
            ok = self._deliver_keep(pair, attempt, item, busy_from=sync)
        else:
            ok = self._deliver_measure(pair, attempt, item, reply,
                                       busy_from=sync)

        item.pairs_remaining -= 1
        item.pairs_delivered += 1
        self.scheduler.on_pair_delivered(item, reply.cycle)

        if request.consecutive:
            self._emit_ok(ok)
        else:
            pending = item.metadata.setdefault("pending_oks", [])
            pending.append(ok)
            if item.pairs_remaining <= 0:
                for buffered in pending:
                    self._emit_ok(buffered)
                pending.clear()

        if item.pairs_remaining <= 0:
            self.dqp.remove(item.queue_id)
        self._notify_after_reply(sync, include_busy=True)

    # ------------------------------------------------------------------ #
    # Pair delivery helpers
    # ------------------------------------------------------------------ #
    def _apply_reply_wait_decay(self, pair: EntangledPair,
                                attempt: _InFlightAttempt) -> None:
        """Electron decoherence while the REPLY travelled back from H."""
        elapsed = self.now - pair.created_at
        if elapsed <= 0:
            return
        slot = (attempt.allocation.communication if attempt.allocation
                else self.device.slots[0])
        self.device.apply_idle_decay(pair, slot, elapsed)

    def _apply_correction_if_needed(self, pair: EntangledPair,
                                    reply: MHPReply, item: QueueItem) -> None:
        """Convert |Psi-> into |Psi+> at the request origin (Eq. 13)."""
        if reply.outcome == 2:
            if item.request.origin == self.node_name:
                self.device.apply_correction(pair)
                pair.corrected = True
        else:
            pair.corrected = True

    def _deliver_keep(self, pair: EntangledPair, attempt: _InFlightAttempt,
                      item: QueueItem,
                      busy_from: Optional[float] = None) -> OkMessage:
        assert attempt.allocation is not None and attempt.allocation.storage is not None
        duration = self.device.move_to_memory(pair,
                                              attempt.allocation.communication,
                                              attempt.allocation.storage)
        base = self.now if busy_from is None else busy_from
        self._busy_until = max(self._busy_until, base + duration)
        goodness = self.feu.goodness(attempt.alpha, RequestType.KEEP)
        request = item.request
        ok = OkMessage(
            create_id=request.create_id,
            entanglement_id=EntanglementId("A", "B", pair.midpoint_sequence),
            purpose_id=request.purpose_id,
            remote_node_id=request.remote_node_id,
            origin=request.origin,
            goodness=goodness,
            goodness_time=self.now,
            create_time=request.create_time,
            logical_qubit_id=attempt.allocation.storage.qubit_id,
            pair_index=attempt.pair_index,
            total_pairs=request.number,
            request_type=RequestType.KEEP,
        )
        ok.pair = pair  # simulation-only handle for instrumentation
        return ok

    def _deliver_measure(self, pair: EntangledPair, attempt: _InFlightAttempt,
                         item: QueueItem, reply: MHPReply,
                         busy_from: Optional[float] = None) -> OkMessage:
        request = item.request
        basis = request.measure_basis
        if basis is None:
            basis = _MEASURE_BASES[pair.midpoint_sequence % len(_MEASURE_BASES)]
        outcome = self.device.measure_pair(pair, basis)
        base = self.now if busy_from is None else busy_from
        self._busy_until = max(self._busy_until,
                               base + self.device.readout_duration())
        fidelity_estimate = self.feu.goodness(attempt.alpha, RequestType.MEASURE)
        goodness = qber_from_fidelity_werner(fidelity_estimate)
        if attempt.allocation is not None:
            self.qmm.release(attempt.allocation)
        ok = OkMessage(
            create_id=request.create_id,
            entanglement_id=EntanglementId("A", "B", pair.midpoint_sequence),
            purpose_id=request.purpose_id,
            remote_node_id=request.remote_node_id,
            origin=request.origin,
            goodness=goodness,
            goodness_time=self.now,
            create_time=request.create_time,
            measurement_outcome=outcome,
            measurement_basis=basis,
            pair_index=attempt.pair_index,
            total_pairs=request.number,
            request_type=RequestType.MEASURE,
        )
        ok.pair = pair  # simulation-only handle for instrumentation
        return ok

    # ------------------------------------------------------------------ #
    # EXPIRE handling
    # ------------------------------------------------------------------ #
    def _send_expire(self, queue_id: AbsoluteQueueId, create_id: int,
                     low: int, high: int) -> None:
        if self._peer_channel is None:
            return
        self.statistics["expires_sent"] += 1
        self._expire_counter += 1
        notice = ExpireNotice(origin=self.node_name, create_id=create_id,
                              queue_id=queue_id,
                              expected_sequence=self._expected_sequence,
                              sequence_low=low, sequence_high=high)
        pending = _PendingExpire(notice=notice)
        key = self._expire_counter
        self._pending_expires[key] = pending
        self._transmit_expire(key)

    def _transmit_expire(self, key: int) -> None:
        pending = self._pending_expires.get(key)
        if pending is None or self._peer_channel is None:
            return
        self._peer_channel.send(pending.notice)
        pending.retries += 1
        if pending.retries <= self.EXPIRE_MAX_RETRIES:
            self.call_after(self.EXPIRE_RETRY_INTERVAL, self._retry_expire,
                            args=(key,), name=self._expire_retry_name)
        else:
            del self._pending_expires[key]

    def _retry_expire(self, key: int) -> None:
        if key in self._pending_expires:
            self._transmit_expire(key)

    def _handle_expire_notice(self, notice: ExpireNotice) -> None:
        self.statistics["expires_received"] += 1
        # Align the expected sequence number with the peer and revoke any OKs
        # in the affected range by notifying the higher layer.
        self._expected_sequence = max(self._expected_sequence,
                                      notice.expected_sequence)
        self._emit_error(ErrorMessage(create_id=notice.create_id,
                                      error=ErrorCode.EXPIRE,
                                      origin=notice.origin,
                                      sequence_low=notice.sequence_low,
                                      sequence_high=notice.sequence_high,
                                      detail="peer expired entanglement"))
        if self._peer_channel is not None:
            self._peer_channel.send(ExpireAck(
                origin=self.node_name, queue_id=notice.queue_id,
                expected_sequence=self._expected_sequence))

    def _handle_expire_ack(self, ack: ExpireAck) -> None:
        for key, pending in list(self._pending_expires.items()):
            if pending.notice.queue_id == ack.queue_id:
                del self._pending_expires[key]

    # ------------------------------------------------------------------ #
    # Emission helpers
    # ------------------------------------------------------------------ #
    def _emit_ok(self, ok: OkMessage) -> None:
        self.statistics["oks_issued"] += 1
        if self.tracer is not None:
            # No create_id: it comes from a process-global counter, so it
            # would break trace determinism across runs in one process.
            self.tracer.event(self.now, f"{self.name}.ok",
                              pair_index=ok.pair_index,
                              goodness=ok.goodness,
                              queue_depth=self.dqp.total_length())
        for listener in list(self.ok_listeners):
            listener(ok)

    def _emit_error(self, error: ErrorMessage) -> None:
        self.statistics["errors_issued"] += 1
        if self.tracer is not None:
            self.tracer.event(self.now, f"{self.name}.error",
                              error=error.error.name)
        for listener in list(self.error_listeners):
            listener(error)

    # ------------------------------------------------------------------ #
    # Introspection used by tests and metrics
    # ------------------------------------------------------------------ #
    @property
    def expected_sequence(self) -> int:
        """Next midpoint sequence number this node expects."""
        return self._expected_sequence

    def queue_length(self) -> int:
        """Current number of outstanding requests in the local queues."""
        return self.dqp.total_length()
