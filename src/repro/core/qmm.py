"""Quantum Memory Manager (QMM) — paper Section 4.5 and 5.2.2.

The QMM owns the mapping between logical qubit identifiers used by the EGP
and the physical qubit slots of the node's NV device.  The EGP asks it for a
communication qubit (to run an attempt) and, for create-and-keep requests,
a storage qubit to move the electron state into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.messages import ErrorCode, RequestType
from repro.hardware.nv_device import (
    NVQuantumProcessor,
    OutOfQubitsError,
    QubitRole,
    QubitSlot,
)


@dataclass
class QubitAllocation:
    """Qubits reserved for one entanglement attempt."""

    communication: QubitSlot
    storage: Optional[QubitSlot] = None

    @property
    def storage_qubit_id(self) -> Optional[int]:
        """Physical id of the storage qubit, if one was reserved."""
        return self.storage.qubit_id if self.storage is not None else None


class QuantumMemoryManager:
    """Allocates physical qubits of an NV device on behalf of the EGP.

    Parameters
    ----------
    device:
        The node's quantum processor.
    """

    def __init__(self, device: NVQuantumProcessor) -> None:
        self.device = device
        self.allocation_failures = 0

    # ------------------------------------------------------------------ #
    # Capacity queries
    # ------------------------------------------------------------------ #
    def free_communication_qubits(self) -> int:
        """Number of currently free communication qubits."""
        return len(self.device.free_slots(QubitRole.COMMUNICATION))

    def free_storage_qubits(self) -> int:
        """Number of currently free memory (storage) qubits."""
        return len(self.device.free_slots(QubitRole.MEMORY))

    def total_storage_qubits(self) -> int:
        """Total number of memory qubits in the device."""
        return sum(1 for slot in self.device.slots
                   if slot.role is QubitRole.MEMORY)

    def can_satisfy(self, request_type: RequestType,
                    pairs_simultaneously: int = 1) -> Optional[ErrorCode]:
        """Check whether the device can ever / currently serve a request.

        Returns ``None`` when the request can proceed, ``MEMEXCEEDED`` when
        the device is permanently too small (atomic request for more pairs
        than memory qubits exist), or ``OUTOFMEM`` when memory is only
        temporarily unavailable.
        """
        if request_type is RequestType.MEASURE:
            return None
        if pairs_simultaneously > self.total_storage_qubits():
            return ErrorCode.MEMEXCEEDED
        if self.free_storage_qubits() < 1:
            return ErrorCode.OUTOFMEM
        return None

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def allocate(self, request_type: RequestType) -> Optional[QubitAllocation]:
        """Reserve the qubits needed for one attempt of the given type.

        Measure-directly attempts only need the communication qubit;
        create-and-keep attempts additionally reserve a storage qubit.
        Returns ``None`` (and counts a failure) when the reservation cannot
        be satisfied right now.
        """
        try:
            communication = self.device.reserve(QubitRole.COMMUNICATION)
        except OutOfQubitsError:
            self.allocation_failures += 1
            return None
        storage: Optional[QubitSlot] = None
        if request_type is RequestType.KEEP:
            try:
                storage = self.device.reserve(QubitRole.MEMORY)
            except OutOfQubitsError:
                self.device.release(communication)
                self.allocation_failures += 1
                return None
        return QubitAllocation(communication=communication, storage=storage)

    def release(self, allocation: QubitAllocation,
                keep_storage: bool = False) -> None:
        """Release an allocation.

        ``keep_storage=True`` keeps the storage qubit reserved (it now holds
        a delivered pair owned by the higher layer) and frees only the
        communication qubit.
        """
        self.device.release(allocation.communication)
        if allocation.storage is not None and not keep_storage:
            self.device.release(allocation.storage)

    def release_storage(self, qubit_id: int) -> None:
        """Free a storage qubit previously handed to the higher layer."""
        slot = self.device.slot_by_id(qubit_id)
        self.device.release(slot)

    def logical_to_physical(self, logical_id: int) -> int:
        """Translate a logical qubit id to a physical one.

        The NV model uses the identity mapping; redundant encodings would
        override this.
        """
        return logical_id
