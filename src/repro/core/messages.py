"""Message and request types exchanged between the layers (paper Appendix E).

Every packet format of the paper's Appendix E has a dataclass counterpart
here.  We keep them as plain Python objects rather than byte strings: the
evaluation studies protocol behaviour, not wire encoding.  Field names follow
the packet diagrams (Figures 24, 27, 28, 31-39).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import NamedTuple, Optional

from repro.quantum.states import BellIndex


class RequestType(Enum):
    """CREATE request type: create-and-keep (K) or create-and-measure (M)."""

    KEEP = "K"
    MEASURE = "M"


class Priority(IntEnum):
    """Request priorities used by the scheduler (lower value = higher priority).

    The paper uses three priorities, one per use case: network layer (NL),
    create-and-keep applications (CK) and measure-directly applications (MD).
    """

    NL = 1
    CK = 2
    MD = 3


class ErrorCode(Enum):
    """Error conditions the EGP can report to higher layers (Section 4.1.2)."""

    TIMEOUT = "TIMEOUT"
    UNSUPP = "UNSUPP"
    MEMEXCEEDED = "MEMEXCEEDED"
    OUTOFMEM = "OUTOFMEM"
    DENIED = "DENIED"
    EXPIRE = "EXPIRE"
    NOTIME = "NOTIME"
    REJECTED = "REJECTED"


class MHPError(Enum):
    """Errors reported by the MHP / midpoint (paper Protocol 1)."""

    NONE = "OK"
    GEN_FAIL = "GEN_FAIL"
    QUEUE_MISMATCH = "QUEUE_MISMATCH"
    TIME_MISMATCH = "TIME_MISMATCH"
    NO_MESSAGE_OTHER = "NO_MESSAGE_OTHER"


class EntanglementId(NamedTuple):
    """Network-unique identifier of an entangled pair (Section 4.1.2).

    Composed of the two node identifiers and the midpoint sequence number, as
    produced by the EGP when it issues the OK.
    """

    node_a: str
    node_b: str
    sequence: int


class AbsoluteQueueId(NamedTuple):
    """Absolute queue id (queue number, sequence within queue) — paper (j, i_j)."""

    queue_id: int
    queue_seq: int


_create_id_counter = itertools.count(1)


def next_create_id() -> int:
    """Monotonically increasing identifier for CREATE requests."""
    return next(_create_id_counter)


@dataclass
class EntanglementRequest:
    """A CREATE request from the higher layer (Section 4.1.1, Figure 31).

    Parameters
    ----------
    remote_node_id:
        The peer with whom entanglement is desired.
    request_type:
        ``RequestType.KEEP`` (store) or ``RequestType.MEASURE`` (measure
        directly).
    number:
        Number of entangled pairs requested.
    atomic:
        All pairs must be available simultaneously.
    consecutive:
        Issue an OK per generated pair (typical for the NL use case) instead
        of a single OK when the whole request completes.
    max_time:
        Maximum time in seconds the requester will wait (0 = no limit).
    purpose_id:
        Application tag, analogous to a port number.
    priority:
        Scheduling priority (NL/CK/MD).
    min_fidelity:
        Minimum acceptable fidelity of each delivered pair.
    origin:
        Name of the node at which the request was submitted.
    measure_basis:
        Optional fixed measurement basis for M requests; ``None`` selects a
        random basis per pair (as in the paper's MD workload).
    """

    remote_node_id: str
    request_type: RequestType = RequestType.KEEP
    number: int = 1
    atomic: bool = False
    consecutive: bool = False
    max_time: float = 0.0
    purpose_id: int = 0
    priority: Priority = Priority.CK
    min_fidelity: float = 0.5
    origin: str = ""
    measure_basis: Optional[str] = None
    create_id: int = field(default_factory=next_create_id)
    #: Timestamp the EGP stamped on submission (filled in by the EGP).
    create_time: float = 0.0

    def __post_init__(self) -> None:
        if self.number < 1:
            raise ValueError(f"number of pairs must be >= 1, got {self.number}")
        if not 0.0 <= self.min_fidelity <= 1.0:
            raise ValueError(f"min_fidelity {self.min_fidelity} not in [0, 1]")
        if self.max_time < 0:
            raise ValueError(f"max_time must be >= 0, got {self.max_time}")
        if isinstance(self.request_type, str):
            self.request_type = RequestType(self.request_type)
        if not isinstance(self.priority, Priority):
            self.priority = Priority(self.priority)

    @property
    def is_measure_directly(self) -> bool:
        """True for M (measure) requests."""
        return self.request_type is RequestType.MEASURE


@dataclass
class OkMessage:
    """OK returned to the higher layer per delivered pair or request
    (Section 4.1.2, Figures 37-38)."""

    create_id: int
    entanglement_id: EntanglementId
    purpose_id: int
    remote_node_id: str
    origin: str
    #: Goodness: fidelity estimate for K requests, QBER-based estimate for M.
    goodness: float
    goodness_time: float
    create_time: float
    #: Logical qubit holding the local half (K requests only).
    logical_qubit_id: Optional[int] = None
    #: Measurement outcome and basis (M requests only).
    measurement_outcome: Optional[int] = None
    measurement_basis: Optional[str] = None
    #: Which pair of the request this OK corresponds to (1-based).
    pair_index: int = 1
    #: Total number of pairs requested.
    total_pairs: int = 1
    request_type: RequestType = RequestType.KEEP

    @property
    def is_final(self) -> bool:
        """True when this OK completes its request."""
        return self.pair_index >= self.total_pairs


@dataclass
class ErrorMessage:
    """ERR returned to the higher layer (Figure 39)."""

    create_id: int
    error: ErrorCode
    origin: str
    purpose_id: int = 0
    #: Range of midpoint sequence numbers affected by an EXPIRE, if any.
    sequence_low: Optional[int] = None
    sequence_high: Optional[int] = None
    detail: str = ""


@dataclass
class ExpireNotice:
    """EXPIRE message exchanged between peer EGPs (Figure 32)."""

    origin: str
    create_id: int
    queue_id: AbsoluteQueueId
    #: Sender's up-to-date expected midpoint sequence number.
    expected_sequence: int
    #: Range of sequence numbers whose OKs must be revoked.
    sequence_low: int = 0
    sequence_high: int = 0


@dataclass
class ExpireAck:
    """Acknowledgement of an EXPIRE notice (Figure 33)."""

    origin: str
    queue_id: AbsoluteQueueId
    expected_sequence: int


# --------------------------------------------------------------------------- #
# MHP <-> EGP and MHP <-> midpoint messages
# --------------------------------------------------------------------------- #
@dataclass
class PollResponse:
    """EGP response to an MHP poll (paper Figure 35).

    ``attempt`` is False when the EGP has nothing to generate this cycle.
    """

    attempt: bool
    queue_id: Optional[AbsoluteQueueId] = None
    request_type: RequestType = RequestType.KEEP
    alpha: float = 0.0
    #: Pair number within the request (for bookkeeping/diagnostics).
    pair_index: int = 0
    #: Measurement basis to use for M requests.
    measure_basis: str = "Z"
    #: Whether this attempt is a fidelity-estimation test round.
    test_round: bool = False
    create_id: Optional[int] = None
    #: Number of consecutive MHP cycles the physical layer may attempt for
    #: this request without polling again (batched operation, Section 5.1).
    max_attempts: int = 1
    #: MHP cycles between consecutive attempts of the granted batch (1 for
    #: every-cycle attempts; > 1 for K requests whose attempt spacing spans
    #: several cycles).
    attempt_stride: int = 1
    #: Timer elision (see ``EGP.timer_elision``): the attempt blocks the EGP
    #: until its REPLY, so the MHP's usual follow-up poll at the window end
    #: would provably find the EGP still blocked and do nothing — the REPLY
    #: handler re-arms polling in every branch.  The MHP skips scheduling it.
    skip_followup_poll: bool = False

    @classmethod
    def no_attempt(cls) -> "PollResponse":
        """A "no" poll response."""
        return cls(attempt=False)


@dataclass
class GenMessage:
    """GEN frame sent from a node MHP to the heralding midpoint (Figure 27)."""

    origin: str
    queue_id: AbsoluteQueueId
    cycle: int
    alpha: float
    timestamp: float
    #: Number of consecutive attempts covered by this frame (batching).
    batch_size: int = 1
    #: MHP cycles between consecutive attempts of the batch.
    cycle_stride: int = 1


@dataclass
class MHPReply:
    """REPLY frame from the midpoint and the RESULT passed up to the EGP
    (Figures 28 and 36)."""

    outcome: int                       # 0 = failure, 1 = |Psi+>, 2 = |Psi->
    sequence: int                      # midpoint sequence number
    queue_id: Optional[AbsoluteQueueId]
    peer_queue_id: Optional[AbsoluteQueueId]
    error: MHPError = MHPError.NONE
    cycle: int = 0
    #: Simulation-level handle to the heralded pair (success only).
    pair: Optional[object] = None
    #: Number of attempts consumed by this reply (1 unless batched).
    attempts_used: int = 1
    #: MHP cycles between the attempts this reply covers (from the GEN).
    cycle_stride: int = 1

    def sync_close_time(self, timing) -> float:
        """Deterministic time by which both nodes have seen this REPLY.

        Derived from the REPLY *contents* (attempt cycle, attempts used,
        stride) plus the known link delays of ``timing``, never from the
        local arrival time: the two replies of one exchange arrive at
        different times on asymmetric links, and any scheduling decision
        based on arrival time would put the nodes' next attempt windows on
        different MHP cycles — their GEN frames would then miss each other
        at the midpoint.  Both the node MHP (attempt-window close) and the
        EGP (post-REPLY scheduling floor) use this one formula so the
        alignment can never drift between the two layers.
        """
        max_delay = max(timing.midpoint_delay_a, timing.midpoint_delay_b)
        resolved = ((self.attempts_used - 1) * max(1, self.cycle_stride)
                    * timing.mhp_cycle)
        return self.cycle * timing.mhp_cycle + resolved + 2 * max_delay

    @property
    def success(self) -> bool:
        """True when entanglement was heralded."""
        return self.error is MHPError.NONE and self.outcome in (1, 2)

    @property
    def bell_index(self) -> Optional[BellIndex]:
        """Heralded Bell state for successful replies."""
        if self.outcome == 1:
            return BellIndex.PSI_PLUS
        if self.outcome == 2:
            return BellIndex.PSI_MINUS
        return None


# --------------------------------------------------------------------------- #
# Distributed queue (DQP) frames
# --------------------------------------------------------------------------- #
@dataclass
class QueueAdd:
    """ADD frame of the distributed queue protocol (Figure 24)."""

    origin: str
    comm_seq: int
    queue_id: int
    queue_seq: Optional[int]
    request: EntanglementRequest
    schedule_cycle: int
    timeout_cycle: Optional[int]
    initial_virtual_finish: float = 0.0


@dataclass
class QueueAck:
    """ACK frame of the distributed queue protocol."""

    origin: str
    comm_seq: int
    queue_id: int
    queue_seq: int


@dataclass
class QueueReject:
    """REJ frame of the distributed queue protocol."""

    origin: str
    comm_seq: int
    queue_id: int
    reason: ErrorCode = ErrorCode.DENIED
