"""Fidelity Estimation Unit (FEU) — paper Section 5.2.3 and Appendix B.

The FEU answers two questions for the EGP:

1. *Forward*: given a requested minimum fidelity ``F_min``, which bright-state
   population ``alpha`` should the physical layer use, and how long will one
   pair take to produce?  A larger ``alpha`` gives a higher success
   probability but a lower fidelity, so the FEU picks the largest ``alpha``
   whose *delivered* fidelity estimate still meets ``F_min``.

2. *Backward*: what is the "goodness" (fidelity estimate) of a pair that was
   just delivered?  The baseline estimate comes from the hardware model; it is
   refined by interspersed test rounds whose measured QBER feeds a moving
   window estimate (Appendix B).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.messages import RequestType
from repro.hardware.parameters import ScenarioConfig
from repro.quantum.fidelity import fidelity_from_qber
from repro.quantum.states import BellIndex


@dataclass(frozen=True)
class FidelityEstimate:
    """FEU answer to a minimum-fidelity query."""

    alpha: float
    expected_fidelity: float
    success_probability: float
    expected_time_per_pair: float

    def minimum_completion_time(self, number_of_pairs: int) -> float:
        """Expected time to deliver ``number_of_pairs`` pairs."""
        return self.expected_time_per_pair * number_of_pairs


@dataclass
class TestRoundRecord:
    """Outcome of one interspersed test round."""

    basis: str
    outcome_a: int
    outcome_b: int
    target: BellIndex

    @property
    def is_error(self) -> bool:
        """Whether the pair of outcomes violates the expected correlation."""
        from repro.quantum.fidelity import BELL_CORRELATIONS

        correlation = BELL_CORRELATIONS[self.target][self.basis.upper()]
        equal = self.outcome_a == self.outcome_b
        return equal if correlation < 0 else not equal


class FidelityEstimationUnit:
    """Maps fidelity targets to generation parameters and back.

    Parameters
    ----------
    scenario:
        Hardware scenario (Lab or QL2020) whose heralded-state model is used.
    alpha_grid:
        Bright-state populations to tabulate.
    test_window:
        Number of recent test rounds used for the measured QBER estimate.
    test_round_fraction:
        Probability ``q`` that an attempt is turned into a test round.
    """

    #: Safety margin between the requested F_min and the heralded fidelity at
    #: the chosen operating point.  A platform-wide constant, so that the same
    #: F_min maps to the same alpha on every scenario (the paper fixes the
    #: generation parameters per F_min and observes different delivered
    #: fidelities on Lab and QL2020).
    HERALDED_FIDELITY_MARGIN = 0.08
    #: How far below F_min the *delivered* fidelity estimate may fall before
    #: the request is declared unsupported.
    DELIVERED_FIDELITY_TOLERANCE = 0.03

    def __init__(self, scenario: ScenarioConfig,
                 alpha_grid: Optional[np.ndarray] = None,
                 test_window: int = 256,
                 test_round_fraction: float = 0.0,
                 backend=None) -> None:
        from repro.backends import get_backend

        self.scenario = scenario
        self.backend = get_backend(backend)
        if alpha_grid is None:
            alpha_grid = np.linspace(0.02, 0.60, 30)
        self.alpha_grid = np.asarray(alpha_grid, dtype=float)
        if np.any(self.alpha_grid <= 0) or np.any(self.alpha_grid > 1):
            raise ValueError("alpha grid values must lie in (0, 1]")
        self.test_window = test_window
        self.test_round_fraction = test_round_fraction
        self._table: dict[RequestType, list[tuple[float, float, float, float]]] = {}
        self._test_rounds: deque[TestRoundRecord] = deque(maxlen=test_window)
        self._build_tables()

    # ------------------------------------------------------------------ #
    # Hardware-model based estimates
    # ------------------------------------------------------------------ #
    def _build_tables(self) -> None:
        # A cohort-shared backend (repro.backends.vectorized) exposes a
        # table cache: the grid is pure function of (scenario, alpha grid),
        # and building it — per-alpha delivered-fidelity einsum chains — is
        # the dominant per-run setup cost, so every FEU of a cohort reuses
        # the first member's table.  The rows are immutable tuples; the
        # FEU only ever reads them.
        cache = getattr(self.backend, "feu_table_cache", None)
        cache_key = None
        if cache is not None:
            cache_key = (self.scenario, tuple(map(float, self.alpha_grid)))
            cached = cache.get(cache_key)
            if cached is not None:
                self._table = cached
                return
        for request_type in (RequestType.KEEP, RequestType.MEASURE):
            rows = []
            for alpha in self.alpha_grid:
                model = self.backend.attempt_model(self.scenario, float(alpha))
                heralded = model.average_success_fidelity()
                delivered = model.delivered_fidelity(request_type)
                rows.append((float(alpha), heralded, delivered,
                             model.success_probability))
            self._table[request_type] = rows
        if cache is not None:
            cache[cache_key] = self._table

    def estimate_for_fidelity(self, min_fidelity: float,
                              request_type: RequestType) -> Optional[FidelityEstimate]:
        """Largest-``alpha`` operating point meeting ``min_fidelity``.

        The operating point must satisfy both conditions:

        * heralded fidelity >= ``min_fidelity`` + :attr:`HERALDED_FIDELITY_MARGIN`
          (the platform-wide parameter selection rule), and
        * delivered fidelity >= ``min_fidelity`` -
          :attr:`DELIVERED_FIDELITY_TOLERANCE` (so that storage-heavy request
          types stop being supported at lower F_min than measure-directly
          ones, as in Figure 6(b)).

        Returns ``None`` when the requested fidelity is unattainable on this
        hardware (the EGP then rejects the request with UNSUPP).
        """
        if not 0.0 <= min_fidelity <= 1.0:
            raise ValueError(f"min_fidelity {min_fidelity} not in [0, 1]")
        rows = self._table[request_type]
        feasible = [
            row for row in rows
            if (row[1] >= min_fidelity + self.HERALDED_FIDELITY_MARGIN
                and row[2] >= min_fidelity - self.DELIVERED_FIDELITY_TOLERANCE)
        ]
        if not feasible:
            return None
        # Highest alpha (fastest generation) that still meets the target.
        alpha, _heralded, delivered, p_succ = max(feasible,
                                                  key=lambda row: row[0])
        return FidelityEstimate(
            alpha=alpha,
            expected_fidelity=delivered,
            success_probability=p_succ,
            expected_time_per_pair=self._time_per_pair(p_succ, request_type),
        )

    def goodness(self, alpha: float, request_type: RequestType) -> float:
        """Baseline fidelity estimate for pairs generated at ``alpha``.

        Uses linear interpolation of the hardware-model table, blended with
        the measured test-round estimate when test data is available.
        """
        rows = self._table[request_type]
        alphas = np.array([row[0] for row in rows])
        fidelities = np.array([row[2] for row in rows])
        baseline = float(np.interp(alpha, alphas, fidelities))
        measured = self.measured_fidelity()
        if measured is None:
            return baseline
        # Blend: trust the measurement in proportion to how full the window is.
        weight = min(len(self._test_rounds) / self.test_window, 1.0)
        return float((1.0 - weight) * baseline + weight * measured)

    def success_probability(self, alpha: float,
                            request_type: RequestType) -> float:
        """Interpolated heralding success probability at ``alpha``."""
        rows = self._table[request_type]
        alphas = np.array([row[0] for row in rows])
        probabilities = np.array([row[3] for row in rows])
        return float(np.interp(alpha, alphas, probabilities))

    def _time_per_pair(self, success_probability: float,
                       request_type: RequestType) -> float:
        timing = self.scenario.timing
        if request_type is RequestType.MEASURE:
            spacing = timing.attempt_spacing_m
            expected_cycles = timing.expected_cycles_per_attempt_m
        else:
            spacing = timing.attempt_spacing_k
            expected_cycles = timing.expected_cycles_per_attempt_k
        per_attempt = max(spacing, expected_cycles * timing.mhp_cycle)
        if success_probability <= 0:
            return math.inf
        return per_attempt / success_probability

    # ------------------------------------------------------------------ #
    # Test rounds (Appendix B)
    # ------------------------------------------------------------------ #
    def record_test_round(self, basis: str, outcome_a: int, outcome_b: int,
                          target: BellIndex = BellIndex.PSI_PLUS) -> None:
        """Record the outcomes of one interspersed test round."""
        self._test_rounds.append(TestRoundRecord(basis=basis.upper(),
                                                 outcome_a=outcome_a,
                                                 outcome_b=outcome_b,
                                                 target=target))

    def measured_qber(self) -> Optional[dict[str, float]]:
        """QBER per basis over the test-round window, or ``None`` if no data."""
        if not self._test_rounds:
            return None
        qber = {}
        for basis in ("X", "Y", "Z"):
            rounds = [r for r in self._test_rounds if r.basis == basis]
            if not rounds:
                return None
            qber[basis] = sum(r.is_error for r in rounds) / len(rounds)
        return qber

    def measured_fidelity(self) -> Optional[float]:
        """Fidelity estimate from the test-round QBERs (Eq. 16)."""
        qber = self.measured_qber()
        if qber is None:
            return None
        return fidelity_from_qber(qber)

    @property
    def test_rounds_recorded(self) -> int:
        """Number of test rounds currently in the window."""
        return len(self._test_rounds)
