"""Cohort-shared analytic backend — the vectorized scenario-batching engine.

One :class:`VectorizedAnalyticBackend` instance is shared by every member of
a :class:`repro.runtime.batch.CohortRunner` cohort.  Cohort members keep
their own per-member RNG streams (``SeedSequence.spawn``-derived, identical
to a solo run), so the *draws* cannot be batched across members without
changing results — instead the backend batches everything deterministic that
members have in common:

* **Shared closed-form tables.**  FEU fidelity tables
  (:meth:`repro.core.feu.FidelityEstimationUnit._build_tables`) are the
  dominant per-run setup cost (~0.1 s of einsum chains per run over the
   30-point ``alpha`` grid).  The backend exposes :attr:`feu_table_cache`;
  every FEU built against it computes each ``(scenario, alpha grid)`` table
  once and all cohort members reuse it.
* **Memoized contraction chains.**  Device noise on a delivered pair is a
  chain of deterministic 4x4 contractions applied to one of a handful of
  herald states.  States are stamped with a *chain key* (equal keys ⟺
  bitwise-equal matrices, maintained inductively: herald states of one
  attempt model share a key, and each ``(op, in-key, params)`` step maps to
  a recorded output).  A repeated step serves a copy of the recorded matrix
  instead of re-running the einsums; the first occurrence always runs the
  inherited scalar code, so every matrix any member observes is bit-identical
  to the solo analytic path.
* **Identical randomness.**  Sampling still consumes the member's generator
  exactly as :class:`repro.backends.analytic.AnalyticAttemptModel` does (the
  POVM ``rng.choice`` call included) — memoization only replaces the
  deterministic matrix arithmetic around the draws.

The backend reports ``name == "analytic"`` because its results *are* the
analytic backend's results; cohort provenance is recorded separately on
``ScenarioOutcome.cohort``.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.backends.analytic import AnalyticBackend, _side_index

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import HeraldSample
    from repro.hardware.pair import EntangledPair
    from repro.hardware.parameters import CoherenceTimes, ScenarioConfig


class _TaggedAttemptModel:
    """Delegating wrapper that stamps herald states with chain keys.

    All herald states an :class:`AnalyticAttemptModel` emits for one outcome
    code are copies of the same conditional matrix, so they share one chain
    key — the root of every memoized contraction chain.
    """

    __slots__ = ("inner", "_key_by_code")

    def __init__(self, inner, key_minus: int, key_plus: int) -> None:
        self.inner = inner
        self._key_by_code = {2: key_minus, 1: key_plus}

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def _tag(self, sample: "HeraldSample") -> "HeraldSample":
        if sample.state is not None:
            sample.state._ckey = self._key_by_code[sample.outcome_code]
        return sample

    def sample(self, rng: np.random.Generator) -> "HeraldSample":
        return self._tag(self.inner.sample(rng))

    def resolve(self, rng: np.random.Generator,
                max_attempts: int) -> tuple[int, "HeraldSample"]:
        attempt, sample = self.inner.resolve(rng, max_attempts)
        return attempt, self._tag(sample)


class _MeasureEntry:
    """Memoized POVM distribution plus lazily-recorded collapsed branches."""

    __slots__ = ("probabilities", "total", "count", "post")

    def __init__(self, probabilities: np.ndarray, total: float,
                 count: int) -> None:
        self.probabilities = probabilities
        self.total = total
        self.count = count
        #: outcome -> (chain key, normalised post-measurement matrix)
        self.post: dict[int, tuple[int, np.ndarray]] = {}


class VectorizedAnalyticBackend(AnalyticBackend):
    """Analytic backend with cohort-shared tables and memoized pair physics.

    Parameters mirror :class:`AnalyticBackend`; ``max_cache_entries`` bounds
    each memo table (overflow clears the table — chains simply restart from
    fresh keys, so correctness never depends on retention).
    """

    def __init__(self, fast_forward: bool = True,
                 max_window_seconds: float = 10e-3,
                 max_cache_entries: int = 16384) -> None:
        super().__init__(fast_forward=fast_forward,
                         max_window_seconds=max_window_seconds)
        #: Consulted by FidelityEstimationUnit._build_tables: maps
        #: (scenario, alpha-grid tuple) -> completed table dict.
        self.feu_table_cache: dict = {}
        self._keys = itertools.count(1)
        self._models: dict[tuple, _TaggedAttemptModel] = {}
        self._chain_cache: dict[tuple, tuple[int, np.ndarray]] = {}
        self._measure_cache: dict[tuple, _MeasureEntry] = {}
        self._max_cache_entries = int(max_cache_entries)

    # ------------------------------------------------------------------ #
    # Heralding
    # ------------------------------------------------------------------ #
    def attempt_model(self, scenario: "ScenarioConfig",
                      alpha: float) -> _TaggedAttemptModel:
        key = (scenario, float(alpha))
        model = self._models.get(key)
        if model is None:
            inner = super().attempt_model(scenario, float(alpha))
            model = _TaggedAttemptModel(inner, next(self._keys),
                                        next(self._keys))
            self._models[key] = model
        return model

    # ------------------------------------------------------------------ #
    # Memoized pair physics
    # ------------------------------------------------------------------ #
    def _serve(self, pair: "EntangledPair", key: tuple) -> bool:
        """Replay a recorded chain step onto ``pair`` if one exists."""
        hit = self._chain_cache.get(key)
        if hit is None:
            return False
        out_key, matrix = hit
        # Always a copy: tagged states own their buffers, so the in-place
        # coherence scaling of the inherited ops can never corrupt a
        # recorded matrix.
        pair.state.update_matrix(matrix.copy())
        pair.state._ckey = out_key
        return True

    def _remember(self, pair: "EntangledPair", key: tuple) -> None:
        if len(self._chain_cache) >= self._max_cache_entries:
            self._chain_cache.clear()
        out_key = next(self._keys)
        self._chain_cache[key] = (out_key, pair.state.matrix.copy())
        pair.state._ckey = out_key

    def apply_t1t2(self, pair: "EntangledPair", side: str,
                   coherence: "CoherenceTimes", duration: float) -> None:
        in_key = getattr(pair.state, "_ckey", None)
        if in_key is None:
            super().apply_t1t2(pair, side, coherence, duration)
            return
        key = ("t1t2", in_key, side, coherence.t1, coherence.t2, duration)
        if self._serve(pair, key):
            return
        super().apply_t1t2(pair, side, coherence, duration)
        self._remember(pair, key)

    def apply_depolarizing(self, pair: "EntangledPair", side: str,
                           fidelity: float) -> None:
        in_key = getattr(pair.state, "_ckey", None)
        if in_key is None:
            super().apply_depolarizing(pair, side, fidelity)
            return
        key = ("depol", in_key, side, fidelity)
        if self._serve(pair, key):
            return
        super().apply_depolarizing(pair, side, fidelity)
        self._remember(pair, key)

    def apply_dephasing(self, pair: "EntangledPair", side: str,
                        probability: float) -> None:
        in_key = getattr(pair.state, "_ckey", None)
        if in_key is None:
            super().apply_dephasing(pair, side, probability)
            return
        key = ("deph", in_key, side, probability)
        if self._serve(pair, key):
            return
        super().apply_dephasing(pair, side, probability)
        self._remember(pair, key)

    def apply_correction(self, pair: "EntangledPair", side: str,
                         gate_fidelity: float) -> None:
        in_key = getattr(pair.state, "_ckey", None)
        if in_key is None:
            super().apply_correction(pair, side, gate_fidelity)
            return
        key = ("corr", in_key, side, gate_fidelity)
        if self._serve(pair, key):
            return
        super().apply_correction(pair, side, gate_fidelity)
        self._remember(pair, key)

    def measure_pair(self, pair: "EntangledPair", side: str, basis: str,
                     readout_fidelity_0: float, readout_fidelity_1: float,
                     rng: np.random.Generator) -> int:
        in_key = getattr(pair.state, "_ckey", None)
        if in_key is None:
            return super().measure_pair(pair, side, basis,
                                        readout_fidelity_0,
                                        readout_fidelity_1, rng)
        basis = basis.upper()
        key = ("measure", in_key, side, basis, readout_fidelity_0,
               readout_fidelity_1)
        entry = self._measure_cache.get(key)
        if entry is None:
            if len(self._measure_cache) >= self._max_cache_entries:
                self._measure_cache.clear()
            operators = self._measurement_operators(
                _side_index(side), basis, readout_fidelity_0,
                readout_fidelity_1)
            rho = pair.state.matrix
            probabilities = np.array([
                max(float(np.real(np.einsum("ij,ji->", element, rho))), 0.0)
                for _, element in operators])
            total = probabilities.sum()
            if total <= 0:
                raise RuntimeError("POVM probabilities sum to zero")
            entry = _MeasureEntry(probabilities, total, len(operators))
            self._measure_cache[key] = entry
        # Exactly the inherited draw: same call, same distribution, so the
        # member's generator advances identically to a solo run.
        outcome = int(rng.choice(entry.count,
                                 p=entry.probabilities / entry.total))
        post = entry.post.get(outcome)
        if post is None:
            operators = self._measurement_operators(
                _side_index(side), basis, readout_fidelity_0,
                readout_fidelity_1)
            kraus, _ = operators[outcome]
            raw = kraus @ pair.state.matrix @ kraus.conj().T
            norm = float(np.real(np.trace(raw)))
            if norm <= 0:
                raise RuntimeError("POVM produced zero-probability branch")
            post = (next(self._keys), raw / norm)
            entry.post[outcome] = post
        out_key, matrix = post
        pair.state.update_matrix(matrix.copy())
        pair.state._ckey = out_key
        return outcome
