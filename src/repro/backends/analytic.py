"""Closed-form analytic physics backend — the MHP/EGP fast path.

The exact model resolves every entanglement attempt through a full
density-matrix computation (emission Kraus chains, a 16-dimensional joint
state, beam-splitter Kraus operators).  Because every attempt with the same
bright-state population ``alpha`` is statistically identical, all of that
collapses into closed form:

* **Outcome probabilities.**  Photon-arrival probabilities per arm are
  ``q_x = alpha * S_x`` with ``S_x`` the photon survival probability; the
  single-click/two-click/dark-count click distribution of the station then
  follows from elementary probability (paper Appendix D.5).
* **Conditional states.**  The post-herald electron-electron state is a rank-4
  mixture whose entries are closed-form expressions in ``q_x``, the arm
  coherences ``kappa_x`` and the photon overlap ``mu`` — the |01>/|10>
  coherence is ``mu * kappa_A * kappa_B / 2`` with the sign set by which
  detector clicked.  The resulting 4x4 matrices agree with the exact model to
  machine precision (covered by the cross-backend equivalence tests).
* **Fast-forward.**  Failed attempts carry no quantum state, so runs of
  failed cycles are resolved by sampling a geometric "cycles-until-herald"
  count: one GEN/REPLY exchange covers a whole window of attempts in O(1)
  simulation events instead of one event per cycle
  (:meth:`AnalyticBackend.granted_batch`).

Device-side noise (T1/T2, depolarising, dephasing, readout) acts on the same
4x4 pair states through direct tensor contractions instead of the generic
operator-expansion machinery, so the per-pair cost stays small.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.backends.base import (
    AttemptModel,
    BatchGrant,
    HeraldSample,
    PhysicsBackend,
)
from repro.quantum.density import DensityMatrix
from repro.quantum.states import BellIndex, bell_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.messages import RequestType
    from repro.hardware.pair import EntangledPair
    from repro.hardware.parameters import (
        CoherenceTimes,
        OpticalParameters,
        ScenarioConfig,
        TimingParameters,
    )

_FAILURE = HeraldSample(outcome_code=0, state=None)

#: Boolean masks selecting the matrix elements whose row/column bit of one
#: side differ — exactly the coherences a one-sided Z or dephasing touches.
_SIDE_BITS = (np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1]))
_DIFFER_MASK = {
    0: _SIDE_BITS[0][:, None] != _SIDE_BITS[0][None, :],
    1: _SIDE_BITS[1][:, None] != _SIDE_BITS[1][None, :],
}


def _side_index(side: str) -> int:
    return 0 if side.upper() == "A" else 1


def apply_one_sided_channel(state: DensityMatrix, side_index: int,
                            kraus_operators: list[np.ndarray]) -> None:
    """Apply 2x2 Kraus operators to one qubit of a two-qubit state in place.

    Direct tensor contraction — no operator expansion, no validation.
    """
    rho = state.matrix.reshape(2, 2, 2, 2)
    total = None
    for op in kraus_operators:
        if side_index == 0:
            term = np.einsum("ai,ibjc,dj->abdc", op, rho, op.conj())
        else:
            term = np.einsum("bi,aicj,dj->abcd", op, rho, op.conj())
        total = term if total is None else total + term
    state.update_matrix(total.reshape(4, 4))


def _scale_one_sided_coherences(state: DensityMatrix, side_index: int,
                                factor: float) -> None:
    """Multiply the coherences of one side by ``factor`` (dephasing / Z)."""
    matrix = state.matrix
    matrix[_DIFFER_MASK[side_index]] *= factor


def _amplitude_damping_ops(probability: float) -> list[np.ndarray]:
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - probability)]],
                  dtype=complex)
    k1 = np.array([[0.0, math.sqrt(probability)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def _t1t2_parameters(duration: float, t1: float, t2: float,
                     ) -> tuple[float, float]:
    """(relaxation probability, extra dephasing probability) of T1/T2 decay.

    Mirrors :func:`repro.quantum.noise.t1_t2_kraus`: amplitude damping with
    ``1 - exp(-t/T1)`` plus the dephasing that brings the total coherence
    decay to ``exp(-t/T2)``.
    """
    p_relax = 0.0
    if t1 and math.isfinite(t1) and t1 > 0:
        p_relax = 1.0 - math.exp(-duration / t1)
    extra = 0.0
    if t2 and math.isfinite(t2) and t2 > 0:
        exponent = -duration / t2
        if t1 and math.isfinite(t1) and t1 > 0:
            exponent += duration / (2.0 * t1)
        extra = (1.0 - math.exp(min(exponent, 0.0))) / 2.0
    return p_relax, extra


class AnalyticAttemptModel(AttemptModel):
    """Closed-form per-``alpha`` attempt model.

    Precomputes the observable outcome probabilities and the conditional
    post-herald states once; sampling an attempt afterwards costs two random
    numbers at most and never touches the density-matrix machinery.
    """

    def __init__(self, scenario: "ScenarioConfig", alpha: float) -> None:
        self.scenario = scenario
        self.alpha = float(alpha)
        optics_a, optics_b = scenario.optics_a, scenario.optics_b
        qa, kappa_a = self._arm(self.alpha, optics_a)
        qb, kappa_b = self._arm(self.alpha, optics_b)
        mu = math.sqrt(optics_a.visibility)

        # Unnormalised electron-electron matrices of the four ideal
        # beam-splitter branches, basis |eA eB> (|0> = bright).
        lost_a = self.alpha * (1.0 - optics_a.survival_probability())
        lost_b = self.alpha * (1.0 - optics_b.survival_probability())
        dark_a, dark_b = 1.0 - self.alpha, 1.0 - self.alpha
        p00_click = (qa * lost_b + qb * lost_a) / 2.0 \
            + qa * qb * (1.0 + mu * mu) / 4.0
        coherence = mu * kappa_a * kappa_b / 2.0
        branch = {
            "none": self._matrix(lost_a * lost_b, lost_a * dark_b,
                                 dark_a * lost_b, dark_a * dark_b, 0.0),
            "left": self._matrix(p00_click, qa * dark_b / 2.0,
                                 qb * dark_a / 2.0, 0.0, coherence),
            "right": self._matrix(p00_click, qa * dark_b / 2.0,
                                  qb * dark_a / 2.0, 0.0, -coherence),
            "both": self._matrix(qa * qb * (1.0 - mu * mu) / 2.0,
                                 0.0, 0.0, 0.0, 0.0),
        }

        # Mix the ideal branches into observed (left, right) click patterns
        # through detector efficiency and dark counts — the classical part of
        # the station model, identical to the exact backend's.
        p_detection = optics_a.p_detection
        p_dark = optics_a.dark_count_probability()
        pattern: dict[tuple[bool, bool], np.ndarray] = {}
        for label, matrix in branch.items():
            ideal_left = label in ("left", "both")
            ideal_right = label in ("right", "both")
            p_l = p_detection if ideal_left else 0.0
            p_l = p_l + (1.0 - p_l) * p_dark
            p_r = p_detection if ideal_right else 0.0
            p_r = p_r + (1.0 - p_r) * p_dark
            for left in (False, True):
                for right in (False, True):
                    weight = ((p_l if left else 1.0 - p_l)
                              * (p_r if right else 1.0 - p_r))
                    if weight <= 0:
                        continue
                    accumulated = pattern.setdefault(
                        (left, right), np.zeros((4, 4), dtype=complex))
                    accumulated += weight * matrix

        def _conditional(key: tuple[bool, bool],
                         ) -> tuple[float, Optional[np.ndarray]]:
            matrix = pattern.get(key)
            if matrix is None:
                return 0.0, None
            probability = float(np.real(np.trace(matrix)))
            if probability <= 1e-15:
                return max(probability, 0.0), None
            return probability, matrix / probability

        # (left, right) = (False, True) is detector d: |Psi->;
        # (True, False) is detector c: |Psi+> — ordering matches the exact
        # sampler's outcome list [PSI_MINUS, PSI_PLUS, FAILURE].
        self._p_minus, self._state_minus = _conditional((False, True))
        self._p_plus, self._state_plus = _conditional((True, False))
        self._p_success = self._p_minus + self._p_plus

    @staticmethod
    def _arm(alpha: float, optics: "OpticalParameters",
             ) -> tuple[float, float]:
        """(photon-arrival probability, |01>/|10> coherence) of one arm."""
        from repro.quantum.noise import dephasing_probability_from_phase_std

        survival = optics.survival_probability()
        q = alpha * survival
        dephasing = ((1.0 - optics.p_double_emission)
                     * (1.0 - 2.0 * dephasing_probability_from_phase_std(
                         optics.phase_std)))
        kappa = math.sqrt(alpha * (1.0 - alpha) * survival) * dephasing
        return q, kappa

    @staticmethod
    def _matrix(p00: float, p01: float, p10: float, p11: float,
                coherence: float) -> np.ndarray:
        matrix = np.zeros((4, 4), dtype=complex)
        matrix[0, 0], matrix[1, 1] = p00, p01
        matrix[2, 2], matrix[3, 3] = p10, p11
        matrix[1, 2] = matrix[2, 1] = coherence
        return matrix

    # ------------------------------------------------------------------ #
    # Static properties
    # ------------------------------------------------------------------ #
    @property
    def success_probability(self) -> float:
        return self._p_success

    def average_success_fidelity(self,
                                 target: Optional[BellIndex] = None) -> float:
        if self._p_success <= 0:
            return 0.0
        weighted = 0.0
        for probability, state, bell in (
                (self._p_minus, self._state_minus, BellIndex.PSI_MINUS),
                (self._p_plus, self._state_plus, BellIndex.PSI_PLUS)):
            if state is None or probability <= 0:
                continue
            ket = bell_state(target if target is not None else bell)
            weighted += probability * float(
                np.real(ket.conj() @ state @ ket))
        return weighted / self._p_success

    def delivered_fidelity(self, request_type: "RequestType") -> float:
        from repro.core.messages import RequestType
        from repro.quantum.noise import depolarizing_kraus

        if self._p_success <= 0:
            return 0.0
        gates = self.scenario.gates
        timing = self.scenario.timing
        weighted = 0.0
        for probability, matrix, bell in (
                (self._p_minus, self._state_minus, BellIndex.PSI_MINUS),
                (self._p_plus, self._state_plus, BellIndex.PSI_PLUS)):
            if matrix is None or probability <= 0:
                continue
            state = DensityMatrix(matrix.copy(), validate=False)
            for qubit, delay in ((0, timing.midpoint_delay_a),
                                 (1, timing.midpoint_delay_b)):
                if delay > 0:
                    coherence = gates.electron_coherence
                    p_relax, extra = _t1t2_parameters(
                        delay, coherence.t1, coherence.t2)
                    apply_one_sided_channel(
                        state, qubit, _amplitude_damping_ops(p_relax))
                    _scale_one_sided_coherences(state, qubit,
                                                1.0 - 2.0 * extra)
            if request_type is RequestType.KEEP:
                swap = depolarizing_kraus(gates.ec_gate_fidelity)
                for qubit in (0, 1):
                    apply_one_sided_channel(state, qubit, swap)
                    apply_one_sided_channel(state, qubit, swap)
            weighted += probability * state.fidelity_to_pure(bell_state(bell))
        return weighted / self._p_success

    # ------------------------------------------------------------------ #
    # Sampling — same random-number consumption as the exact sampler
    # ------------------------------------------------------------------ #
    def _success_sample(self, rng: np.random.Generator) -> HeraldSample:
        """Draw an outcome conditioned on success (one uniform draw)."""
        if self._p_success <= 0:
            raise RuntimeError("scenario has zero success probability")
        draw = rng.random()
        if draw < self._p_minus / self._p_success:
            code, matrix = 2, self._state_minus
        else:
            code, matrix = 1, self._state_plus
        if matrix is None:
            return _FAILURE
        return HeraldSample(outcome_code=code,
                            state=DensityMatrix(matrix.copy(),
                                                validate=False))

    def sample(self, rng: np.random.Generator) -> HeraldSample:
        draw = rng.random()
        if draw < self._p_minus:
            code, matrix = 2, self._state_minus
        elif draw < self._p_success:
            code, matrix = 1, self._state_plus
        else:
            return _FAILURE
        if matrix is None:
            return _FAILURE
        return HeraldSample(outcome_code=code,
                            state=DensityMatrix(matrix.copy(),
                                                validate=False))

    def resolve(self, rng: np.random.Generator,
                max_attempts: int) -> tuple[int, HeraldSample]:
        if max_attempts <= 1:
            return 1, self.sample(rng)
        if self._p_success <= 0:
            return max_attempts, _FAILURE
        attempt = int(rng.geometric(self._p_success))
        if attempt > max_attempts:
            return max_attempts, _FAILURE
        return attempt, self._success_sample(rng)


class AnalyticBackend(PhysicsBackend):
    """Closed-form backend with geometric fast-forward of failed cycles.

    Parameters
    ----------
    fast_forward:
        When ``True`` (default) the batching policy widens every GEN/REPLY
        exchange to cover up to ``max_window_seconds`` of attempt cycles, so
        long runs of failed attempts cost O(1) events.  ``False`` keeps the
        conservative exact-model batching — useful for trajectory-level
        comparisons against the density backend (registered as
        ``"analytic-exact"``).
    max_window_seconds:
        Upper bound on the simulated time one fast-forwarded exchange may
        span.  This bounds the scheduling granularity: a newly arriving
        higher-priority request waits at most this long before the attempt
        stream can switch to it.
    """

    name = "analytic"

    def __init__(self, fast_forward: bool = True,
                 max_window_seconds: float = 10e-3) -> None:
        if max_window_seconds <= 0:
            raise ValueError(
                f"max_window_seconds must be positive, got {max_window_seconds}")
        self.fast_forward = fast_forward
        self.max_window_seconds = float(max_window_seconds)
        if not fast_forward:
            self.name = "analytic-exact"
        self._povm_cache: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------ #
    # Heralding
    # ------------------------------------------------------------------ #
    def attempt_model(self, scenario: "ScenarioConfig",
                      alpha: float) -> AnalyticAttemptModel:
        return _cached_model(scenario, float(alpha))

    # ------------------------------------------------------------------ #
    # Batching policy — the O(1) fast-forward
    # ------------------------------------------------------------------ #
    def granted_batch(self, request_type: "RequestType", configured: int,
                      emission_multiplexing: bool,
                      timing: "TimingParameters",
                      frame_loss_probability: float = 0.0) -> BatchGrant:
        from repro.core.messages import RequestType

        base = super().granted_batch(request_type, configured,
                                     emission_multiplexing, timing,
                                     frame_loss_probability)
        if not self.fast_forward:
            return base
        if frame_loss_probability > 0:
            # The robustness study (Section 6.1) exposes every classical
            # frame to loss individually; collapsing a window of attempts
            # into one GEN/REPLY exchange would shrink the number of frames
            # at risk by orders of magnitude and change the very physics
            # being measured.  Fall back to the conservative policy.
            return base
        cycle = timing.mhp_cycle
        if request_type is RequestType.MEASURE:
            if not emission_multiplexing:
                # Every attempt must wait for its REPLY; nothing to skip.
                return base
            stride = 1
        else:
            # K attempts are spaced by the attempt spacing (which already
            # accounts for the midpoint round trip) aligned to the MHP cycle
            # grid — identical to the cycle the unbatched protocol would
            # trigger on.
            round_trip = 2 * max(timing.midpoint_delay_a,
                                 timing.midpoint_delay_b)
            spacing = max(timing.attempt_spacing_k, round_trip)
            stride = max(1, math.ceil(spacing / cycle - 1e-9))
        # The window is a hard cap (it bounds the scheduling granularity a
        # higher-priority arrival may have to wait out), so a configured
        # batch larger than the window is clipped to it.
        window_attempts = int(self.max_window_seconds / (stride * cycle))
        return BatchGrant(batch=max(1, window_attempts), stride=stride)

    # ------------------------------------------------------------------ #
    # Local device physics — direct contractions on the 4x4 pair state
    # ------------------------------------------------------------------ #
    def apply_t1t2(self, pair: "EntangledPair", side: str,
                   coherence: "CoherenceTimes", duration: float) -> None:
        p_relax, extra = _t1t2_parameters(duration, coherence.t1,
                                          coherence.t2)
        index = _side_index(side)
        if p_relax > 0:
            apply_one_sided_channel(pair.state, index,
                                    _amplitude_damping_ops(p_relax))
        if extra > 0:
            _scale_one_sided_coherences(pair.state, index, 1.0 - 2.0 * extra)

    def apply_depolarizing(self, pair: "EntangledPair", side: str,
                           fidelity: float) -> None:
        from repro.quantum.noise import depolarizing_kraus

        apply_one_sided_channel(pair.state, _side_index(side),
                                depolarizing_kraus(fidelity))

    def apply_dephasing(self, pair: "EntangledPair", side: str,
                        probability: float) -> None:
        _scale_one_sided_coherences(pair.state, _side_index(side),
                                    1.0 - 2.0 * probability)

    def apply_correction(self, pair: "EntangledPair", side: str,
                         gate_fidelity: float) -> None:
        _scale_one_sided_coherences(pair.state, _side_index(side), -1.0)
        if gate_fidelity < 1.0:
            self.apply_depolarizing(pair, side, gate_fidelity)

    def measure_pair(self, pair: "EntangledPair", side: str, basis: str,
                     readout_fidelity_0: float, readout_fidelity_1: float,
                     rng: np.random.Generator) -> int:
        operators = self._measurement_operators(
            _side_index(side), basis.upper(), readout_fidelity_0,
            readout_fidelity_1)
        rho = pair.state.matrix
        probabilities = np.array([
            max(float(np.real(np.einsum("ij,ji->", element, rho))), 0.0)
            for _, element in operators])
        total = probabilities.sum()
        if total <= 0:
            raise RuntimeError("POVM probabilities sum to zero")
        outcome = int(rng.choice(len(operators), p=probabilities / total))
        kraus, _ = operators[outcome]
        post = kraus @ rho @ kraus.conj().T
        norm = float(np.real(np.trace(post)))
        if norm <= 0:
            raise RuntimeError("POVM produced zero-probability branch")
        pair.state.update_matrix(post / norm)
        return outcome

    def _measurement_operators(self, side_index: int, basis: str,
                               readout_fidelity_0: float,
                               readout_fidelity_1: float) -> tuple:
        """Cached expanded (Kraus, POVM-element) pairs: rotation + readout."""
        key = (side_index, basis, readout_fidelity_0, readout_fidelity_1)
        cached = self._povm_cache.get(key)
        if cached is not None:
            return cached
        from repro.quantum import gates
        from repro.quantum.measurement import readout_kraus

        if basis == "Z":
            rotation = gates.I
        elif basis == "X":
            rotation = gates.H
        elif basis == "Y":
            rotation = gates.H @ gates.S.conj().T
        else:
            raise ValueError(f"unknown basis {basis!r}")
        identity = np.eye(2, dtype=complex)
        operators = []
        for readout in readout_kraus(readout_fidelity_0, readout_fidelity_1):
            small = readout @ rotation
            expanded = (np.kron(small, identity) if side_index == 0
                        else np.kron(identity, small))
            operators.append((expanded, expanded.conj().T @ expanded))
        cached = tuple(operators)
        self._povm_cache[key] = cached
        return cached


@lru_cache(maxsize=256)
def _cached_model(scenario: "ScenarioConfig",
                  alpha: float) -> AnalyticAttemptModel:
    return AnalyticAttemptModel(scenario, alpha)
