"""Pluggable physics backends for the link-layer simulation.

The protocol stack (MHP, EGP, FEU, device model) talks to the physics through
the :class:`~repro.backends.base.PhysicsBackend` interface; this package
provides the registry that maps backend names to shared instances.

Backends
--------
``"density"`` (default)
    Exact density-matrix model — the reference physics.
``"analytic"``
    Closed-form probabilities/fidelities with geometric fast-forward of
    failed attempt cycles; equivalent in distribution, O(1) events per
    herald.
``"analytic-exact"``
    The analytic model without fast-forward: same event granularity and
    random-number consumption as ``"density"``, used by the cross-backend
    equivalence tests.

Selection
---------
Every entry point (``SimulationRun``, ``ScenarioSpec``, benchmarks,
examples) accepts a backend name or instance; when none is given the
``REPRO_BACKEND`` environment variable decides, falling back to
``"density"``.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.backends.analytic import AnalyticAttemptModel, AnalyticBackend
from repro.backends.base import (
    AttemptModel,
    BatchGrant,
    HeraldSample,
    PhysicsBackend,
)
from repro.backends.density import DensityAttemptModel, DensityMatrixBackend
from repro.backends.vectorized import VectorizedAnalyticBackend

#: Environment variable consulted when no backend is passed explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Name of the reference backend.
DEFAULT_BACKEND = "density"

_FACTORIES = {
    "density": DensityMatrixBackend,
    "analytic": AnalyticBackend,
    "analytic-exact": lambda: AnalyticBackend(fast_forward=False),
}
_INSTANCES: dict[str, PhysicsBackend] = {}


def available_backends() -> list[str]:
    """Names accepted by :func:`get_backend`."""
    return sorted(_FACTORIES)


def default_backend_name() -> str:
    """Backend name selected by the environment (``REPRO_BACKEND``)."""
    return os.environ.get(BACKEND_ENV_VAR, DEFAULT_BACKEND).strip() or \
        DEFAULT_BACKEND


def resolve_backend_name(
        backend: Union[None, str, PhysicsBackend]) -> str:
    """The concrete backend name ``backend`` resolves to.

    Used wherever the name must be recorded (sweep cache keys, results)
    before/without instantiating the backend.
    """
    if backend is None:
        name = default_backend_name()
    elif isinstance(backend, PhysicsBackend):
        return backend.name
    else:
        name = str(backend)
    if name not in _FACTORIES:
        raise ValueError(f"unknown physics backend {name!r}; "
                         f"available: {available_backends()}")
    return name


def get_backend(
        backend: Union[None, str, PhysicsBackend] = None) -> PhysicsBackend:
    """Resolve a backend name (or pass through an instance).

    Named backends are shared singletons so their per-``alpha`` attempt-model
    caches are reused across runs within one process.
    """
    if isinstance(backend, PhysicsBackend):
        return backend
    name = resolve_backend_name(backend)
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _FACTORIES[name]()
        _INSTANCES[name] = instance
    return instance


__all__ = [
    "AnalyticAttemptModel",
    "AnalyticBackend",
    "AttemptModel",
    "BACKEND_ENV_VAR",
    "BatchGrant",
    "DEFAULT_BACKEND",
    "DensityAttemptModel",
    "DensityMatrixBackend",
    "HeraldSample",
    "PhysicsBackend",
    "VectorizedAnalyticBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "resolve_backend_name",
]
