"""Exact density-matrix physics backend.

This backend is the reference model: it delegates heralding to the full
density-matrix computation of :mod:`repro.hardware.heralding` (emission,
beam-splitter Kraus operators, detector imperfections) and applies device
noise through the Kraus machinery of :mod:`repro.quantum`.  It reproduces,
operation for operation (including random-number consumption), the behaviour
the simulation had before the backend layer existed.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.backends.base import AttemptModel, HeraldSample, PhysicsBackend
from repro.quantum import noise
from repro.quantum.measurement import readout_kraus
from repro.quantum.states import BellIndex, bell_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.messages import RequestType
    from repro.hardware.heralding import HeraldedStateSampler
    from repro.hardware.pair import EntangledPair
    from repro.hardware.parameters import CoherenceTimes, ScenarioConfig


def _sample_from_outcome(outcome) -> HeraldSample:
    """Convert a heralding :class:`AttemptOutcome` into a HeraldSample."""
    from repro.hardware.heralding import HeraldingOutcome

    if outcome.outcome is HeraldingOutcome.PSI_PLUS:
        code = 1
    elif outcome.outcome is HeraldingOutcome.PSI_MINUS:
        code = 2
    else:
        code = 0
    state = None
    if code and outcome.state is not None:
        state = outcome.state.copy()
    return HeraldSample(outcome_code=code, state=state)


_FAILURE = HeraldSample(outcome_code=0, state=None)


class DensityAttemptModel(AttemptModel):
    """Attempt model backed by the exact :class:`HeraldedStateSampler`."""

    def __init__(self, scenario: "ScenarioConfig", alpha: float) -> None:
        from repro.hardware.heralding import HeraldedStateSampler

        self.scenario = scenario
        self.alpha = float(alpha)
        self.sampler: "HeraldedStateSampler" = \
            HeraldedStateSampler.for_scenario(scenario, float(alpha))

    # ------------------------------------------------------------------ #
    # Static properties
    # ------------------------------------------------------------------ #
    @property
    def success_probability(self) -> float:
        return self.sampler.success_probability

    def average_success_fidelity(self,
                                 target: Optional[BellIndex] = None) -> float:
        return self.sampler.average_success_fidelity(target)

    def delivered_fidelity(self, request_type: "RequestType") -> float:
        from repro.core.messages import RequestType

        successes = [o for o in self.sampler.outcomes
                     if o.is_success and o.state]
        total = sum(o.probability for o in successes)
        if total <= 0:
            return 0.0
        gates = self.scenario.gates
        timing = self.scenario.timing
        weighted = 0.0
        for outcome in successes:
            state = outcome.state.copy()
            target = outcome.outcome.bell_index
            # Electron decay while waiting for the midpoint REPLY.
            for qubit, delay in ((0, timing.midpoint_delay_a),
                                 (1, timing.midpoint_delay_b)):
                if delay > 0:
                    state.apply_kraus(
                        noise.t1_t2_kraus(delay, gates.electron_coherence.t1,
                                          gates.electron_coherence.t2),
                        qubits=[qubit])
            if request_type is RequestType.KEEP:
                # Move-to-memory gate noise (two E-C gates per side); the
                # swap pulse sequence dynamically decouples the electron, so
                # no extra free-evolution decay is added here, matching the
                # device model.
                swap_kraus = noise.depolarizing_kraus(gates.ec_gate_fidelity)
                for qubit in (0, 1):
                    state.apply_kraus(swap_kraus, qubits=[qubit])
                    state.apply_kraus(swap_kraus, qubits=[qubit])
            weighted += outcome.probability * state.fidelity_to_pure(
                bell_state(target))
        return weighted / total

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, rng: np.random.Generator) -> HeraldSample:
        return _sample_from_outcome(self.sampler.sample(rng))

    def resolve(self, rng: np.random.Generator,
                max_attempts: int) -> tuple[int, HeraldSample]:
        if max_attempts <= 1:
            return 1, self.sample(rng)
        success_attempt = self.sampler.sample_attempts_until_success(
            rng, max_attempts)
        if success_attempt is None:
            return max_attempts, _FAILURE
        return success_attempt, _sample_from_outcome(
            self.sampler.sample_success(rng))


class DensityMatrixBackend(PhysicsBackend):
    """Exact backend: full density-matrix heralding and Kraus device noise.

    The conservative default batching policy of :class:`PhysicsBackend` is
    inherited unchanged — this backend never fast-forwards beyond the batch
    size the caller configured.
    """

    name = "density"

    # ------------------------------------------------------------------ #
    # Heralding
    # ------------------------------------------------------------------ #
    def attempt_model(self, scenario: "ScenarioConfig",
                      alpha: float) -> DensityAttemptModel:
        return _cached_model(scenario, float(alpha))

    # ------------------------------------------------------------------ #
    # Local device physics
    # ------------------------------------------------------------------ #
    def apply_t1t2(self, pair: "EntangledPair", side: str,
                   coherence: "CoherenceTimes", duration: float) -> None:
        kraus = noise.t1_t2_kraus(duration, coherence.t1, coherence.t2)
        pair.apply_one_sided_kraus(kraus, side)

    def apply_depolarizing(self, pair: "EntangledPair", side: str,
                           fidelity: float) -> None:
        pair.apply_one_sided_kraus(noise.depolarizing_kraus(fidelity), side)

    def apply_dephasing(self, pair: "EntangledPair", side: str,
                        probability: float) -> None:
        pair.apply_one_sided_kraus(noise.dephasing_kraus(probability), side)

    def apply_correction(self, pair: "EntangledPair", side: str,
                         gate_fidelity: float) -> None:
        from repro.quantum import gates

        pair.apply_one_sided_unitary(gates.Z, side)
        if gate_fidelity < 1.0:
            pair.apply_one_sided_kraus(
                noise.depolarizing_kraus(gate_fidelity), side)

    def measure_pair(self, pair: "EntangledPair", side: str, basis: str,
                     readout_fidelity_0: float, readout_fidelity_1: float,
                     rng: np.random.Generator) -> int:
        from repro.quantum import gates

        basis = basis.upper()
        if basis == "X":
            pair.apply_one_sided_unitary(gates.H, side)
        elif basis == "Y":
            # Rotate Y eigenstates onto Z: apply H S^dagger.
            pair.apply_one_sided_unitary(gates.H @ gates.S.conj().T, side)
        elif basis != "Z":
            raise ValueError(f"unknown basis {basis!r}")
        m0, m1 = readout_kraus(readout_fidelity_0, readout_fidelity_1)
        qubit = 0 if side.upper() == "A" else 1
        return pair.state.measure_povm([m0, m1], qubits=[qubit], rng=rng)


@lru_cache(maxsize=256)
def _cached_model(scenario: "ScenarioConfig",
                  alpha: float) -> DensityAttemptModel:
    return DensityAttemptModel(scenario, alpha)
