"""Physics-backend interface of the link-layer simulation.

A :class:`PhysicsBackend` answers every *physics* question the protocol stack
asks, so the MHP/EGP/FEU never touch a concrete quantum model directly:

* **Heralding** — per-``alpha`` attempt resolution at the midpoint station:
  outcome probabilities, conditional post-herald states and geometric
  fast-forward over runs of failed cycles (:class:`AttemptModel`).
* **Delivery** — fidelity of a pair as seen by the higher layer after the
  device noise the hardware model will apply
  (:meth:`AttemptModel.delivered_fidelity`).
* **Memory decay and local operations** — T1/T2 idling, gate depolarising,
  attempt dephasing, the Psi-/Psi+ correction and noisy readout applied to
  one side of a stored :class:`~repro.hardware.pair.EntangledPair`.
* **Batching policy** — how many MHP cycles one GEN/REPLY exchange may cover
  (:meth:`PhysicsBackend.granted_batch`), which is where an approximate
  backend may trade event-level granularity for wall-clock speed.

Two implementations ship with the repo: the exact
:class:`~repro.backends.density.DensityMatrixBackend` and the closed-form
:class:`~repro.backends.analytic.AnalyticBackend`.  Any future backend
(tensor-network, GPU, remote service) only implements this interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.quantum.density import DensityMatrix
from repro.quantum.states import BellIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.messages import RequestType
    from repro.hardware.pair import EntangledPair
    from repro.hardware.parameters import (
        CoherenceTimes,
        ScenarioConfig,
        TimingParameters,
    )


@dataclass(frozen=True)
class HeraldSample:
    """Resolved outcome of one entanglement generation attempt.

    ``outcome_code`` follows the REPLY encoding: 0 failure, 1 |Psi+>,
    2 |Psi->.  ``state`` is a fresh, caller-owned conditional state of the
    two communication qubits, or ``None`` for failures (and for pathological
    success branches with no conditional state, which the MHP treats as
    failures).
    """

    outcome_code: int
    state: Optional[DensityMatrix]

    @property
    def success(self) -> bool:
        """Whether the attempt heralds usable entanglement."""
        return self.outcome_code in (1, 2) and self.state is not None

    @property
    def bell_index(self) -> Optional[BellIndex]:
        """The heralded Bell state, or ``None`` on failure."""
        if self.outcome_code == 1:
            return BellIndex.PSI_PLUS
        if self.outcome_code == 2:
            return BellIndex.PSI_MINUS
        return None


@dataclass(frozen=True)
class BatchGrant:
    """How the physical layer may batch attempts for one request.

    ``batch``
        Number of consecutive attempts one GEN/REPLY exchange covers.
    ``stride``
        MHP cycles between consecutive attempts of the batch (1 when the
        request attempts every cycle; ``ceil(attempt_spacing / t_cycle)``
        for create-and-keep requests whose spacing spans several cycles).
    """

    batch: int = 1
    stride: int = 1

    @property
    def cycles(self) -> int:
        """Total MHP cycles spanned by the batch."""
        return (self.batch - 1) * self.stride + 1


class AttemptModel(abc.ABC):
    """Per-(scenario, alpha) model of one entanglement generation attempt.

    One model fully characterises the physical entanglement generation for a
    bright-state population: success probability, heralded states and
    fidelities.  The midpoint samples from it once per attempt (or once per
    fast-forwarded batch of attempts).
    """

    @property
    @abc.abstractmethod
    def success_probability(self) -> float:
        """Probability that one attempt heralds entanglement."""

    @abc.abstractmethod
    def average_success_fidelity(self,
                                 target: Optional[BellIndex] = None) -> float:
        """Success-probability-weighted fidelity of the heralded state."""

    @abc.abstractmethod
    def delivered_fidelity(self, request_type: "RequestType") -> float:
        """Average fidelity of a pair as delivered to the higher layer.

        Starts from the heralded state and applies the same degradation the
        device model will apply: electron decay while the REPLY travels
        back, and (for K requests) the move-to-memory gate noise.
        """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> HeraldSample:
        """Draw the outcome of one entanglement generation attempt."""

    @abc.abstractmethod
    def resolve(self, rng: np.random.Generator,
                max_attempts: int) -> tuple[int, HeraldSample]:
        """Resolve up to ``max_attempts`` consecutive attempts at once.

        Returns ``(attempts_used, sample)``.  On success ``attempts_used``
        is the 1-based index of the first successful attempt; when every
        attempt fails it equals ``max_attempts`` and the sample is a
        failure.  Statistically identical to calling :meth:`sample` once per
        attempt, but O(1) in simulation events.
        """


class PhysicsBackend(abc.ABC):
    """Pluggable physics model behind the MHP/EGP hot loop."""

    #: Registry / cache-key name of the backend (e.g. ``"density"``).
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Heralding
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def attempt_model(self, scenario: "ScenarioConfig",
                      alpha: float) -> AttemptModel:
        """The (cached) attempt model for symmetric population ``alpha``."""

    # ------------------------------------------------------------------ #
    # Batching policy
    # ------------------------------------------------------------------ #
    def granted_batch(self, request_type: "RequestType", configured: int,
                      emission_multiplexing: bool,
                      timing: "TimingParameters",
                      frame_loss_probability: float = 0.0) -> BatchGrant:
        """How many attempts one GEN/REPLY exchange may cover.

        The default policy is the conservative one of the exact model:
        batched operation (Section 5.1) is only allowed when nothing between
        attempts depends on the previous REPLY.  Measure-directly requests
        with emission multiplexing always qualify; create-and-keep requests
        qualify only when the round trip to the midpoint fits within one MHP
        cycle — otherwise an attempt must wait for the previous REPLY and
        batching would misrepresent the attempt rate.
        """
        from repro.core.messages import RequestType

        if configured <= 1:
            return BatchGrant(1, 1)
        round_trip = 2 * max(timing.midpoint_delay_a, timing.midpoint_delay_b)
        if request_type is RequestType.MEASURE:
            if emission_multiplexing:
                return BatchGrant(configured, 1)
            return BatchGrant(1, 1)
        if round_trip <= timing.mhp_cycle:
            return BatchGrant(configured, 1)
        return BatchGrant(1, 1)

    # ------------------------------------------------------------------ #
    # Local device physics (one side of a stored pair)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def apply_t1t2(self, pair: "EntangledPair", side: str,
                   coherence: "CoherenceTimes", duration: float) -> None:
        """T1/T2 decay of one side of ``pair`` over ``duration`` seconds."""

    @abc.abstractmethod
    def apply_depolarizing(self, pair: "EntangledPair", side: str,
                           fidelity: float) -> None:
        """Depolarising gate noise with no-error probability ``fidelity``."""

    @abc.abstractmethod
    def apply_dephasing(self, pair: "EntangledPair", side: str,
                        probability: float) -> None:
        """Dephasing channel with Z-flip probability ``probability``."""

    @abc.abstractmethod
    def apply_correction(self, pair: "EntangledPair", side: str,
                         gate_fidelity: float) -> None:
        """Local Z gate converting |Psi-> into |Psi+> (Eq. 13), with
        depolarising gate noise when ``gate_fidelity < 1``."""

    @abc.abstractmethod
    def measure_pair(self, pair: "EntangledPair", side: str, basis: str,
                     readout_fidelity_0: float, readout_fidelity_1: float,
                     rng: np.random.Generator) -> int:
        """Noisy electron readout of one side of ``pair`` in ``basis``.

        Collapses the pair state so that the peer's subsequent measurement
        sees the correct conditional state.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"<{self.__class__.__name__} {self.name!r}>"
