"""Application-layer protocols built on top of the link layer service.

These are the use cases that motivate the paper's CREATE request types:

* :mod:`repro.apps.qkd` — quantum key distribution on the measure-directly
  (MD) service,
* :mod:`repro.apps.teleportation` — qubit transmission (SQ use case) consuming
  create-and-keep (K) pairs.
"""

from repro.apps.qkd import QKDSession, KeyStatistics, binary_entropy, bb84_key_fraction
from repro.apps.teleportation import teleport, TeleportationResult

__all__ = [
    "QKDSession",
    "KeyStatistics",
    "binary_entropy",
    "bb84_key_fraction",
    "teleport",
    "TeleportationResult",
]
