"""Quantum key distribution on top of the measure-directly (MD) service.

This is the canonical application of the paper's MD use case: the link layer
delivers measurement outcomes at both nodes; the application sifts them,
estimates the QBER and computes how much secret key could be distilled.

The implementation is deliberately simple (entanglement-based BB84 with
asymptotic key fraction ``1 - 2 h(Q)``): the point is to exercise the MD
service end-to-end, not to provide a production QKD post-processing stack.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.messages import OkMessage, RequestType


def binary_entropy(probability: float) -> float:
    """Binary entropy h(p) in bits."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability {probability} not in [0, 1]")
    if probability in (0.0, 1.0):
        return 0.0
    return (-probability * math.log2(probability)
            - (1.0 - probability) * math.log2(1.0 - probability))


def bb84_key_fraction(qber: float) -> float:
    """Asymptotic BB84 secret-key fraction ``max(0, 1 - 2 h(Q))``."""
    return max(0.0, 1.0 - 2.0 * binary_entropy(qber))


@dataclass
class KeyStatistics:
    """Result of a QKD session."""

    raw_pairs: int
    sifted_bits: int
    errors: int
    qber: Optional[float]
    key_fraction: float
    secret_key_bits: float
    qber_by_basis: dict[str, float] = field(default_factory=dict)


class QKDSession:
    """Entanglement-based QKD session consuming MD measurement outcomes.

    The session listens to OK messages from both nodes, pairs them by
    entanglement identifier, and treats the Z basis as the key basis (X and Y
    outcomes are used for error estimation only).

    Because the link layer delivers |Psi+> after correction, Z outcomes are
    anti-correlated: node B flips its key bits.
    """

    def __init__(self, key_basis: str = "Z") -> None:
        self.key_basis = key_basis.upper()
        self._outcomes: dict[tuple, dict[str, OkMessage]] = defaultdict(dict)
        self.raw_pairs = 0

    def attach(self, network) -> None:
        """Subscribe to both nodes' OK streams of a LinkLayerNetwork."""
        for name, node in network.nodes.items():
            node.egp.add_ok_listener(
                lambda ok, node_name=name: self.record(node_name, ok))

    def record(self, node_name: str, ok: OkMessage) -> None:
        """Record one node's OK for an MD pair."""
        if ok.request_type is not RequestType.MEASURE:
            return
        if ok.measurement_outcome is None or ok.measurement_basis is None:
            return
        key = tuple(ok.entanglement_id)
        slot = self._outcomes[key]
        slot[node_name] = ok
        if len(slot) == 2:
            self.raw_pairs += 1

    def _complete_pairs(self) -> list[tuple[OkMessage, OkMessage]]:
        pairs = []
        for slot in self._outcomes.values():
            if "A" in slot and "B" in slot:
                pairs.append((slot["A"], slot["B"]))
        return pairs

    def statistics(self) -> KeyStatistics:
        """Sift, estimate QBER per basis and compute the secret key yield."""
        sifted = 0
        errors = 0
        per_basis_counts: dict[str, list[int]] = defaultdict(list)
        for ok_a, ok_b in self._complete_pairs():
            basis = ok_a.measurement_basis
            if basis != ok_b.measurement_basis:
                continue  # both nodes derive the basis from the sequence number
            # Target |Psi+>: Z anti-correlated, X and Y correlated.
            equal = ok_a.measurement_outcome == ok_b.measurement_outcome
            error = equal if basis == "Z" else not equal
            per_basis_counts[basis].append(1 if error else 0)
            if basis == self.key_basis:
                sifted += 1
                errors += 1 if error else 0
        qber_by_basis = {basis: sum(values) / len(values)
                         for basis, values in per_basis_counts.items() if values}
        qber = qber_by_basis.get(self.key_basis)
        if qber is None:
            key_fraction = 0.0
        else:
            key_fraction = bb84_key_fraction(qber)
        return KeyStatistics(
            raw_pairs=self.raw_pairs,
            sifted_bits=sifted,
            errors=errors,
            qber=qber,
            key_fraction=key_fraction,
            secret_key_bits=key_fraction * sifted,
            qber_by_basis=qber_by_basis,
        )
