"""Qubit teleportation over a delivered entangled pair (the SQ use case).

Teleportation consumes one create-and-keep pair: the sender performs a Bell
measurement on the data qubit and its half of the pair, sends the two
classical outcome bits, and the receiver applies the corresponding Pauli
correction.  The fidelity of the output qubit to the input qubit is limited by
the fidelity of the link-layer pair — which is exactly the argument the paper
makes for the F_min parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hardware.pair import EntangledPair
from repro.quantum import gates
from repro.quantum.density import DensityMatrix


@dataclass
class TeleportationResult:
    """Outcome of teleporting one qubit."""

    classical_bits: tuple[int, int]
    output_state: DensityMatrix
    fidelity: float


def teleport(data_ket: np.ndarray, pair: EntangledPair,
             rng: Optional[np.random.Generator] = None) -> TeleportationResult:
    """Teleport ``data_ket`` from node A to node B using ``pair``.

    ``pair`` must hold a (possibly noisy) |Psi+>-like state with qubit 0 at
    the sender (A) and qubit 1 at the receiver (B); this is what the link
    layer delivers after the |Psi-> correction.

    Returns the receiver's output state and its fidelity to the input.
    """
    rng = rng if rng is not None else np.random.default_rng()
    data_ket = np.asarray(data_ket, dtype=complex).reshape(-1)
    if data_ket.shape != (2,):
        raise ValueError("teleportation input must be a single-qubit state")
    norm = np.linalg.norm(data_ket)
    if norm == 0:
        raise ValueError("input state has zero norm")
    data_ket = data_ket / norm

    # Joint state: data qubit (0), A's half (1), B's half (2).
    joint = DensityMatrix.from_ket(data_ket).tensor(pair.state)

    # Bell measurement on (data, A): CNOT then H on the data qubit, then
    # measure both in Z.
    joint.apply_unitary(gates.CNOT, qubits=[0, 1])
    joint.apply_unitary(gates.H, qubits=[0])
    bit_z = joint.measure(0, basis="Z", rng=rng)
    bit_x = joint.measure(1, basis="Z", rng=rng)

    # Receiver correction.  For the |Psi+> resource (anti-correlated in Z) the
    # required correction differs from the textbook |Phi+> case by an extra X.
    output = joint.partial_trace([2])
    if bit_x == 0:
        output.apply_unitary(gates.X, qubits=[0])
    if bit_z == 1:
        output.apply_unitary(gates.Z, qubits=[0])

    fidelity = output.fidelity_to_pure(data_ket)
    return TeleportationResult(classical_bits=(bit_z, bit_x),
                               output_state=output,
                               fidelity=fidelity)
