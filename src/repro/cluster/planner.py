"""Deterministic shard planning with pluggable scenario cost models.

The paper's 169-scenario grid is wildly heterogeneous: an MD ``k_max = 255``
long run costs orders of magnitude more wall-clock than a ``k_max = 1`` NL
run, and the density backend costs a large constant factor over the analytic
one.  Naive round-robin sharding therefore leaves one shard grinding long
after the others finish.  The planner partitions a grid into ``num_shards``
shards with the classic LPT (longest-processing-time-first) greedy: scenarios
sorted by estimated cost descending are assigned, one by one, to the
currently lightest shard.  Ties break on scenario index and shard id, so the
plan is a pure function of (scenario list, shard count, cost model) — every
coordinator and worker that computes it independently agrees.

Costs come from a :class:`CostModel`:

* :class:`StaticCostModel` — a closed-form heuristic over the scenario's
  workload (pair counts, load, K vs M attempts, hardware timing, backend).
  It only needs to *rank* scenarios sensibly, not predict seconds.
* :class:`RecordedCostModel` — calibrated from the per-scenario wall-clock
  recorded in prior :class:`~repro.runtime.sweep.SweepResult` s, falling back
  to the static heuristic for scenarios never seen before.  It persists to
  JSON (:meth:`RecordedCostModel.save` / :meth:`RecordedCostModel.load`), so
  every completed sweep calibrates the *next* plan: the coordinator
  auto-loads ``cost_model.json`` from its cache/cluster directory and writes
  the observed wall-clocks back after each merge.
"""

from __future__ import annotations

import heapq
import json
import logging
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.runtime.cache import atomic_write_text
from repro.runtime.scenarios import ScenarioSpec
from repro.runtime.sweep import ScenarioOutcome, SweepResult

logger = logging.getLogger("repro.cluster.planner")


class CostModel(ABC):
    """Estimates the relative execution cost of one scenario."""

    @abstractmethod
    def estimate(self, spec: ScenarioSpec, duration: float) -> float:
        """Relative cost (arbitrary positive units) of running ``spec`` for
        ``duration`` simulated seconds."""

    def cohort_estimate(self, spec: ScenarioSpec, duration: float,
                        cohort_size: int) -> float:
        """Cost of ``spec`` when run inside a vectorized cohort of
        ``cohort_size`` members (see ``repro.runtime.batch``).

        Default: no batching benefit assumed — subclasses that understand
        cohort throughput override this."""
        return self.estimate(spec, duration)


class StaticCostModel(CostModel):
    """Closed-form k/load/kind/backend heuristic (no calibration data).

    The dominant effects, in order: per-request pair count (k255 MD runs
    deliver hundreds of pairs per CREATE and dominate the grid), the density
    backend's per-attempt matrix work versus the analytic fast path, K
    attempts being ~100x longer than M attempts (weighted by the hardware's
    expected MHP cycles per K attempt), and the offered load.
    """

    #: Relative cost factor per resolved backend (unknown names get
    #: ``DEFAULT_BACKEND_FACTOR`` — assume expensive).
    BACKEND_FACTORS = {"density": 6.0, "analytic-exact": 6.0, "analytic": 1.0}
    DEFAULT_BACKEND_FACTOR = 6.0

    #: Relative per-event cost factor of the event engine (see
    #: ``repro.sim.queues``): the calendar/ladder queues shave the queue
    #: layer's share of the run.  Only the *ranking* matters for LPT.
    ENGINE_FACTORS = {"heap": 1.0, "calendar": 0.7, "ladder": 0.8}
    DEFAULT_ENGINE_FACTOR = 1.0

    #: Saturating per-member speedup of analytic cohort execution: the
    #: shared FEU tables and memoized pair physics amortize quickly, so a
    #: cohort of B analytic members costs roughly ``B / min(B, this)``
    #: solo runs.  Like the other factors, only the ranking matters.
    ANALYTIC_COHORT_SPEEDUP = 6.0

    def estimate(self, spec: ScenarioSpec, duration: float) -> float:
        features = spec.cost_features()
        units = 0.0
        for workload in features["workloads"]:
            kind = 1.0
            if workload["keep"]:
                # K attempts block the electron for the full round trip;
                # QL2020's E ~= 16 cycles per K attempt makes them costlier
                # still relative to M attempts on the same hardware.
                kind = 1.0 + 0.1 * features["expected_cycles_k"]
            units += workload["load"] * (1.0 + workload["pairs"]) * kind
        backend = self.BACKEND_FACTORS.get(spec.backend_name(),
                                           self.DEFAULT_BACKEND_FACTOR)
        engine = self.ENGINE_FACTORS.get(features.get("engine", "heap"),
                                         self.DEFAULT_ENGINE_FACTOR)
        # A topology run simulates one full link stack per link on a shared
        # engine (every link re-runs the workload), so cost scales with the
        # link count.
        links = max(1, int(features.get("links", 1)))
        return (max(duration, 1e-9) * max(units, 1e-6) * backend * engine
                * links)

    def cohort_estimate(self, spec: ScenarioSpec, duration: float,
                        cohort_size: int) -> float:
        base = self.estimate(spec, duration)
        if (cohort_size <= 1 or spec.backend_name() != "analytic"
                or getattr(spec, "topology", None) is not None):
            # Only single-link analytic scenarios join cohorts
            # (see repro.runtime.batch.cohortable).
            return base
        return base / min(float(cohort_size), self.ANALYTIC_COHORT_SPEEDUP)


class RecordedCostModel(CostModel):
    """Cost model calibrated from recorded per-scenario wall-clock.

    Feed it prior sweep results with :meth:`calibrate` (or construct via
    :meth:`from_results`).  Observations are keyed on ``(scenario name,
    backend)`` — scenario names are unique within a grid and stable across
    runs — and normalised to wall-seconds per simulated second, so a sweep
    recorded at one duration calibrates plans at another.  Scenarios without
    an observation fall back to the static heuristic, scaled so the two cost
    scales are commensurable.
    """

    #: Persistence format tag (see :meth:`to_dict`).
    FORMAT = "cost-model/v1"

    #: Observations kept per (scenario, backend) key: a rolling window so a
    #: model persisted across hundreds of sweeps stays bounded and tracks
    #: hardware drift instead of averaging over its whole history.
    MAX_OBSERVATIONS_PER_KEY = 32

    #: Backend-key suffix for observations made inside a vectorized cohort.
    #: Cohort members report their *effective* per-member wall-clock (cohort
    #: wall / cohort size), which is several times below the solo rate —
    #: mixing the two histories under one key would poison shard planning
    #: for whichever mode runs next, so they are recorded apart.  The suffix
    #: rides inside the existing ``backend`` string, so persisted v1 cost
    #: models round-trip unchanged.
    COHORT_KEY_SUFFIX = "#cohort"

    def __init__(self, fallback: Optional[CostModel] = None) -> None:
        self.fallback = fallback or StaticCostModel()
        #: (scenario_name, backend) -> [wall seconds per simulated second].
        self._rates: dict[tuple[str, str], list[float]] = {}
        #: Ratio sum used to rescale fallback estimates onto recorded units.
        self._scale_samples: list[float] = []

    # ------------------------------------------------------------------ #
    # Calibration
    # ------------------------------------------------------------------ #
    @classmethod
    def from_results(cls, results: Iterable[SweepResult],
                     fallback: Optional[CostModel] = None,
                     ) -> "RecordedCostModel":
        """A model calibrated from any number of prior sweep results."""
        model = cls(fallback=fallback)
        for result in results:
            model.calibrate(result)
        return model

    def calibrate(self, result: SweepResult) -> int:
        """Record the wall-clock of every fresh, successful outcome.

        Cached outcomes carry the wall-clock of some earlier run's disk
        read, not of the simulation, so they are ignored.  Returns the
        number of observations absorbed.
        """
        absorbed = 0
        for outcome in result.outcomes:
            if self.observe(outcome):
                absorbed += 1
        return absorbed

    def observe(self, outcome: ScenarioOutcome) -> bool:
        """Record one outcome; returns whether it was usable."""
        if not outcome.ok or outcome.from_cache or outcome.wall_time <= 0:
            return False
        if outcome.duration <= 0:
            return False
        rate = outcome.wall_time / outcome.duration
        backend_key = outcome.backend
        if getattr(outcome, "cohort", None) and outcome.cohort > 1:
            backend_key += self.COHORT_KEY_SUFFIX
        rates = self._rates.setdefault(
            (outcome.scenario_name, backend_key), [])
        rates.append(rate)
        if len(rates) > self.MAX_OBSERVATIONS_PER_KEY:
            del rates[:-self.MAX_OBSERVATIONS_PER_KEY]
        return True

    def observations(self) -> int:
        """Total number of recorded observations."""
        return sum(len(rates) for rates in self._rates.values())

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serialisable form: the recorded rates, keyed by scenario
        name and backend (the fallback heuristic is code, not data)."""
        return {
            "format": self.FORMAT,
            "rates": [
                {"scenario": name, "backend": backend, "rates": list(rates)}
                for (name, backend), rates in sorted(self._rates.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict,
                  fallback: Optional[CostModel] = None,
                  ) -> "RecordedCostModel":
        """Rebuild a model serialised with :meth:`to_dict`."""
        if data.get("format") != cls.FORMAT:
            raise ValueError(f"not a cost model: format "
                             f"{data.get('format')!r}")
        model = cls(fallback=fallback)
        for entry in data["rates"]:
            rates = [float(rate) for rate in entry["rates"]]
            model._rates[(entry["scenario"], entry["backend"])] = (
                rates[-cls.MAX_OBSERVATIONS_PER_KEY:])
        return model

    def save(self, path: str | Path) -> Path:
        """Atomically persist the recorded rates as JSON."""
        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: str | Path,
             fallback: Optional[CostModel] = None) -> "RecordedCostModel":
        """Load a model persisted with :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()),
                             fallback=fallback)

    @classmethod
    def load_if_present(cls, path: str | Path,
                        fallback: Optional[CostModel] = None,
                        ) -> Optional["RecordedCostModel"]:
        """Best-effort load: ``None`` when the file is absent, and a fresh
        warning-logged ``None`` when it is unreadable — a corrupt cost model
        must never break planning (the static heuristic still works)."""
        path = Path(path)
        if not path.exists():
            return None
        try:
            return cls.load(path, fallback=fallback)
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError) as error:
            logger.warning("ignoring unreadable cost model %s: %r",
                           path, error)
            return None

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def recorded_rate(self, spec: ScenarioSpec,
                      cohort: bool = False) -> Optional[float]:
        """Mean recorded wall-seconds per simulated second, if any.

        With ``cohort`` the cohort-mode history (per-member effective rate)
        is consulted instead of the solo history."""
        backend_key = spec.backend_name()
        if cohort:
            backend_key += self.COHORT_KEY_SUFFIX
        rates = self._rates.get((spec.name, backend_key))
        if not rates:
            return None
        return sum(rates) / len(rates)

    def estimate(self, spec: ScenarioSpec, duration: float) -> float:
        rate = self.recorded_rate(spec)
        if rate is not None:
            return rate * max(duration, 1e-9)
        return self._rescaled_fallback(spec, duration)

    def cohort_estimate(self, spec: ScenarioSpec, duration: float,
                        cohort_size: int) -> float:
        if cohort_size <= 1:
            return self.estimate(spec, duration)
        rate = self.recorded_rate(spec, cohort=True)
        if rate is not None:
            return rate * max(duration, 1e-9)
        # No cohort history yet: scale the solo estimate by the fallback
        # heuristic's batched/solo ratio (1.0 for non-analytic scenarios).
        solo = self.estimate(spec, duration)
        base = self.fallback.estimate(spec, duration)
        if base <= 0:
            return solo
        return solo * (self.fallback.cohort_estimate(spec, duration,
                                                     cohort_size) / base)

    def _rescaled_fallback(self, spec: ScenarioSpec, duration: float) -> float:
        """Fallback estimate rescaled onto the recorded-cost scale.

        Uses the mean ratio of recorded rate to static estimate over the
        calibrated population; with no calibration at all this degrades to
        the raw static heuristic (every scenario is scaled equally, which is
        all LPT needs).
        """
        base = self.fallback.estimate(spec, duration)
        if not self._scale_samples:
            # No calibrated spec in the planned population: plain heuristic
            # (uniformly scaled, which is all LPT needs).
            return base
        return base * (sum(self._scale_samples) / len(self._scale_samples))

    def prepare_scale(self, specs: Sequence[ScenarioSpec],
                      duration: float) -> None:
        """Recompute the recorded/static rescaling over a planned population.

        Called by :func:`plan_shards`; idempotent (the sample set is rebuilt
        from scratch each time).
        """
        self._scale_samples = []
        for spec in specs:
            rate = self.recorded_rate(spec)
            if rate is None:
                continue
            base = self.fallback.estimate(spec, duration)
            if base > 0:
                self._scale_samples.append(rate * max(duration, 1e-9) / base)


@dataclass
class ShardPlan:
    """A deterministic partition of a scenario list into shards.

    ``shards[s]`` lists *global scenario indices* (into the planned scenario
    list) in descending estimated cost — workers serve their shard front to
    back, thieves steal from the back, so the costliest work starts first
    and the cheapest work moves between shards.
    """

    num_shards: int
    shards: list[list[int]]
    #: Estimated cost per shard (sum over its scenarios).
    shard_costs: list[float]
    #: Estimated cost per scenario, indexed by global scenario index.
    scenario_costs: list[float] = field(default_factory=list)

    @property
    def num_scenarios(self) -> int:
        """Total scenarios across all shards."""
        return sum(len(shard) for shard in self.shards)

    def shard_of(self, index: int) -> int:
        """The shard a global scenario index was assigned to."""
        for shard_id, shard in enumerate(self.shards):
            if index in shard:
                return shard_id
        raise KeyError(f"scenario index {index} is in no shard")

    def to_dict(self) -> dict:
        """JSON-serialisable representation (stored in plan files)."""
        return {
            "num_shards": self.num_shards,
            "shards": [list(shard) for shard in self.shards],
            "shard_costs": list(self.shard_costs),
            "scenario_costs": list(self.scenario_costs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardPlan":
        """Rebuild a plan serialised with :meth:`to_dict`."""
        return cls(num_shards=data["num_shards"],
                   shards=[list(shard) for shard in data["shards"]],
                   shard_costs=list(data["shard_costs"]),
                   scenario_costs=list(data.get("scenario_costs", [])))


def plan_shards(specs: Sequence[ScenarioSpec], num_shards: int,
                duration: float,
                cost_model: Optional[CostModel] = None,
                cohort_size: int = 1) -> ShardPlan:
    """Partition ``specs`` into ``num_shards`` shards with LPT greedy.

    Deterministic: equal inputs always produce the identical plan (costs tie
    on scenario index, shard loads tie on shard id).  Shards can end up
    empty when there are fewer scenarios than shards.

    ``cohort_size > 1`` plans for workers running vectorized cohorts of
    that size: analytic scenarios are weighted by their batched cost
    (:meth:`CostModel.cohort_estimate`), so an analytic-heavy shard is
    sized for its true throughput instead of its solo cost.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    model = cost_model or StaticCostModel()
    if isinstance(model, RecordedCostModel):
        model.prepare_scale(specs, duration)
    if cohort_size > 1:
        costs = [float(model.cohort_estimate(spec, duration, cohort_size))
                 for spec in specs]
    else:
        costs = [float(model.estimate(spec, duration)) for spec in specs]
    order = sorted(range(len(specs)), key=lambda i: (-costs[i], i))
    shards: list[list[int]] = [[] for _ in range(num_shards)]
    heap = [(0.0, shard_id) for shard_id in range(num_shards)]
    heapq.heapify(heap)
    for index in order:
        load, shard_id = heapq.heappop(heap)
        shards[shard_id].append(index)
        heapq.heappush(heap, (load + costs[index], shard_id))
    shard_costs = [sum(costs[index] for index in shard) for shard in shards]
    return ShardPlan(num_shards=num_shards, shards=shards,
                     shard_costs=shard_costs, scenario_costs=costs)
