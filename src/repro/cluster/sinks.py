"""Streaming result sinks for sharded sweeps.

A :class:`ResultSink` receives ``(global scenario index, ScenarioOutcome)``
pairs as workers finish scenarios and persists them durably — ``write``
returning means the outcome survives a worker crash.  Three formats:

``json``
    One JSON document per part.  :func:`load_results` also ingests the
    *existing* canonical ``SweepResult.save`` format (outcomes in scenario
    order, indices implied by position), so plain serial sweep files merge
    with cluster parts.

``jsonl``
    Append-only JSON Lines — one header line, then one outcome per line,
    flushed and fsynced per write.  A crash mid-write loses at most the
    partial trailing line, which the loader detects and drops.

``columnar``
    A directory of append-only per-field column segments plus a
    merge-on-read manifest — dependency-free columnar storage for large
    grids: reading one metric across thousands of scenarios touches a few
    small files instead of parsing every outcome, and each flush seals only
    the new rows into a fresh segment instead of rewriting the part.  The
    ``summary`` is exploded into one column per metric field.

All three merge — in any mixture — into a canonical
:class:`~repro.runtime.sweep.SweepResult` via :func:`merge_results`, ordered
by global index and therefore *field-for-field identical* to a serial
``SweepRunner`` run regardless of shard count, stealing order or
crash-and-resume history.
"""

from __future__ import annotations

import dataclasses
import json
import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.metrics import MetricsSummary
from repro.runtime.cache import CACHE_VERSION, atomic_write_text
from repro.runtime.sweep import ScenarioOutcome, SweepResult

#: Columns an outcome is split into in the columnar format, in order.
_OUTCOME_FIELDS = [f.name for f in dataclasses.fields(ScenarioOutcome)
                   if f.name != "summary"]
_SUMMARY_FIELDS = [f.name for f in dataclasses.fields(MetricsSummary)]


class SinkError(ValueError):
    """A sink part could not be loaded or merged."""


class ResultSink(ABC):
    """Write-side interface workers stream outcomes through.

    Implementations must make :meth:`write` durable before returning — the
    coordinator's done-markers are written after the sink write, and a done
    marker with no recoverable sink record would lose a scenario.
    """

    #: Format name used in plan files and CLIs.
    kind: str = "base"

    def __init__(self, path: str | Path, master_seed: Optional[int] = None,
                 duration: float = 0.0) -> None:
        self.path = Path(path)
        self.master_seed = master_seed
        self.duration = duration

    @abstractmethod
    def write(self, index: int, outcome: ScenarioOutcome) -> None:
        """Durably record ``outcome`` for global scenario ``index``."""

    def close(self) -> None:
        """Flush any remaining state (writes are already durable)."""


class JsonResultSink(ResultSink):
    """One JSON document per part, rewritten atomically on every write.

    Matches the sweep engine's existing JSON idiom; the per-write rewrite
    makes it O(n^2) over a part's lifetime — fine for coarse grids, use
    ``jsonl`` for long ones.
    """

    kind = "json"

    def __init__(self, path: str | Path, master_seed: Optional[int] = None,
                 duration: float = 0.0) -> None:
        super().__init__(path, master_seed, duration)
        self._entries: dict[int, ScenarioOutcome] = {}
        if self.path.exists():  # resume an interrupted part
            for index, outcome in _load_json_entries(self.path):
                self._entries[index] = outcome

    def write(self, index: int, outcome: ScenarioOutcome) -> None:
        self._entries[index] = outcome
        payload = {
            "format": "sweep-json/v1",
            "cache_version": CACHE_VERSION,
            "master_seed": self.master_seed,
            "duration": self.duration,
            "entries": [{"index": i, "outcome": self._entries[i].to_dict()}
                        for i in sorted(self._entries)],
        }
        atomic_write_text(self.path, json.dumps(payload))


class JsonlResultSink(ResultSink):
    """Append-only JSON Lines part — crash-safe incremental writes."""

    kind = "jsonl"

    def __init__(self, path: str | Path, master_seed: Optional[int] = None,
                 duration: float = 0.0) -> None:
        super().__init__(path, master_seed, duration)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_torn_tail()
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = self.path.open("a", encoding="utf-8")
        if fresh:
            header = {"format": "sweep-jsonl/v1",
                      "cache_version": CACHE_VERSION,
                      "master_seed": self.master_seed,
                      "duration": self.duration}
            self._append(header)

    def _repair_torn_tail(self) -> None:
        """Truncate a partial trailing line left by a crash mid-write.

        Without this, resuming a part (same worker id after a restart)
        would append the next record onto the torn line, fusing two records
        into one corrupt line that the loader then drops — losing the
        re-executed scenario *after* its done marker exists.
        """
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1  # 0 when even the header is torn
        with self.path.open("r+b") as handle:
            handle.truncate(keep)

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def write(self, index: int, outcome: ScenarioOutcome) -> None:
        self._append({"index": index, "outcome": outcome.to_dict()})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class ColumnarResultSink(ResultSink):
    """Append-only column *segments* plus a merge-on-read manifest.

    Layout::

        part.columnar/
          manifest.json            # format, segment list, column list, seed
          seg-000000/index.json    # [3, 17, 4, ...]   (rows of segment 0)
          seg-000000/status.json   # ["ok", "ok", ...]
          seg-000000/summary.throughput.json
          seg-000001/...           # rows flushed later
          ...

    Rows append in completion order; the global index column carries the
    ordering needed at merge time.  Every ``flush_every`` writes (default 1,
    i.e. durable per write) the rows accumulated since the last flush are
    **sealed into a brand-new segment** — the v1 format instead rewrote
    every column in full on every flush, an O(n²) lifetime cost that
    dominated huge grids.  Readers merge the segments in manifest order
    (concatenation), so the loaded rows are identical to what a single
    monolithic part would hold.  The manifest is written last: a crash
    mid-flush leaves an orphaned, unlisted segment directory that the next
    flush simply overwrites, plus at most the unflushed rows, which their
    workers' leases will recycle.

    ``load_results`` still reads v1 parts (a v1 manifest is treated as one
    implicit segment named ``columns``).
    """

    kind = "columnar"
    FORMAT = "sweep-columnar/v2"

    def __init__(self, path: str | Path, master_seed: Optional[int] = None,
                 duration: float = 0.0, flush_every: int = 1) -> None:
        super().__init__(path, master_seed, duration)
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.flush_every = flush_every
        #: Rows accumulated since the last flush (the open segment).
        self._pending: list[tuple[int, ScenarioOutcome]] = []
        #: Sealed segments, in append order: ``{"name": ..., "rows": n}``.
        self._segments: list[dict] = []
        manifest_path = self.path / "manifest.json"
        if manifest_path.exists():  # resume a part: adopt sealed segments
            manifest = json.loads(manifest_path.read_text())
            self._segments = _manifest_segments(manifest)

    def write(self, index: int, outcome: ScenarioOutcome) -> None:
        self._pending.append((index, outcome))
        if len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Seal the pending rows into a new segment, then the manifest."""
        if not self._pending:
            return
        name = f"seg-{len(self._segments):06d}"
        segment_dir = self.path / name
        segment_dir.mkdir(parents=True, exist_ok=True)
        columns: dict[str, list] = {"index": [i for i, _ in self._pending]}
        for field in _OUTCOME_FIELDS:
            columns[field] = [getattr(outcome, field)
                              for _, outcome in self._pending]
        for field in _SUMMARY_FIELDS:
            columns[f"summary.{field}"] = [
                None if outcome.summary is None
                else getattr(outcome.summary, field)
                for _, outcome in self._pending]
        for field, values in columns.items():
            atomic_write_text(segment_dir / f"{field}.json",
                              json.dumps(values))
        self._segments.append({"name": name, "rows": len(self._pending)})
        manifest = {
            "format": self.FORMAT,
            "cache_version": CACHE_VERSION,
            "master_seed": self.master_seed,
            "duration": self.duration,
            "rows": sum(segment["rows"] for segment in self._segments),
            "segments": list(self._segments),
            "columns": sorted(columns),
        }
        atomic_write_text(self.path / "manifest.json",
                          json.dumps(manifest, indent=2))
        self._pending.clear()

    def close(self) -> None:
        self.flush()


#: kind -> sink class.
SINK_KINDS: dict[str, type[ResultSink]] = {
    sink.kind: sink
    for sink in (JsonResultSink, JsonlResultSink, ColumnarResultSink)
}


def open_sink(kind: str, path: str | Path,
              master_seed: Optional[int] = None,
              duration: float = 0.0) -> ResultSink:
    """Instantiate a sink by format name (``json``/``jsonl``/``columnar``)."""
    try:
        sink_cls = SINK_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown sink kind {kind!r}; "
                         f"expected one of {sorted(SINK_KINDS)}") from None
    return sink_cls(path, master_seed=master_seed, duration=duration)


def part_name(kind: str, worker_id: str) -> str:
    """Canonical part file/directory name for one worker."""
    suffix = {"json": ".json", "jsonl": ".jsonl",
              "columnar": ".columnar"}[kind]
    return f"part-{worker_id}{suffix}"


# --------------------------------------------------------------------------- #
# Loading
# --------------------------------------------------------------------------- #
def _load_json_entries(path: Path) -> list[tuple[int, ScenarioOutcome]]:
    data = json.loads(path.read_text())
    if not isinstance(data, dict):
        raise SinkError(f"{path}: not a sweep JSON document")
    if "entries" in data:  # part format
        return [(entry["index"], ScenarioOutcome.from_dict(entry["outcome"]))
                for entry in data["entries"]]
    if "outcomes" in data:  # canonical SweepResult.save format
        result = SweepResult.from_dict(data)
        return list(enumerate(result.outcomes))
    raise SinkError(f"{path}: neither a part file nor a SweepResult document")


def _load_jsonl_entries(path: Path) -> list[tuple[int, ScenarioOutcome]]:
    entries: list[tuple[int, ScenarioOutcome]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # partial trailing line from a crash mid-write
            raise SinkError(f"{path}:{lineno + 1}: corrupt JSONL record")
        if "index" in record:
            entries.append((record["index"],
                            ScenarioOutcome.from_dict(record["outcome"])))
    return entries


def _manifest_segments(manifest: dict) -> list[dict]:
    """Segment list of a columnar manifest (v2), or the single implicit
    segment a v1 manifest describes (its columns live under ``columns/``)."""
    if "segments" in manifest:
        return [dict(segment) for segment in manifest["segments"]]
    return [{"name": "columns", "rows": manifest["rows"]}]


def _load_columnar_segment(path: Path, segment_dir: Path, rows: int,
                           recorded_columns=None,
                           ) -> list[tuple[int, ScenarioOutcome]]:
    def column(name: str) -> list:
        values = json.loads((segment_dir / f"{name}.json").read_text())
        if len(values) < rows:
            raise SinkError(f"{path}: column {segment_dir.name}/{name} has "
                            f"{len(values)} rows, manifest says {rows}")
        # A crash between column flushes can leave a column *longer* than
        # the manifest (manifest is written last): trust the manifest.
        return values[:rows]

    def known(name: str) -> bool:
        # Fields added after a part was written (e.g. ``engine``) have no
        # column in older segments; ``from_dict`` supplies their defaults.
        # The manifest's recorded column list is authoritative: a column it
        # names must exist (a missing file is damage, reported loudly via
        # the read below), while an unrecorded field is skipped.  Pre-v2
        # manifests without a column list fall back to an existence check.
        if recorded_columns is not None:
            return name in recorded_columns
        return (segment_dir / f"{name}.json").exists()

    indices = column("index")
    outcome_columns = {name: column(name) for name in _OUTCOME_FIELDS
                       if known(name)}
    summary_columns = {name: column(f"summary.{name}")
                       for name in _SUMMARY_FIELDS
                       if known(f"summary.{name}")}
    entries = []
    for row in range(rows):
        data = {name: values[row]
                for name, values in outcome_columns.items()}
        if summary_columns["duration"][row] is not None:
            data["summary"] = {name: values[row]
                               for name, values in summary_columns.items()}
        else:
            data["summary"] = None
        entries.append((indices[row], ScenarioOutcome.from_dict(data)))
    return entries


def _load_columnar_entries(path: Path) -> list[tuple[int, ScenarioOutcome]]:
    """Merge-on-read: concatenate the manifest's segments in append order."""
    manifest = json.loads((path / "manifest.json").read_text())
    recorded = manifest.get("columns")
    entries: list[tuple[int, ScenarioOutcome]] = []
    for segment in _manifest_segments(manifest):
        entries.extend(_load_columnar_segment(path, path / segment["name"],
                                              segment["rows"],
                                              recorded_columns=recorded))
    return entries


def _header_of(path: Path) -> dict:
    """The (master_seed, duration) header of any sink part, if recoverable."""
    try:
        if path.is_dir():
            return json.loads((path / "manifest.json").read_text())
        if path.suffix == ".jsonl":
            with path.open(encoding="utf-8") as handle:
                first = handle.readline()
            return json.loads(first) if first.strip() else {}
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}


def load_results(path: str | Path) -> list[tuple[int, ScenarioOutcome]]:
    """Load ``(index, outcome)`` pairs from any sink part or SweepResult file.

    The format is detected from the path: a directory is columnar, a
    ``.jsonl`` file is JSON Lines, anything else is parsed as JSON (part
    format or the canonical ``SweepResult.save`` document).
    """
    path = Path(path)
    if path.is_dir():
        return _load_columnar_entries(path)
    if path.suffix == ".jsonl":
        return _load_jsonl_entries(path)
    return _load_json_entries(path)


def merge_results(sources: Iterable[str | Path],
                  expected_count: Optional[int] = None,
                  master_seed: Optional[int] = None,
                  duration: Optional[float] = None) -> SweepResult:
    """Merge any mixture of sink parts into a canonical :class:`SweepResult`.

    Sources are read in sorted-path order; duplicate indices (a stolen
    scenario double-executed around a stale lease takeover) must agree on
    every compared outcome field — determinism means re-execution is
    idempotent — and the first occurrence wins.  With ``expected_count`` the
    merge fails loudly on missing indices instead of returning a partial
    result.
    """
    combined: dict[int, ScenarioOutcome] = {}
    seed_header = master_seed
    duration_header = duration
    for source in sorted(Path(s) for s in sources):
        header = _header_of(source)
        for key, current in (("master_seed", seed_header),
                             ("duration", duration_header)):
            value = header.get(key)
            if value is None:
                continue
            if current is not None and value != current:
                raise SinkError(
                    f"{source}: {key} {value!r} disagrees with {current!r} "
                    f"from other parts — parts belong to different sweeps")
        seed_header = (seed_header if seed_header is not None
                       else header.get("master_seed"))
        duration_header = (duration_header if duration_header is not None
                           else header.get("duration"))
        for index, outcome in load_results(source):
            existing = combined.get(index)
            if existing is None:
                combined[index] = outcome
            elif existing != outcome:
                raise SinkError(
                    f"{source}: scenario index {index} was recorded twice "
                    f"with diverging results — determinism violation")
    if expected_count is not None:
        missing = sorted(set(range(expected_count)) - set(combined))
        if missing:
            raise SinkError(f"merge is missing {len(missing)} scenario(s): "
                            f"indices {missing[:10]}"
                            + ("..." if len(missing) > 10 else ""))
        extra = sorted(set(combined) - set(range(expected_count)))
        if extra:
            raise SinkError(f"merge has out-of-range indices {extra[:10]}")
    outcomes = [combined[index] for index in sorted(combined)]
    return SweepResult(master_seed=seed_header,
                       duration=duration_header if duration_header is not None
                       else (outcomes[0].duration if outcomes else 0.0),
                       outcomes=outcomes)
