"""Streaming result sinks for sharded sweeps.

A :class:`ResultSink` receives ``(global scenario index, ScenarioOutcome)``
pairs as workers finish scenarios and persists them durably — ``write``
returning means the outcome survives a worker crash.  Three formats:

``json``
    One JSON document per part.  :func:`load_results` also ingests the
    *existing* canonical ``SweepResult.save`` format (outcomes in scenario
    order, indices implied by position), so plain serial sweep files merge
    with cluster parts.

``jsonl``
    Append-only JSON Lines — one header line, then one outcome per line,
    flushed and fsynced per write.  A crash mid-write loses at most the
    partial trailing line, which the loader detects and drops.

``columnar``
    A directory of per-field JSON arrays plus a manifest — dependency-free
    columnar storage for large grids: reading one metric across thousands
    of scenarios touches one small file instead of parsing every outcome.
    The ``summary`` is exploded into one column per metric field.

All three merge — in any mixture — into a canonical
:class:`~repro.runtime.sweep.SweepResult` via :func:`merge_results`, ordered
by global index and therefore *field-for-field identical* to a serial
``SweepRunner`` run regardless of shard count, stealing order or
crash-and-resume history.
"""

from __future__ import annotations

import dataclasses
import json
import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.metrics import MetricsSummary
from repro.runtime.cache import CACHE_VERSION, atomic_write_text
from repro.runtime.sweep import ScenarioOutcome, SweepResult

#: Columns an outcome is split into in the columnar format, in order.
_OUTCOME_FIELDS = [f.name for f in dataclasses.fields(ScenarioOutcome)
                   if f.name != "summary"]
_SUMMARY_FIELDS = [f.name for f in dataclasses.fields(MetricsSummary)]


class SinkError(ValueError):
    """A sink part could not be loaded or merged."""


class ResultSink(ABC):
    """Write-side interface workers stream outcomes through.

    Implementations must make :meth:`write` durable before returning — the
    coordinator's done-markers are written after the sink write, and a done
    marker with no recoverable sink record would lose a scenario.
    """

    #: Format name used in plan files and CLIs.
    kind: str = "base"

    def __init__(self, path: str | Path, master_seed: Optional[int] = None,
                 duration: float = 0.0) -> None:
        self.path = Path(path)
        self.master_seed = master_seed
        self.duration = duration

    @abstractmethod
    def write(self, index: int, outcome: ScenarioOutcome) -> None:
        """Durably record ``outcome`` for global scenario ``index``."""

    def close(self) -> None:
        """Flush any remaining state (writes are already durable)."""


class JsonResultSink(ResultSink):
    """One JSON document per part, rewritten atomically on every write.

    Matches the sweep engine's existing JSON idiom; the per-write rewrite
    makes it O(n^2) over a part's lifetime — fine for coarse grids, use
    ``jsonl`` for long ones.
    """

    kind = "json"

    def __init__(self, path: str | Path, master_seed: Optional[int] = None,
                 duration: float = 0.0) -> None:
        super().__init__(path, master_seed, duration)
        self._entries: dict[int, ScenarioOutcome] = {}
        if self.path.exists():  # resume an interrupted part
            for index, outcome in _load_json_entries(self.path):
                self._entries[index] = outcome

    def write(self, index: int, outcome: ScenarioOutcome) -> None:
        self._entries[index] = outcome
        payload = {
            "format": "sweep-json/v1",
            "cache_version": CACHE_VERSION,
            "master_seed": self.master_seed,
            "duration": self.duration,
            "entries": [{"index": i, "outcome": self._entries[i].to_dict()}
                        for i in sorted(self._entries)],
        }
        atomic_write_text(self.path, json.dumps(payload))


class JsonlResultSink(ResultSink):
    """Append-only JSON Lines part — crash-safe incremental writes."""

    kind = "jsonl"

    def __init__(self, path: str | Path, master_seed: Optional[int] = None,
                 duration: float = 0.0) -> None:
        super().__init__(path, master_seed, duration)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_torn_tail()
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = self.path.open("a", encoding="utf-8")
        if fresh:
            header = {"format": "sweep-jsonl/v1",
                      "cache_version": CACHE_VERSION,
                      "master_seed": self.master_seed,
                      "duration": self.duration}
            self._append(header)

    def _repair_torn_tail(self) -> None:
        """Truncate a partial trailing line left by a crash mid-write.

        Without this, resuming a part (same worker id after a restart)
        would append the next record onto the torn line, fusing two records
        into one corrupt line that the loader then drops — losing the
        re-executed scenario *after* its done marker exists.
        """
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1  # 0 when even the header is torn
        with self.path.open("r+b") as handle:
            handle.truncate(keep)

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def write(self, index: int, outcome: ScenarioOutcome) -> None:
        self._append({"index": index, "outcome": outcome.to_dict()})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class ColumnarResultSink(ResultSink):
    """Per-field JSON arrays plus a manifest, in a part *directory*.

    Layout::

        part.columnar/
          manifest.json            # format, row count, column list, seed
          columns/index.json       # [3, 17, 4, ...]
          columns/status.json      # ["ok", "ok", ...]
          columns/summary.throughput.json
          ...

    Rows append in completion order; the global index column carries the
    ordering needed at merge time.  Every ``flush_every`` writes (default 1,
    i.e. durable per write) the columns are rewritten atomically, manifest
    last — a crash leaves the previous consistent snapshot plus at most the
    rows since the last flush, which their workers' leases will recycle.
    """

    kind = "columnar"

    def __init__(self, path: str | Path, master_seed: Optional[int] = None,
                 duration: float = 0.0, flush_every: int = 1) -> None:
        super().__init__(path, master_seed, duration)
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.flush_every = flush_every
        self._rows: list[tuple[int, ScenarioOutcome]] = []
        self._unflushed = 0
        if (self.path / "manifest.json").exists():  # resume a part
            self._rows = list(_load_columnar_entries(self.path))

    def write(self, index: int, outcome: ScenarioOutcome) -> None:
        self._rows.append((index, outcome))
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Rewrite all column files and then the manifest, atomically."""
        columns_dir = self.path / "columns"
        columns_dir.mkdir(parents=True, exist_ok=True)
        columns: dict[str, list] = {"index": [i for i, _ in self._rows]}
        for name in _OUTCOME_FIELDS:
            columns[name] = [getattr(outcome, name)
                             for _, outcome in self._rows]
        for name in _SUMMARY_FIELDS:
            columns[f"summary.{name}"] = [
                None if outcome.summary is None
                else getattr(outcome.summary, name)
                for _, outcome in self._rows]
        for name, values in columns.items():
            atomic_write_text(columns_dir / f"{name}.json",
                              json.dumps(values))
        manifest = {
            "format": "sweep-columnar/v1",
            "cache_version": CACHE_VERSION,
            "master_seed": self.master_seed,
            "duration": self.duration,
            "rows": len(self._rows),
            "columns": sorted(columns),
        }
        atomic_write_text(self.path / "manifest.json",
                          json.dumps(manifest, indent=2))
        self._unflushed = 0

    def close(self) -> None:
        if self._unflushed:
            self.flush()


#: kind -> sink class.
SINK_KINDS: dict[str, type[ResultSink]] = {
    sink.kind: sink
    for sink in (JsonResultSink, JsonlResultSink, ColumnarResultSink)
}


def open_sink(kind: str, path: str | Path,
              master_seed: Optional[int] = None,
              duration: float = 0.0) -> ResultSink:
    """Instantiate a sink by format name (``json``/``jsonl``/``columnar``)."""
    try:
        sink_cls = SINK_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown sink kind {kind!r}; "
                         f"expected one of {sorted(SINK_KINDS)}") from None
    return sink_cls(path, master_seed=master_seed, duration=duration)


def part_name(kind: str, worker_id: str) -> str:
    """Canonical part file/directory name for one worker."""
    suffix = {"json": ".json", "jsonl": ".jsonl",
              "columnar": ".columnar"}[kind]
    return f"part-{worker_id}{suffix}"


# --------------------------------------------------------------------------- #
# Loading
# --------------------------------------------------------------------------- #
def _load_json_entries(path: Path) -> list[tuple[int, ScenarioOutcome]]:
    data = json.loads(path.read_text())
    if not isinstance(data, dict):
        raise SinkError(f"{path}: not a sweep JSON document")
    if "entries" in data:  # part format
        return [(entry["index"], ScenarioOutcome.from_dict(entry["outcome"]))
                for entry in data["entries"]]
    if "outcomes" in data:  # canonical SweepResult.save format
        result = SweepResult.from_dict(data)
        return list(enumerate(result.outcomes))
    raise SinkError(f"{path}: neither a part file nor a SweepResult document")


def _load_jsonl_entries(path: Path) -> list[tuple[int, ScenarioOutcome]]:
    entries: list[tuple[int, ScenarioOutcome]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # partial trailing line from a crash mid-write
            raise SinkError(f"{path}:{lineno + 1}: corrupt JSONL record")
        if "index" in record:
            entries.append((record["index"],
                            ScenarioOutcome.from_dict(record["outcome"])))
    return entries


def _load_columnar_entries(path: Path) -> list[tuple[int, ScenarioOutcome]]:
    manifest = json.loads((path / "manifest.json").read_text())
    rows = manifest["rows"]
    columns_dir = path / "columns"

    def column(name: str) -> list:
        values = json.loads((columns_dir / f"{name}.json").read_text())
        if len(values) < rows:
            raise SinkError(f"{path}: column {name} has {len(values)} rows, "
                            f"manifest says {rows}")
        # A crash between column flushes can leave a column *longer* than
        # the manifest (manifest is written last): trust the manifest.
        return values[:rows]

    indices = column("index")
    outcome_columns = {name: column(name) for name in _OUTCOME_FIELDS}
    summary_columns = {name: column(f"summary.{name}")
                       for name in _SUMMARY_FIELDS}
    entries = []
    for row in range(rows):
        data = {name: values[row]
                for name, values in outcome_columns.items()}
        if summary_columns["duration"][row] is not None:
            data["summary"] = {name: values[row]
                               for name, values in summary_columns.items()}
        else:
            data["summary"] = None
        entries.append((indices[row], ScenarioOutcome.from_dict(data)))
    return entries


def _header_of(path: Path) -> dict:
    """The (master_seed, duration) header of any sink part, if recoverable."""
    try:
        if path.is_dir():
            return json.loads((path / "manifest.json").read_text())
        if path.suffix == ".jsonl":
            with path.open(encoding="utf-8") as handle:
                first = handle.readline()
            return json.loads(first) if first.strip() else {}
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}


def load_results(path: str | Path) -> list[tuple[int, ScenarioOutcome]]:
    """Load ``(index, outcome)`` pairs from any sink part or SweepResult file.

    The format is detected from the path: a directory is columnar, a
    ``.jsonl`` file is JSON Lines, anything else is parsed as JSON (part
    format or the canonical ``SweepResult.save`` document).
    """
    path = Path(path)
    if path.is_dir():
        return _load_columnar_entries(path)
    if path.suffix == ".jsonl":
        return _load_jsonl_entries(path)
    return _load_json_entries(path)


def merge_results(sources: Iterable[str | Path],
                  expected_count: Optional[int] = None,
                  master_seed: Optional[int] = None,
                  duration: Optional[float] = None) -> SweepResult:
    """Merge any mixture of sink parts into a canonical :class:`SweepResult`.

    Sources are read in sorted-path order; duplicate indices (a stolen
    scenario double-executed around a stale lease takeover) must agree on
    every compared outcome field — determinism means re-execution is
    idempotent — and the first occurrence wins.  With ``expected_count`` the
    merge fails loudly on missing indices instead of returning a partial
    result.
    """
    combined: dict[int, ScenarioOutcome] = {}
    seed_header = master_seed
    duration_header = duration
    for source in sorted(Path(s) for s in sources):
        header = _header_of(source)
        for key, current in (("master_seed", seed_header),
                             ("duration", duration_header)):
            value = header.get(key)
            if value is None:
                continue
            if current is not None and value != current:
                raise SinkError(
                    f"{source}: {key} {value!r} disagrees with {current!r} "
                    f"from other parts — parts belong to different sweeps")
        seed_header = (seed_header if seed_header is not None
                       else header.get("master_seed"))
        duration_header = (duration_header if duration_header is not None
                           else header.get("duration"))
        for index, outcome in load_results(source):
            existing = combined.get(index)
            if existing is None:
                combined[index] = outcome
            elif existing != outcome:
                raise SinkError(
                    f"{source}: scenario index {index} was recorded twice "
                    f"with diverging results — determinism violation")
    if expected_count is not None:
        missing = sorted(set(range(expected_count)) - set(combined))
        if missing:
            raise SinkError(f"merge is missing {len(missing)} scenario(s): "
                            f"indices {missing[:10]}"
                            + ("..." if len(missing) > 10 else ""))
        extra = sorted(set(combined) - set(range(expected_count)))
        if extra:
            raise SinkError(f"merge has out-of-range indices {extra[:10]}")
    outcomes = [combined[index] for index in sorted(combined)]
    return SweepResult(master_seed=seed_header,
                       duration=duration_header if duration_header is not None
                       else (outcomes[0].duration if outcomes else 0.0),
                       outcomes=outcomes)
