"""Transport abstraction for the cluster coordinator/worker protocol.

PR 3's shard/lease/steal protocol was defined directly in terms of files in
a shared directory.  This module lifts the protocol's *operations* — fetch
the plan, register a worker, snapshot task state, claim a lease (including
stale-lease takeover), heartbeat, submit a durable result — into a
:class:`Transport` contract that the planner/worker/stealing/lease machinery
runs against unchanged.  Two implementations:

:class:`FilesystemTransport`
    The shared-directory protocol, verbatim: atomic ``O_CREAT | O_EXCL``
    lease creation, mtime heartbeats, tmp-and-rename takeovers and done
    markers, per-worker sink parts.  A sharded sweep through this transport
    is bit-identical to PR 3's behaviour.

:class:`SocketTransport`
    The same operations as length-prefixed JSON frames over one TCP
    connection to a ``python -m repro.cluster.serve`` coordinator.  The
    server answers every frame by applying the operation to its *local*
    :class:`FilesystemTransport` — leases are granted atomically server-side,
    results stream into the server's :class:`~repro.cluster.sinks.ResultSink`
    parts, and coordinator state (leases, done markers, parts) stays durable
    across a coordinator restart.  Workers need no shared filesystem at all.

Because both transports implement one contract over the *same* authoritative
semantics, the merged :class:`~repro.runtime.sweep.SweepResult` of a sweep is
field-for-field identical regardless of transport, shard count, stealing
order or crash history — execution determinism depends only on
(spec, seed, backend), never on the wire.

Wire format (``SocketTransport`` <-> ``repro.cluster.serve``): each frame is
a 4-byte big-endian length prefix followed by one UTF-8 JSON object.
Requests carry ``{"op": <name>, ...}``; responses carry ``{"ok": true, ...}``
or ``{"ok": false, "error": <message>}``.  One request is answered by exactly
one response, in order, per connection.

Delivery semantics: every protocol operation is **idempotent** — claims
re-grant to their current owner, registrations return the recorded shard,
submits are deduplicated on ``(task_index, worker_id, attempt)`` and by the
done marker, heartbeats are pure refreshes.  A client that loses the
connection mid-request therefore cannot tell whether the operation was
applied, *and does not need to*: :meth:`SocketTransport.request` retries
idempotent operations with bounded backoff, and a duplicate delivery
commutes into a no-op.  Lease ages are computed on a single clock
authority — the coordinator's clock for the socket transport, and
mtime-relative with a configurable skew tolerance for the filesystem
transport (see ``ClusterPlan.clock_skew_tolerance``) — so cross-machine
clock skew cannot fake a stale lease.  ``repro.cluster.faults`` injects
drops, duplicates, resets, delays, stale replays, crashes and skew against
exactly these guarantees.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional

from repro.cluster.coordinator import (
    RESULTS_DIR,
    TASKS_DIR,
    TELEMETRY_DIR,
    WORKERS_DIR,
    ClusterPlan,
    atomic_write_json,
    done_path,
    lease_path,
)
from repro.cluster.sinks import ResultSink, open_sink, part_name
from repro.runtime.guard import (
    QUARANTINED,
    GuardPolicy,
    QuarantineRecord,
    QuarantineStore,
)
from repro.runtime.sweep import ScenarioOutcome


class TransportError(RuntimeError):
    """A transport operation failed (protocol error, connection loss, ...)."""


class FrameTooLarge(TransportError):
    """A peer announced a frame beyond :data:`MAX_FRAME_BYTES`.

    The announced body has **not** been consumed — carrying ``length`` lets
    the server drain it to resynchronise the stream and answer with a
    structured error instead of dropping the connection.
    """

    def __init__(self, message: str, length: int) -> None:
        super().__init__(message)
        self.length = length


class FrameDecodeError(TransportError):
    """A complete frame body was read but could not be decoded.

    The stream is still at a frame boundary, so the connection can keep
    serving after a structured error response.
    """


#: Operations that are safe to deliver more than once: claims re-grant to
#: their owner, registrations return the recorded shard, submits dedupe on
#: ``(index, worker_id, attempt)``, heartbeats are pure refreshes, telemetry
#: uploads are whole-snapshot last-write-wins, and the read-only ops
#: (plan/snapshot/status) have no effect at all.  Only these may be retried
#: after a connection error whose outcome is unknown — which, after this set
#: grew to cover the whole protocol, is every operation.
IDEMPOTENT_OPS = frozenset({
    "plan", "register", "snapshot", "claim", "heartbeat", "submit", "status",
    "telemetry", "fail",
})


# --------------------------------------------------------------------------- #
# Frame codec (shared by SocketTransport and repro.cluster.serve)
# --------------------------------------------------------------------------- #
_FRAME_HEADER = struct.Struct(">I")

#: Upper bound on one frame (a submit carries one outcome — far below this).
MAX_FRAME_BYTES = 64 * 1024 * 1024


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Send one length-prefixed JSON frame."""
    body = json.dumps(payload).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {len(body)} bytes exceeds the "
                             f"{MAX_FRAME_BYTES}-byte limit")
    sock.sendall(_FRAME_HEADER.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Receive one frame; ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _FRAME_HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"peer announced a {length}-byte frame, "
                            f"limit is {MAX_FRAME_BYTES}", length)
    body = _recv_exact(sock, length, allow_eof=False)
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameDecodeError(f"undecodable frame: {error}") from None
    if not isinstance(frame, dict):
        raise FrameDecodeError(
            f"frame is not an object: {type(frame).__name__}")
    return frame


def drain_exact(sock: socket.socket, count: int) -> bool:
    """Read and discard ``count`` bytes; ``False`` if the peer hangs up.

    Used by the server to consume the body of an oversized announced frame
    so the stream lands back on a frame boundary and the connection can
    keep serving after a structured error response.
    """
    remaining = count
    try:
        while remaining:
            chunk = sock.recv(min(remaining, 1 << 20))
            if not chunk:
                return False
            remaining -= len(chunk)
    except OSError:
        return False
    return True


def _recv_exact(sock: socket.socket, count: int,
                allow_eof: bool) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# --------------------------------------------------------------------------- #
# Task-state snapshot
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TaskSnapshot:
    """Point-in-time view of every scenario's lease/done state.

    Workers select claim candidates from a snapshot (one bulk operation —
    one network round trip on the socket transport instead of two per
    scenario) and then validate each choice with the authoritative, atomic
    :meth:`Transport.try_claim`; a stale snapshot therefore costs at most a
    refused claim, never a double execution.
    """

    done: frozenset[int]
    #: Global index -> seconds since the lease's last heartbeat.  Absent
    #: indices are unleased.
    lease_ages: Mapping[int, float] = field(default_factory=dict)

    def is_done(self, index: int) -> bool:
        """Whether ``index`` has a done marker."""
        return index in self.done

    def is_available(self, index: int, lease_timeout: float) -> bool:
        """Pending: not done and not covered by a live lease."""
        if index in self.done:
            return False
        age = self.lease_ages.get(index)
        return age is None or age >= lease_timeout

    def to_dict(self) -> dict:
        """JSON-serialisable form (JSON keys become strings)."""
        return {"done": sorted(self.done),
                "lease_ages": {str(index): age
                               for index, age in self.lease_ages.items()}}

    @classmethod
    def from_dict(cls, data: dict) -> "TaskSnapshot":
        """Rebuild a snapshot received over the wire."""
        return cls(done=frozenset(data["done"]),
                   lease_ages={int(index): age
                               for index, age in data["lease_ages"].items()})


# --------------------------------------------------------------------------- #
# Contract
# --------------------------------------------------------------------------- #
class Transport(ABC):
    """The coordinator/worker protocol, independent of how bytes move.

    Implementations must guarantee:

    * :meth:`try_claim` is **atomic**: of any number of concurrent claims for
      one index, at most one is granted — and a grant on an index whose lease
      is stale *takes the lease over* (the crashed owner's heartbeats, if it
      resurrects, report the lease as lost).
    * :meth:`submit_result` is **durable before it returns**, and records the
      result *before* the done marker — a crash between the two re-executes
      the scenario (harmless, deterministic) rather than losing it.
    * Every operation is **idempotent** (see :data:`IDEMPOTENT_OPS`): a
      duplicated or retried delivery commutes into a no-op, so a caller that
      cannot tell whether a request was applied may simply send it again.
    """

    #: Transport name used in logs and tests.
    kind: str = "base"

    #: The parsed cluster plan every worker executes from.
    plan: ClusterPlan

    @abstractmethod
    def register_worker(self, worker_id: str, shard: Optional[int]) -> int:
        """Register ``worker_id`` and return its home shard (auto-assigned
        round-robin over existing registrations when ``shard`` is None)."""

    @abstractmethod
    def snapshot(self) -> TaskSnapshot:
        """Current done/lease state of every scenario."""

    @abstractmethod
    def try_claim(self, index: int, worker_id: str) -> bool:
        """Atomically try to acquire the lease for ``index``."""

    @abstractmethod
    def heartbeat(self, index: int, worker_id: str) -> bool:
        """Refresh the lease; ``False`` once the lease is no longer owned by
        ``worker_id`` (taken over after going stale) — stop beating then."""

    @abstractmethod
    def submit_result(self, worker_id: str, index: int,
                      outcome: ScenarioOutcome, attempt: int = 0) -> None:
        """Durably record ``outcome`` and then mark ``index`` done.

        ``attempt`` distinguishes separate *executions* by the same worker
        from duplicate *deliveries* of one execution: re-sending a submit
        with the same ``(index, worker_id, attempt)`` key (a retry after a
        connection reset whose first delivery may have been applied) writes
        the sink record at most once."""

    def record_failure(self, worker_id: str, index: int,
                       outcome: ScenarioOutcome, attempt: int = 0) -> dict:
        """Report a failed execution of ``index`` *without* marking it done.

        The supervision path of a guarded plan: the failure is recorded
        durably, the reporter's lease is released (another worker may try
        immediately), and the coordinator side charges the scenario's
        retry budget — one unit per recorded failure *or* lease death.
        Returns ``{"attempts": <spent>, "quarantined": <bool>}``; once the
        budget is spent the scenario is quarantined (durable record, a
        ``status="quarantined"`` sink outcome, done marker) so the sweep
        completes without it.  Deliveries dedupe on ``(index, worker_id,
        attempt)`` like submits, keeping the op idempotent.
        """
        raise TransportError(
            f"{self.kind} transport does not support failure reporting")

    def send_telemetry(self, worker_id: str, metrics: dict) -> None:
        """Ship one worker's observability metrics snapshot.

        ``metrics`` is a whole-registry snapshot
        (:meth:`repro.obs.metrics.MetricsRegistry.to_dict`), so a duplicate
        or reordered delivery is last-write-wins over the same content —
        idempotent by construction.  Telemetry is best-effort side data: the
        default implementation drops it, and no sweep result depends on it.
        """

    def close(self) -> None:
        """Release connections / flush sinks."""


# --------------------------------------------------------------------------- #
# Filesystem implementation (the PR 3 protocol, extracted)
# --------------------------------------------------------------------------- #
class FilesystemTransport(Transport):
    """Shared-directory transport — every operation is an atomic file op.

    This is the protocol :mod:`repro.cluster.coordinator` documents, moved
    out of ``ClusterWorker`` so the worker loop is transport-agnostic.  It is
    also the authoritative state store behind ``repro.cluster.serve``: the
    TCP coordinator applies every remote operation to a local instance, so
    both transports share one battle-tested semantics.
    """

    kind = "filesystem"

    def __init__(self, cluster_dir: str | Path,
                 plan: Optional[ClusterPlan] = None,
                 clock: Callable[[], float] = time.time) -> None:
        self.cluster_dir = Path(cluster_dir)
        self.plan = plan if plan is not None else ClusterPlan.load(cluster_dir)
        #: This process's notion of wall-clock time.  Lease mtimes are
        #: written from it explicitly (instead of the filesystem's implicit
        #: "now") so fault injection can simulate a machine whose clock is
        #: skewed — and so the skew-tolerance math is testable at all.
        self.clock = clock
        self._sinks: dict[str, ResultSink] = {}
        #: Submit deliveries already applied by this process, keyed on
        #: ``(index, worker_id, attempt)`` — duplicate deliveries (retries
        #: after a reset, duplicated frames) skip the sink write.
        self._applied_submits: set[tuple[int, str, int]] = set()
        #: Failure deliveries already applied, same dedupe contract.
        self._applied_failures: set[tuple[int, str, int]] = set()
        #: Supervision policy of the plan (``None`` = pre-guard protocol:
        #: no death markers, no failure budget, no quarantine).
        self.guard: Optional[GuardPolicy] = self.plan.guard_policy()
        # Reentrant: submit_result holds it across the sink lookup *and* the
        # write — when this instance backs the TCP coordinator, a client
        # that timed out and reconnected can have two server threads
        # submitting under the same worker id, and interleaved writes on
        # one sink would tear the part.
        self._lock = threading.RLock()

    @property
    def _stale_after(self) -> float:
        """Observed lease age at which a lease counts as abandoned.

        The lease timeout plus the plan's clock-skew tolerance: an observed
        age mixes the writer's clock (mtime) with the reader's (now), so up
        to ``clock_skew_tolerance`` seconds of the age may be clock
        disagreement rather than missed heartbeats.
        """
        return self.plan.lease_timeout + self.plan.clock_skew_tolerance

    # -- registration -------------------------------------------------- #
    def register_worker(self, worker_id: str, shard: Optional[int]) -> int:
        workers_dir = self.cluster_dir / WORKERS_DIR
        num_shards = self.plan.shard_plan.num_shards
        with self._lock:
            workers_dir.mkdir(parents=True, exist_ok=True)
            record = workers_dir / f"{worker_id}.json"
            if record.exists():
                # Idempotent re-registration (a retried register frame, or a
                # resurrected worker with the same id): return the recorded
                # shard instead of re-counting registrations — counting
                # again would round-robin the duplicate onto a *different*
                # shard.
                try:
                    recorded = json.loads(record.read_text()).get("shard")
                except (OSError, json.JSONDecodeError):
                    recorded = None
                if recorded is not None and (shard is None
                                             or shard == recorded):
                    return int(recorded)
            if shard is None:
                existing = len(list(workers_dir.glob("*.json")))
                shard = existing % num_shards
            if not 0 <= shard < num_shards:
                raise TransportError(f"shard {shard} out of range "
                                     f"(plan has {num_shards} shards)")
            atomic_write_json(record,
                              {"worker_id": worker_id, "shard": shard,
                               "registered_at": self.clock()})
        return shard

    def registered_workers(self) -> int:
        """Number of worker registrations (never decreases)."""
        workers_dir = self.cluster_dir / WORKERS_DIR
        if not workers_dir.exists():
            return 0
        return len(list(workers_dir.glob("*.json")))

    # -- task state ---------------------------------------------------- #
    def _is_done(self, index: int) -> bool:
        return done_path(self.cluster_dir, index).exists()

    def _lease_age(self, index: int) -> Optional[float]:
        """Observed lease age on *this* process's clock, raw (no tolerance)."""
        try:
            return self.clock() - lease_path(self.cluster_dir,
                                             index).stat().st_mtime
        except OSError:
            return None

    def snapshot(self) -> TaskSnapshot:
        """Done/lease state with **skew-adjusted** lease ages.

        Reported ages are the observed age minus the skew tolerance (floored
        at zero), so a consumer comparing them against the plain lease
        timeout — :meth:`TaskSnapshot.is_available` — applies exactly the
        single staleness rule of this transport, and up to
        ``clock_skew_tolerance`` seconds of clock disagreement between the
        lease writer and this reader can never fake a stale lease.
        """
        tolerance = self.plan.clock_skew_tolerance
        done = set()
        lease_ages = {}
        for index in range(len(self.plan.specs)):
            if self._is_done(index):
                done.add(index)
                continue
            age = self._lease_age(index)
            if age is not None:
                lease_ages[index] = max(0.0, age - tolerance)
        return TaskSnapshot(done=frozenset(done), lease_ages=lease_ages)

    def _touch(self, lease: Path) -> None:
        """Stamp the lease mtime from this process's (possibly skewed) clock."""
        now = self.clock()
        os.utime(lease, (now, now))

    # -- claiming ------------------------------------------------------ #
    def try_claim(self, index: int, worker_id: str) -> bool:
        lease = lease_path(self.cluster_dir, index)
        lease.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"worker_id": worker_id,
                              "claimed_at": self.clock()})
        try:
            descriptor = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if self._is_done(index):
                return False
            age = self._lease_age(index)
            if age is None:
                # Lease vanished between the existence check and now —
                # retry through the normal candidate loop.
                return False
            if age < self._stale_after:
                # Live lease.  If *we* own it, this is a duplicate delivery
                # of a claim that was already granted (a retry after a
                # reset, or a duplicated frame): re-grant idempotently
                # instead of refusing and sending the owner elsewhere.
                try:
                    owner = json.loads(lease.read_text()).get("worker_id")
                except (OSError, json.JSONDecodeError):
                    return False
                return owner == worker_id
            if self.guard is not None:
                # The stale lease is a worker that died (or wedged) mid-
                # scenario and never reported back.  Charge the death
                # against the scenario's retry budget *before* handing the
                # same scenario to the next worker — repeated lease deaths
                # on one index are the only observable signature of a
                # poison scenario that OOM-kills its workers, and without
                # this check it would take the fleet down one worker at a
                # time.  The marker is keyed on the dead lease's claimed_at
                # stamp so racing takeovers record one death, not two.
                try:
                    dead = json.loads(lease.read_text())
                except (OSError, json.JSONDecodeError):
                    dead = {}
                stamp = str(dead.get("claimed_at", "unknown"))
                stamp = stamp.replace(".", "_")
                atomic_write_json(
                    self.cluster_dir / TASKS_DIR
                    / f"{index}.death.{stamp}.json",
                    {"index": index,
                     "worker_id": dead.get("worker_id"),
                     "claimed_at": dead.get("claimed_at"),
                     "observed_by": worker_id,
                     "observed_at": self.clock()},
                    durable=True)
                with self._lock:
                    if (self._spent_attempts(index)
                            >= self.guard.max_attempts):
                        self._quarantine(index, worker_id, "crash")
                        return False
            # Stale lease: take it over atomically.  If two workers race
            # here both takeovers "succeed" and the scenario runs twice —
            # deterministic execution makes that merely wasteful, and the
            # merge dedupes the identical records.
            tmp = lease.with_name(f"{lease.name}.{worker_id}.tmp")
            tmp.write_text(payload)
            self._touch(tmp)
            tmp.replace(lease)
            return not self._is_done(index)
        with os.fdopen(descriptor, "w") as handle:
            handle.write(payload)
        self._touch(lease)
        return True

    def heartbeat(self, index: int, worker_id: str) -> bool:
        lease = lease_path(self.cluster_dir, index)
        try:
            owner = json.loads(lease.read_text()).get("worker_id")
        except (OSError, json.JSONDecodeError):
            return False  # lease gone or torn: stop beating
        if owner != worker_id:
            return False  # lease was taken over while we were presumed dead
        try:
            self._touch(lease)
        except OSError:
            return False
        return True

    # -- results ------------------------------------------------------- #
    def _sink_for(self, worker_id: str) -> ResultSink:
        with self._lock:
            sink = self._sinks.get(worker_id)
            if sink is None:
                sink = open_sink(
                    self.plan.sink,
                    self.cluster_dir / RESULTS_DIR
                    / part_name(self.plan.sink, worker_id),
                    master_seed=self.plan.master_seed,
                    duration=self.plan.duration,
                )
                self._sinks[worker_id] = sink
            return sink

    def submit_result(self, worker_id: str, index: int,
                      outcome: ScenarioOutcome, attempt: int = 0) -> None:
        with self._lock:
            key = (index, worker_id, attempt)
            # Dedupe duplicate deliveries: a done marker proves *some* sink
            # record for this index is already durable (markers are written
            # after the sink write, and fsynced), and a seen (index, worker,
            # attempt) key means *this very delivery* was applied even if
            # the crash window between sink write and done marker was hit.
            if key not in self._applied_submits and not self._is_done(index):
                self._sink_for(worker_id).write(index, outcome)
            self._applied_submits.add(key)
            if not self._is_done(index):
                atomic_write_json(done_path(self.cluster_dir, index),
                                  {"index": index, "worker_id": worker_id,
                                   "attempt": attempt,
                                   "wall_time": outcome.wall_time,
                                   "finished_at": self.clock()},
                                  durable=True)

    # -- failures and quarantine --------------------------------------- #
    def _spent_attempts(self, index: int) -> int:
        """Executions charged against ``index``: reported failures plus
        observed lease deaths (each durable as one marker file)."""
        tasks = self.cluster_dir / TASKS_DIR
        return (len(list(tasks.glob(f"{index}.fail.*.json")))
                + len(list(tasks.glob(f"{index}.death.*.json"))))

    def _quarantine(self, index: int, worker_id: str, status: str) -> None:
        """Retire ``index``: durable record, sink outcome, done marker.

        The sink outcome is **canonical** — built only from the plan and
        the failure status, never from per-run diagnostics — because two
        racing quarantine decisions (e.g. two workers both observing the
        budget spent) each submit it, and the merge requires duplicate
        index records to agree field-for-field.
        """
        if self._is_done(index):
            return
        spec = self.plan.specs[index]
        budget = self.guard.max_attempts
        QuarantineStore(self.cluster_dir).record(QuarantineRecord(
            index=index,
            scenario_name=spec.name,
            seed=self.plan.seeds[index],
            attempts=self._spent_attempts(index),
            status=status,
            error=None,
            source="coordinator",
            recorded_at=self.clock(),
        ))
        outcome = ScenarioOutcome(
            scenario_name=spec.name,
            scheduler_name=spec.scheduler_name(),
            seed=self.plan.seeds[index],
            duration=self.plan.duration,
            status=QUARANTINED,
            error=(f"quarantined after spending the retry budget "
                   f"({budget} attempt(s)); last failure [{status}]"),
            backend=spec.backend_name(),
            engine=spec.engine_name(),
        )
        self.submit_result(worker_id, index, outcome, attempt=-1)

    def record_failure(self, worker_id: str, index: int,
                       outcome: ScenarioOutcome, attempt: int = 0) -> dict:
        with self._lock:
            key = (index, worker_id, attempt)
            if key not in self._applied_failures and not self._is_done(index):
                error = outcome.error or ""
                atomic_write_json(
                    self.cluster_dir / TASKS_DIR
                    / f"{index}.fail.{worker_id}.{attempt}.json",
                    {"index": index, "worker_id": worker_id,
                     "attempt": attempt, "status": outcome.status,
                     "error": error[:2000], "recorded_at": self.clock()},
                    durable=True)
            self._applied_failures.add(key)
            # Release the reporter's lease so the retry (here or on any
            # other worker) does not have to wait out a lease timeout.
            lease = lease_path(self.cluster_dir, index)
            try:
                if json.loads(lease.read_text()).get("worker_id") == worker_id:
                    lease.unlink()
            except (OSError, json.JSONDecodeError):
                pass
            spent = self._spent_attempts(index)
            quarantined = (QuarantineStore(self.cluster_dir).path(index)
                           .exists())
            if (not quarantined and self.guard is not None
                    and spent >= self.guard.max_attempts):
                self._quarantine(index, worker_id, outcome.status)
                quarantined = True
            return {"attempts": spent, "quarantined": quarantined}

    def send_telemetry(self, worker_id: str, metrics: dict) -> None:
        # One file per worker, replaced whole on every upload: duplicate
        # deliveries (and retries of unknown outcome) are last-write-wins
        # over identical content, which keeps the op in IDEMPOTENT_OPS.
        atomic_write_json(
            self.cluster_dir / TELEMETRY_DIR / f"{worker_id}.json", metrics)

    def close(self) -> None:
        with self._lock:
            for sink in self._sinks.values():
                sink.close()
            self._sinks.clear()


# --------------------------------------------------------------------------- #
# Socket implementation (client side; the server lives in repro.cluster.serve)
# --------------------------------------------------------------------------- #
def parse_address(address: "str | tuple[str, int]") -> tuple[str, int]:
    """Parse ``host:port`` (or pass a ``(host, port)`` pair through)."""
    if isinstance(address, tuple):
        return address[0], int(address[1])
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host or "127.0.0.1", int(port)


class SocketTransport(Transport):
    """TCP client transport towards a ``repro.cluster.serve`` coordinator.

    One connection, one in-flight request at a time (a lock serialises the
    worker thread and its heartbeat thread).  The plan is fetched once at
    connect time, so a worker is fully provisioned by the address alone —
    no shared filesystem, no plan file, no result directory.

    Parameters
    ----------
    address:
        ``"host:port"`` or a ``(host, port)`` tuple.
    timeout:
        Per-operation socket timeout in seconds.
    connect_retry:
        Keep retrying the initial connection for this many seconds (covers
        workers racing a coordinator that is still starting up).
    max_attempts:
        Delivery attempts per request for **idempotent** operations (see
        :data:`IDEMPOTENT_OPS`): a connection error whose outcome is
        unknown is retried, with exponential backoff, because a duplicate
        delivery of an idempotent operation is a no-op.  Server-side
        rejections (the request was delivered and refused) never retry.
    retry_backoff:
        Initial sleep between delivery attempts, doubled per retry.
    """

    kind = "socket"

    def __init__(self, address: "str | tuple[str, int]",
                 timeout: float = 60.0,
                 connect_retry: float = 10.0,
                 max_attempts: int = 3,
                 retry_backoff: float = 0.05) -> None:
        self.address = parse_address(address)
        self.timeout = timeout
        self.max_attempts = max(1, int(max_attempts))
        self.retry_backoff = max(0.0, retry_backoff)
        self._lock = threading.Lock()
        self._closed = False
        #: Total re-deliveries attempted after connection errors (all ops),
        #: exposed for observability (worker telemetry) — not protocol state.
        self.retries = 0
        self._sock: Optional[socket.socket] = self._connect(connect_retry)
        self.plan = ClusterPlan.from_dict(self.request("plan")["plan"])

    def _connect(self, connect_retry: float) -> socket.socket:
        start = time.monotonic()
        deadline = start + max(0.0, connect_retry)
        attempts = 0
        while True:
            attempts += 1
            try:
                sock = socket.create_connection(self.address,
                                                timeout=self.timeout)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError as error:
                now = time.monotonic()
                if now >= deadline:
                    raise TransportError(
                        f"cannot connect to coordinator at "
                        f"{self.address[0]}:{self.address[1]} after "
                        f"{attempts} attempt(s) over {now - start:.2f}s: "
                        f"{error}"
                    ) from None
                # Clamp the sleep to the deadline: with a 0.1s budget the
                # old fixed 0.2s sleep overshot it and bought an extra
                # attempt well past the promised cutoff.
                time.sleep(min(0.2, deadline - now))

    def _drop_sock_locked(self) -> None:
        """Invalidate the connection (caller holds the lock).

        Any I/O failure mid-request leaves the one-request-one-response
        framing in an unknown state (e.g. a timed-out heartbeat whose
        response is still in flight would be read as the *next* request's
        response), so the socket must never be reused after an error — the
        next request opens a fresh, in-sync connection.
        """
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def request(self, op: str, **payload) -> dict:
        """Send one operation frame and return the (ok) response.

        Reconnects on demand after an earlier request dropped the
        connection — server-side state (registration, leases, parts) is
        keyed on worker id, not on the connection, so a fresh socket
        resumes transparently.

        Connection errors leave the outcome of the in-flight request
        unknown (it may or may not have been applied); for operations in
        :data:`IDEMPOTENT_OPS` — where a duplicate delivery is harmless by
        contract — the request is re-sent up to ``max_attempts`` times with
        exponential backoff before the error surfaces.  A response with
        ``ok: false`` is a server-side rejection of a *delivered* request
        and is never retried.
        """
        frame = {"op": op, **payload}
        attempts = self.max_attempts if op in IDEMPOTENT_OPS else 1
        delay = self.retry_backoff
        last_error: Optional[TransportError] = None
        for attempt in range(attempts):
            if attempt:
                self.retries += 1
                time.sleep(delay)
                delay = min(delay * 2.0, 2.0)
            with self._lock:
                if self._closed:
                    raise TransportError("transport is closed")
                try:
                    if self._sock is None:
                        self._sock = self._connect(connect_retry=2.0)
                    send_frame(self._sock, frame)
                    response = recv_frame(self._sock)
                except (OSError, TransportError) as error:
                    self._drop_sock_locked()
                    last_error = TransportError(
                        f"coordinator connection lost during {op!r} "
                        f"(attempt {attempt + 1}/{attempts}): {error}")
                    continue
                if response is None:
                    self._drop_sock_locked()
                    last_error = TransportError(
                        f"coordinator closed the connection during {op!r} "
                        f"(attempt {attempt + 1}/{attempts})")
                    continue
            if not response.get("ok"):
                raise TransportError(response.get("error", f"{op!r} failed"))
            return response
        raise last_error

    # -- protocol operations ------------------------------------------- #
    def register_worker(self, worker_id: str, shard: Optional[int]) -> int:
        return int(self.request("register", worker_id=worker_id,
                                shard=shard)["shard"])

    def snapshot(self) -> TaskSnapshot:
        return TaskSnapshot.from_dict(self.request("snapshot")["snapshot"])

    def try_claim(self, index: int, worker_id: str) -> bool:
        return bool(self.request("claim", index=index,
                                 worker_id=worker_id)["granted"])

    def heartbeat(self, index: int, worker_id: str) -> bool:
        try:
            return bool(self.request("heartbeat", index=index,
                                     worker_id=worker_id)["alive"])
        except TransportError:
            # Unknown is not "lost": a transient outage (coordinator
            # restart, network blip) must not silence the heartbeat for
            # good — that would let the lease of a *healthy* worker go
            # stale and its scenario run twice fleet-wide.  Keep beating;
            # request() reconnects on the next attempt, and a genuine
            # takeover is reported authoritatively as ``alive: False``.
            return True

    def submit_result(self, worker_id: str, index: int,
                      outcome: ScenarioOutcome, attempt: int = 0) -> None:
        self.request("submit", worker_id=worker_id, index=index,
                     outcome=outcome.to_dict(), attempt=attempt)

    def record_failure(self, worker_id: str, index: int,
                       outcome: ScenarioOutcome, attempt: int = 0) -> dict:
        response = self.request("fail", worker_id=worker_id, index=index,
                                outcome=outcome.to_dict(), attempt=attempt)
        return {"attempts": int(response.get("attempts", 0)),
                "quarantined": bool(response.get("quarantined", False))}

    def send_telemetry(self, worker_id: str, metrics: dict) -> None:
        self.request("telemetry", worker_id=worker_id, metrics=metrics)

    def status(self) -> dict:
        """Coordinator-side progress counters (monitoring / autoscaling)."""
        return self.request("status")["status"]

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._drop_sock_locked()
