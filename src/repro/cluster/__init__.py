"""Distributed sweep execution: sharding, stealing, sinks, transports.

The package turns :class:`~repro.runtime.sweep.SweepRunner`'s single-machine
sweep into a cluster subsystem while keeping its defining property intact:
the merged result of any sharded run is field-for-field identical to a
serial sweep, because per-scenario seeds depend only on the master seed and
the scenario's global grid index — never on which worker ran it, in what
order, over which transport, or how many times.

Pieces (see each module's docstring for the protocol details):

* :mod:`repro.cluster.planner` — deterministic LPT shard planning over a
  pluggable :class:`CostModel` (static heuristic, or calibrated from
  recorded per-scenario wall-clock and persisted as ``cost_model.json`` so
  every sweep improves the next plan).
* :mod:`repro.cluster.coordinator` — planning, progress, merge, and the
  shared-directory protocol layout (plan file, lease files, done markers).
* :mod:`repro.cluster.transport` — the protocol's operations as a
  :class:`Transport` contract: :class:`FilesystemTransport` (shared
  directory) and :class:`SocketTransport` (length-prefixed JSON frames to a
  ``python -m repro.cluster.serve`` coordinator; no shared filesystem).
* :mod:`repro.cluster.worker` — the transport-agnostic claim / steal /
  reclaim execution loop (also a CLI: ``python -m repro.cluster.worker``).
* :mod:`repro.cluster.serve` — the TCP coordinator service
  (``python -m repro.cluster.serve``).
* :mod:`repro.cluster.scaling` — worker autoscaling: :class:`ScalePolicy`
  advice from queue depth, applied by a local :class:`ProcessPoolScaler`.
* :mod:`repro.cluster.faults` — deterministic fault injection: a seeded
  :class:`FaultSchedule` driving a :class:`FaultyTransport` that drops,
  duplicates, resets, delays and replays protocol operations, crashes
  workers at chosen points and skews per-process clocks — the adversary
  the protocol's idempotent operations and skew-tolerant leases are
  verified against.
* :mod:`repro.cluster.sinks` — streaming result sinks (JSON, crash-safe
  JSONL, dependency-free chunked columnar) that merge back into one
  canonical :class:`~repro.runtime.sweep.SweepResult`.
"""

from repro.cluster.coordinator import ClusterCoordinator, ClusterPlan
from repro.cluster.faults import (
    FaultDecision,
    FaultSchedule,
    FaultyTransport,
    InjectedFault,
    InjectedWorkerCrash,
    ScenarioFaultPlan,
)
from repro.cluster.planner import (
    CostModel,
    RecordedCostModel,
    ShardPlan,
    StaticCostModel,
    plan_shards,
)
from repro.cluster.scaling import (
    ClusterStats,
    ProcessPoolScaler,
    QueueDepthPolicy,
    ScaleAdvice,
    ScalePolicy,
)
from repro.cluster.sinks import (
    ColumnarResultSink,
    JsonResultSink,
    JsonlResultSink,
    ResultSink,
    SINK_KINDS,
    load_results,
    merge_results,
    open_sink,
)
from repro.cluster.transport import (
    FilesystemTransport,
    FrameDecodeError,
    FrameTooLarge,
    SocketTransport,
    TaskSnapshot,
    Transport,
    TransportError,
)
from repro.cluster.worker import ClusterWorker

__all__ = [
    "ClusterCoordinator",
    "ClusterPlan",
    "ClusterStats",
    "ClusterWorker",
    "ColumnarResultSink",
    "CostModel",
    "FaultDecision",
    "FaultSchedule",
    "FaultyTransport",
    "FilesystemTransport",
    "FrameDecodeError",
    "FrameTooLarge",
    "InjectedFault",
    "InjectedWorkerCrash",
    "JsonResultSink",
    "JsonlResultSink",
    "ProcessPoolScaler",
    "QueueDepthPolicy",
    "RecordedCostModel",
    "ResultSink",
    "SINK_KINDS",
    "ScaleAdvice",
    "ScalePolicy",
    "ScenarioFaultPlan",
    "ShardPlan",
    "SocketTransport",
    "StaticCostModel",
    "TaskSnapshot",
    "Transport",
    "TransportError",
    "load_results",
    "merge_results",
    "open_sink",
    "plan_shards",
    "run_sharded_sweep",
]


def run_sharded_sweep(specs, duration, cluster_dir, master_seed=12345,
                      num_shards=3, workers=None, **coordinator_kwargs):
    """One-shot sharded sweep on the local machine.

    Plans ``specs`` into ``num_shards`` shards, runs ``workers`` local
    worker processes (default: one per shard) through the full cluster
    protocol, and returns the merged canonical
    :class:`~repro.runtime.sweep.SweepResult`.
    """
    coordinator = ClusterCoordinator(specs, duration, cluster_dir,
                                     master_seed=master_seed,
                                     num_shards=num_shards,
                                     **coordinator_kwargs)
    return coordinator.run_local(workers=workers)
