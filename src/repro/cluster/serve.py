"""TCP coordinator service: the cluster protocol without a shared filesystem.

``python -m repro.cluster.serve`` plans a grid, listens on a socket, and
answers the length-prefixed JSON frames of
:class:`~repro.cluster.transport.SocketTransport` workers.  Every operation
is applied to a **local** :class:`~repro.cluster.transport.FilesystemTransport`
over the server's own cluster directory, which buys three properties for
free:

* **Atomic lease grants** — claims and stale-lease takeovers go through the
  same atomic file primitives the shared-directory protocol uses, serialised
  inside one process.
* **Durable coordinator state** — leases, done markers and result parts
  survive a coordinator restart; re-starting ``serve`` on the same directory
  resumes the sweep exactly like re-planning a filesystem cluster does.
* **One semantics** — the filesystem and socket transports cannot drift,
  because the socket transport *is* the filesystem transport plus a wire.

Workers stream results over their connection; the server writes them into
ordinary per-worker :class:`~repro.cluster.sinks.ResultSink` parts and the
merge is the standard :meth:`ClusterCoordinator.merge`.

Quickstart (three machines, no shared storage)::

    # coordinator box
    python -m repro.cluster.serve --port 7766 --cluster-dir ./grid \\
        --paper-grid --backend analytic --duration 30 \\
        --exit-when-complete --out grid.json

    # each worker box
    python -m repro.cluster.worker --coordinator coordinator-host:7766

Pass ``--autoscale N`` to let the coordinator also run a local
:class:`~repro.cluster.scaling.ProcessPoolScaler` growing/shrinking up to
``N`` worker processes on its own machine from queue depth.
"""

from __future__ import annotations

import argparse
import logging
import socketserver
import threading
import time
from pathlib import Path
from typing import Optional

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.scaling import ProcessPoolScaler, QueueDepthPolicy, ScalePolicy
from repro.cluster.sinks import SINK_KINDS
from repro.cluster.transport import (
    MAX_FRAME_BYTES,
    FilesystemTransport,
    FrameDecodeError,
    FrameTooLarge,
    TransportError,
    drain_exact,
    recv_frame,
    send_frame,
)
from repro.runtime.sweep import ScenarioOutcome

logger = logging.getLogger("repro.cluster.serve")


class ClusterCoordinatorServer(socketserver.ThreadingTCPServer):
    """Threaded TCP frontend over a :class:`ClusterCoordinator`'s directory.

    One handler thread per worker connection; state-changing operations are
    applied to the local filesystem transport (claims additionally serialise
    on a server-side lock, making the lease grant atomic even across
    noncompliant filesystems).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, coordinator: ClusterCoordinator,
                 address: tuple[str, int] = ("127.0.0.1", 0),
                 reset: bool = False) -> None:
        # Unconditional: refreshes the plan of the *same* sweep (resume) and
        # raises loudly if the directory holds a different sweep's state —
        # silently serving a stale plan.json would hand workers the wrong
        # scenarios while status/merge evaluate the new grid.  The server
        # owns plan writing; pass ``reset`` to discard a different sweep.
        coordinator.write_plan(reset=reset)
        self.coordinator = coordinator
        self.local = FilesystemTransport(coordinator.cluster_dir)
        self._claim_lock = threading.Lock()
        self._serve_thread: Optional[threading.Thread] = None
        super().__init__(address, _ClusterRequestHandler)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        """The bound ``host:port`` (workers' ``--coordinator`` value)."""
        host, port = self.server_address[:2]
        return f"{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Serve connections on a daemon thread; returns the thread."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="cluster-serve", daemon=True)
            self._serve_thread.start()
        return self._serve_thread

    def stop(self) -> None:
        """Stop accepting, close the listener and flush the sinks."""
        self.shutdown()
        self.server_close()
        self.local.close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
            self._serve_thread = None

    # ------------------------------------------------------------------ #
    # Operation dispatch
    # ------------------------------------------------------------------ #
    def dispatch(self, frame: dict) -> dict:
        """Apply one request frame; returns the response frame."""
        op = frame.get("op")
        try:
            if op == "plan":
                return {"ok": True, "plan": self.local.plan.to_dict()}
            if op == "register":
                shard = self.local.register_worker(
                    str(frame["worker_id"]), frame.get("shard"))
                return {"ok": True, "shard": shard}
            if op == "snapshot":
                return {"ok": True,
                        "snapshot": self.local.snapshot().to_dict()}
            if op == "claim":
                index = self._checked_index(frame)
                with self._claim_lock:
                    granted = self.local.try_claim(index,
                                                   str(frame["worker_id"]))
                return {"ok": True, "granted": granted}
            if op == "heartbeat":
                alive = self.local.heartbeat(self._checked_index(frame),
                                             str(frame["worker_id"]))
                return {"ok": True, "alive": alive}
            if op == "submit":
                outcome = ScenarioOutcome.from_dict(frame["outcome"])
                self.local.submit_result(str(frame["worker_id"]),
                                         self._checked_index(frame), outcome,
                                         attempt=int(frame.get("attempt", 0)))
                return {"ok": True}
            if op == "fail":
                outcome = ScenarioOutcome.from_dict(frame["outcome"])
                # Failure accounting can trigger a quarantine, which submits
                # a synthetic result and releases the lease — serialise with
                # claims so a takeover cannot race the quarantine decision.
                with self._claim_lock:
                    charged = self.local.record_failure(
                        str(frame["worker_id"]), self._checked_index(frame),
                        outcome, attempt=int(frame.get("attempt", 0)))
                return {"ok": True, **charged}
            if op == "telemetry":
                metrics = frame["metrics"]
                if not isinstance(metrics, dict):
                    raise ValueError("telemetry metrics must be an object")
                self.local.send_telemetry(str(frame["worker_id"]), metrics)
                return {"ok": True}
            if op == "status":
                return {"ok": True, "status": self.status()}
            return {"ok": False, "error": f"unknown operation {op!r}"}
        except (KeyError, TypeError, ValueError, TransportError) as error:
            return {"ok": False, "error": f"{op}: {error!r}"}

    def _checked_index(self, frame: dict) -> int:
        index = int(frame["index"])
        if not 0 <= index < len(self.local.plan.specs):
            raise ValueError(f"scenario index {index} out of range")
        return index

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #
    def status(self) -> dict:
        """Coordinator progress plus completion/registration counters."""
        status = self.coordinator.status(include_owners=True)
        status["complete"] = status["total"]["done"] >= status["scenarios"]
        status["registered_workers"] = self.local.registered_workers()
        return status

    def is_complete(self) -> bool:
        """Whether every scenario has a done marker."""
        return self.coordinator.is_complete()


class _ClusterRequestHandler(socketserver.BaseRequestHandler):
    """One worker connection: request/response frames until EOF.

    Malformed input does not take the connection (or the server) down:

    * an **oversized** frame announcement gets a structured
      ``{"ok": False, "error": ...}`` response; the announced body is
      drained (up to a bounded limit) so the stream is back on a frame
      boundary and the connection keeps serving.  Absurd announcements
      beyond the drain limit close the connection instead — the length
      prefix cannot be trusted, so neither can the rest of the stream.
    * an **undecodable** body (bad UTF-8 / JSON, or a non-object frame)
      gets a structured error response and the connection keeps serving:
      the body was fully consumed, so the stream is still framed.

    Other transport faults and socket errors close the connection; the
    server itself keeps accepting either way.
    """

    #: Most bytes we are willing to discard to resynchronise after an
    #: oversized frame announcement before giving up on the connection.
    MAX_DRAIN_BYTES = 4 * MAX_FRAME_BYTES

    def handle(self) -> None:  # pragma: no cover - exercised via transport
        while True:
            try:
                frame = recv_frame(self.request)
            except FrameTooLarge as error:
                if not self._reject(f"rejected frame: {error}"):
                    return
                if error.length > self.MAX_DRAIN_BYTES:
                    logger.warning(
                        "[serve] closing connection after a %d-byte frame "
                        "announcement (drain limit %d)", error.length,
                        self.MAX_DRAIN_BYTES)
                    return
                if not drain_exact(self.request, error.length):
                    return
                continue
            except FrameDecodeError as error:
                # Body fully consumed; the stream is still on a boundary.
                if not self._reject(f"rejected frame: {error}"):
                    return
                continue
            except (TransportError, OSError):
                return
            if frame is None:
                return
            response = self.server.dispatch(frame)
            try:
                send_frame(self.request, response)
            except OSError:
                return

    def _reject(self, message: str) -> bool:
        """Send a structured error frame; ``False`` if the peer is gone."""
        logger.warning("[serve] %s (peer %s)", message, self.client_address)
        try:
            send_frame(self.request, {"ok": False, "error": message})
        except OSError:
            return False
        return True


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Serve a sharded sweep to TCP workers "
                    "(python -m repro.cluster.worker --coordinator "
                    "HOST:PORT).")
    parser.add_argument("--host", default="0.0.0.0",
                        help="interface to bind (default: all)")
    parser.add_argument("--port", type=int, default=7766,
                        help="TCP port to listen on")
    parser.add_argument("--cluster-dir", default=".serve_cluster",
                        help="coordinator-local directory for plan, leases "
                             "and result parts (not shared with workers)")
    parser.add_argument("--hardware", default="Lab",
                        choices=("Lab", "QL2020"),
                        help="hardware scenario for the sub-grid")
    parser.add_argument("--paper-grid", action="store_true",
                        help="serve the full 169-scenario paper grid")
    parser.add_argument("--duration", type=float, default=0.4,
                        help="simulated seconds per scenario")
    parser.add_argument("--shards", type=int, default=3,
                        help="number of shards to plan")
    parser.add_argument("--seed", type=int, default=12345,
                        help="master seed (per-scenario seeds are derived)")
    parser.add_argument("--sink", default="jsonl", choices=sorted(SINK_KINDS),
                        help="result sink the server writes parts through")
    parser.add_argument("--lease-timeout", type=float, default=60.0,
                        help="seconds without a heartbeat before a lease "
                             "may be taken over")
    parser.add_argument("--skew-tolerance", type=float, default=5.0,
                        help="extra seconds of observed lease age forgiven "
                             "for cross-machine clock skew before a lease "
                             "counts as stale")
    parser.add_argument("--batch", type=int, default=50,
                        help="MHP attempt batch size")
    parser.add_argument("--backend", default=None,
                        help="physics backend (density/analytic/"
                             "analytic-exact; default $REPRO_BACKEND)")
    parser.add_argument("--cache-dir", default="",
                        help="coordinator-local resume-cache directory "
                             "advertised in the plan ('' disables)")
    parser.add_argument("--reset", action="store_true",
                        help="discard state a previous (different) sweep "
                             "left in --cluster-dir")
    parser.add_argument("--max-events", type=int, default=0,
                        help="guard: per-scenario simulator event budget "
                             "(0 disables)")
    parser.add_argument("--wall-deadline", type=float, default=0.0,
                        help="guard: per-scenario wall-clock deadline in "
                             "seconds (0 disables)")
    parser.add_argument("--max-attempts", type=int, default=2,
                        help="guard: attempts per scenario before it is "
                             "quarantined")
    parser.add_argument("--validate", action="store_true",
                        help="guard: validate results (ranges, finiteness, "
                             "density-matrix sanity) before accepting them")
    parser.add_argument("--autoscale", type=int, default=0, metavar="N",
                        help="run up to N local worker processes, scaled "
                             "from queue depth (0 disables)")
    parser.add_argument("--scale-interval", type=float, default=1.0,
                        help="seconds between autoscaling rounds")
    parser.add_argument("--poll-interval", type=float, default=0.5,
                        help="seconds between completion checks")
    parser.add_argument("--exit-when-complete", action="store_true",
                        help="merge, persist the cost model and exit once "
                             "every scenario is done")
    parser.add_argument("--linger", type=float, default=2.0,
                        help="seconds to keep answering workers after "
                             "completion before shutting down")
    parser.add_argument("--out", default="",
                        help="write the merged sweep result JSON here on "
                             "completion")
    parser.add_argument("--verbose", action="store_true",
                        help="DEBUG-level logging (default INFO; see also "
                             "$REPRO_LOG)")
    return parser


def build_grid(args: argparse.Namespace):
    """The scenario list the CLI serves (paper grid or Lab/QL2020 sub-grid)."""
    from repro.runtime import paper_grid, single_kind_scenarios

    if args.paper_grid:
        return paper_grid(attempt_batch_size=args.batch,
                          backend=args.backend)
    return single_kind_scenarios(
        args.hardware, kinds=("NL", "CK", "MD"), loads=("Low", "High"),
        max_pairs_options=(1,), origins=("A", "B"),
        include_md_k255=False, attempt_batch_size=args.batch,
        backend=args.backend)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point: ``python -m repro.cluster.serve``."""
    from repro.obs.logconf import configure_logging

    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose)
    specs = build_grid(args)
    guard = None
    if args.max_events > 0 or args.wall_deadline > 0 or args.validate:
        from repro.runtime.guard import GuardPolicy

        guard = GuardPolicy(
            max_events=args.max_events or None,
            wall_deadline=args.wall_deadline or None,
            max_attempts=args.max_attempts, validate=args.validate)
    coordinator = ClusterCoordinator(
        specs, args.duration, args.cluster_dir, master_seed=args.seed,
        num_shards=args.shards, sink=args.sink,
        lease_timeout=args.lease_timeout,
        clock_skew_tolerance=args.skew_tolerance,
        cache_dir=args.cache_dir or None, guard=guard)
    server = ClusterCoordinatorServer(coordinator, (args.host, args.port),
                                      reset=args.reset)
    server.start_background()
    plan = coordinator.plan()
    logger.info("[serve] %d scenarios x %.2fs simulated in %d shard(s) on "
                "%s (sink %s, lease timeout %.0fs)", len(specs),
                args.duration, plan.num_shards, server.address, args.sink,
                args.lease_timeout)
    logger.info("[serve] workers: python -m repro.cluster.worker "
                "--coordinator <this-host>:%d", server.server_address[1])

    scaler: Optional[ProcessPoolScaler] = None
    if args.autoscale > 0:
        policy: ScalePolicy = QueueDepthPolicy(min_workers=1,
                                               max_workers=args.autoscale)
        # Local workers must dial an address the listener actually covers:
        # loopback only works when binding all interfaces (or loopback).
        scale_host = ("127.0.0.1" if args.host in ("", "0.0.0.0", "::")
                      else args.host)
        scaler = ProcessPoolScaler(f"{scale_host}:{server.server_address[1]}",
                                   policy=policy)

    last_done = -1
    next_scale = 0.0
    try:
        while True:
            status = server.status()
            done = status["total"]["done"]
            if done != last_done:
                logger.info(
                    "[serve] progress: %d/%d done, %d leased, %d stale, "
                    "%d pending (%d worker registration(s))", done,
                    status["scenarios"], status["total"]["leased"],
                    status["total"]["stale"], status["total"]["pending"],
                    status["registered_workers"])
                last_done = done
            if scaler is not None and time.monotonic() >= next_scale:
                advice = scaler.scale_once(status)
                if not advice.is_noop:
                    logger.info("[serve] autoscale: spawn %d, retire %d (%s)",
                                advice.spawn, advice.retire, advice.reason)
                next_scale = time.monotonic() + args.scale_interval
            if status["complete"] and args.exit_when_complete:
                break
            time.sleep(args.poll_interval)
    except KeyboardInterrupt:
        logger.info("[serve] interrupted; coordinator state is durable — "
                    "re-run serve on the same --cluster-dir to resume")
        if scaler is not None:
            scaler.shutdown()
        server.stop()
        return 130

    # Complete: give standing-by workers a moment to observe the final
    # snapshot and exit cleanly, then merge and persist.
    time.sleep(max(0.0, args.linger))
    if scaler is not None:
        scaler.shutdown()
    server.stop()
    result = coordinator.merge()
    recorded = coordinator.record_costs(result)
    logger.info("[serve] merged %d outcome(s): %d ok / %d failed",
                len(result.outcomes), len(result.completed),
                len(result.failed))
    if result.telemetry is not None:
        logger.info("[serve] merged worker telemetry written to %s",
                    Path(args.cluster_dir) / "metrics.json")
    if recorded is not None:
        logger.info("[serve] cost model updated at %s", recorded)
    if args.out:
        result.save(args.out)
        logger.info("[serve] merged sweep result written to %s", args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
