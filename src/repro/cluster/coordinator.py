"""Coordinator side of the filesystem cluster protocol.

The protocol needs nothing but a directory every participant can reach (a
shared filesystem across machines, or a local path for multi-process runs):

``plan.json``
    Written once by the coordinator: the serialised scenario list, derived
    per-scenario seeds, the deterministic :class:`ShardPlan`, sink kind,
    lease timeout and optional resume-cache directory.  Workers are stateless
    — everything they need to execute any scenario is in the plan.

``tasks/<index>.lease``
    Claim + heartbeat for one scenario.  Created atomically
    (``O_CREAT | O_EXCL``) by the claiming worker; its mtime is refreshed by
    a heartbeat thread while the scenario runs.  A lease whose heartbeat is
    older than the lease timeout belongs to a dead worker and may be taken
    over (atomic rename), so a crash mid-scenario delays that scenario by at
    most one timeout.

``tasks/<index>.done``
    Completion marker, written (atomically, tmp + rename) only *after* the
    outcome is durable in the worker's sink part.

``results/part-<worker>.*``
    One sink part per worker (see :mod:`repro.cluster.sinks`).

Correctness under reordering: per-scenario seeds depend only on
``(master_seed, global index)`` — the same ``SeedSequence.spawn`` derivation
the serial sweep uses — and execution is deterministic given (spec, seed,
backend), so the merged result is field-for-field identical to a serial
``SweepRunner`` run no matter how many shards, which worker ran what, how
work was stolen, or how many times a crashed scenario was re-executed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.cluster.planner import (
    CostModel,
    RecordedCostModel,
    ShardPlan,
    plan_shards,
)
from repro.cluster.sinks import SINK_KINDS, merge_results
from repro.runtime.cache import CACHE_VERSION, atomic_write_text, cost_model_path
from repro.runtime.scenarios import ScenarioSpec
from repro.runtime.sweep import (
    SweepResult,
    _fresh_master_seed,
    derive_scenario_seeds,
)

PLAN_NAME = "plan.json"
TASKS_DIR = "tasks"
RESULTS_DIR = "results"
WORKERS_DIR = "workers"
#: Per-worker observability metrics snapshots (``telemetry/<worker>.json``),
#: uploaded through the transport's ``telemetry`` op when ``REPRO_OBS``
#: enables metrics.  Side data: never read by the protocol itself.
TELEMETRY_DIR = "telemetry"


def lease_path(cluster_dir: Path, index: int) -> Path:
    """Lease file for global scenario ``index``."""
    return cluster_dir / TASKS_DIR / f"{index}.lease"


def done_path(cluster_dir: Path, index: int) -> Path:
    """Done marker for global scenario ``index``."""
    return cluster_dir / TASKS_DIR / f"{index}.done"


def atomic_write_json(path: Path, payload: dict, indent: Optional[int] = None,
                      durable: bool = False) -> None:
    """Write JSON via the shared atomic tmp-and-rename idiom.

    ``durable`` fsyncs before the rename — done markers must never become
    visible while the sink record they vouch for could still be lost.
    """
    atomic_write_text(path, json.dumps(payload, indent=indent),
                      durable=durable)


@dataclass
class ClusterPlan:
    """The parsed contents of a ``plan.json``."""

    master_seed: int
    duration: float
    sink: str
    lease_timeout: float
    cache_dir: Optional[str]
    seeds: list[int]
    specs: list[ScenarioSpec]
    shard_plan: ShardPlan
    #: Seconds of cross-machine clock disagreement the lease protocol
    #: absorbs before declaring a lease stale (filesystem transport: lease
    #: mtimes are written by one machine's clock and read by another's).
    clock_skew_tolerance: float = 5.0
    #: Serialised :class:`repro.runtime.guard.GuardPolicy` every worker
    #: executes under (``None`` disables supervision — workers then behave
    #: exactly like the pre-guard protocol).
    guard: Optional[dict] = None

    def guard_policy(self):
        """The parsed :class:`~repro.runtime.guard.GuardPolicy`, or ``None``."""
        if self.guard is None:
            return None
        from repro.runtime.guard import GuardPolicy

        return GuardPolicy.from_dict(self.guard)

    def to_dict(self) -> dict:
        """JSON-serialisable plan document."""
        document = {
            "format": "cluster-plan/v1",
            "cache_version": CACHE_VERSION,
            "master_seed": self.master_seed,
            "duration": self.duration,
            "sink": self.sink,
            "lease_timeout": self.lease_timeout,
            "clock_skew_tolerance": self.clock_skew_tolerance,
            "cache_dir": self.cache_dir,
            "seeds": list(self.seeds),
            "specs": [spec.to_dict() for spec in self.specs],
            "shard_plan": self.shard_plan.to_dict(),
        }
        if self.guard is not None:
            # Emitted only when set: an unguarded plan document stays
            # byte-identical to the pre-guard format.
            document["guard"] = dict(self.guard)
        return document

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterPlan":
        """Parse a plan document."""
        if data.get("format") != "cluster-plan/v1":
            raise ValueError(f"not a cluster plan: format "
                             f"{data.get('format')!r}")
        return cls(
            master_seed=data["master_seed"],
            duration=data["duration"],
            sink=data["sink"],
            lease_timeout=data["lease_timeout"],
            clock_skew_tolerance=data.get("clock_skew_tolerance", 5.0),
            cache_dir=data.get("cache_dir"),
            seeds=list(data["seeds"]),
            specs=[ScenarioSpec.from_dict(entry) for entry in data["specs"]],
            shard_plan=ShardPlan.from_dict(data["shard_plan"]),
            guard=data.get("guard"),
        )

    @classmethod
    def load(cls, cluster_dir: str | Path) -> "ClusterPlan":
        """Read and parse ``plan.json`` from a cluster directory."""
        return cls.from_dict(
            json.loads((Path(cluster_dir) / PLAN_NAME).read_text()))


class ClusterCoordinator:
    """Plans a sharded sweep, tracks progress and merges the result.

    Parameters
    ----------
    specs:
        Scenario list; names must be unique (same contract as
        :class:`~repro.runtime.sweep.SweepRunner`).
    duration:
        Simulated seconds per scenario.
    cluster_dir:
        Shared directory for the plan, leases and sink parts.
    master_seed:
        Root of the per-scenario seed derivation; ``None`` draws fresh OS
        entropy once and records it in the plan.
    num_shards:
        Shard count — usually the number of machines/workers.
    cost_model:
        Scenario cost model for the planner.  ``None`` auto-loads the
        persisted ``cost_model.json`` from the cache directory (falling
        back to the cluster directory, then to the static heuristic) — see
        :meth:`record_costs`, which writes observed wall-clocks back after
        every merge so each sweep calibrates the next plan.
    sink:
        Result-sink kind workers write through: ``jsonl`` (default),
        ``json`` or ``columnar``.
    lease_timeout:
        Seconds without a heartbeat before a claimed scenario is considered
        abandoned and may be stolen.  Must comfortably exceed the heartbeat
        interval (it does by construction: workers heartbeat at a third of
        this) — it does *not* need to exceed scenario runtime.
    clock_skew_tolerance:
        Extra seconds of observed lease age forgiven before a lease counts
        as stale.  On the filesystem transport, lease mtimes are written by
        the owning worker's machine and read by every other machine; a
        reader whose clock runs ahead of the writer's inflates every
        observed age by the skew, and without this slack a *healthy*
        worker's lease would be falsely taken over.  The socket transport
        computes all ages on the coordinator's single clock, where this
        merely adds caution.
    cache_dir:
        Optional shared resume-cache directory (see
        :class:`~repro.runtime.cache.ResumeCache`).
    guard:
        Optional :class:`~repro.runtime.guard.GuardPolicy` (or its
        ``to_dict`` form) recorded in the plan: workers bound every
        execution with it, report failures through the transport's
        ``fail`` op, and the coordinator-side transport quarantines a
        scenario once its failures plus lease deaths spend the retry
        budget.  ``None`` keeps the pre-guard protocol bit-for-bit.
    """

    def __init__(self, specs: Sequence[ScenarioSpec], duration: float,
                 cluster_dir: str | Path,
                 master_seed: Optional[int] = 12345,
                 num_shards: int = 3,
                 cost_model: Optional[CostModel] = None,
                 sink: str = "jsonl",
                 lease_timeout: float = 60.0,
                 clock_skew_tolerance: float = 5.0,
                 cache_dir: Optional[str | Path] = None,
                 guard=None) -> None:
        self.specs = list(specs)
        if duration <= 0:
            raise ValueError("duration must be positive")
        names = [spec.name for spec in self.specs]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(f"duplicate scenario names: {sorted(duplicates)}")
        if sink not in SINK_KINDS:
            raise ValueError(f"unknown sink kind {sink!r}; "
                             f"expected one of {sorted(SINK_KINDS)}")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if clock_skew_tolerance < 0:
            raise ValueError("clock_skew_tolerance must be non-negative")
        self.duration = duration
        self.cluster_dir = Path(cluster_dir)
        self.master_seed = (master_seed if master_seed is not None
                            else _fresh_master_seed())
        self.num_shards = max(1, int(num_shards))
        self.cost_model = cost_model
        self.sink = sink
        self.lease_timeout = lease_timeout
        self.clock_skew_tolerance = clock_skew_tolerance
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.guard = (guard.to_dict() if hasattr(guard, "to_dict")
                      else guard)
        self._shard_plan: Optional[ShardPlan] = None

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def cost_model_path(self) -> Path:
        """Where the persistent cost model lives for this coordinator.

        The shared resume-cache directory when one is configured (so every
        sweep using that cache calibrates every other), the cluster
        directory otherwise.  Note the file survives :meth:`reset_state` —
        calibration data is cross-sweep knowledge, not sweep state.
        """
        base = self.cache_dir if self.cache_dir is not None else self.cluster_dir
        return cost_model_path(base)

    def effective_cost_model(self) -> Optional[CostModel]:
        """The cost model planning actually uses: the explicit one, else a
        persisted calibrated model if present, else ``None`` (the planner's
        static heuristic)."""
        if self.cost_model is not None:
            return self.cost_model
        return RecordedCostModel.load_if_present(self.cost_model_path())

    def plan(self) -> ShardPlan:
        """The deterministic shard plan (computed once, then cached)."""
        if self._shard_plan is None:
            self._shard_plan = plan_shards(self.specs, self.num_shards,
                                           self.duration,
                                           cost_model=self.effective_cost_model())
        return self._shard_plan

    def cluster_plan(self) -> ClusterPlan:
        """The full plan document workers execute from."""
        return ClusterPlan(
            master_seed=self.master_seed,
            duration=self.duration,
            sink=self.sink,
            lease_timeout=self.lease_timeout,
            clock_skew_tolerance=self.clock_skew_tolerance,
            cache_dir=self.cache_dir,
            seeds=derive_scenario_seeds(self.master_seed, len(self.specs)),
            specs=self.specs,
            shard_plan=self.plan(),
            guard=self.guard,
        )

    @staticmethod
    def _sweep_identity(document: dict) -> dict:
        """The part of a plan document that determines result validity.

        Existing done markers and sink parts stay valid exactly when the
        (spec, seed, duration) triple of every global index is unchanged —
        shard layout, estimated costs (which drift as ``cost_model.json``
        learns), sink kind (the merge reads any mixture of part formats),
        lease timeout and cache directory are operational knobs a restart
        may legitimately change.
        """
        return {key: document.get(key)
                for key in ("master_seed", "duration", "seeds", "specs")}

    def write_plan(self, reset: bool = False) -> Path:
        """Write ``plan.json`` and create the protocol directories.

        Idempotent for the *same* sweep: re-planning a grid with the same
        scenarios, seeds and duration into the directory resumes it
        (existing done markers and sink parts stay valid because execution
        is deterministic; the plan file is refreshed so operational
        changes — recalibrated shard costs, lease timeout — take effect).
        If the directory holds a **different** sweep — other scenarios,
        duration, seeds — its leases, done markers and parts describe the
        *old* sweep, and silently reusing them would hand back the old
        results; that is refused unless ``reset=True``, which wipes the
        protocol state first.  Note an unseeded coordinator
        (``master_seed=None``) draws fresh entropy per instance, so it
        never matches a prior plan.
        """
        path = self.cluster_dir / PLAN_NAME
        document = self.cluster_plan().to_dict()
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except json.JSONDecodeError:
                existing = None
            if (existing is None or self._sweep_identity(existing)
                    != self._sweep_identity(document)):
                if not reset:
                    raise RuntimeError(
                        f"{self.cluster_dir} already holds state for a "
                        f"different sweep plan; pass reset=True (or use a "
                        f"fresh directory) to discard it")
                self.reset_state()
        for sub in (TASKS_DIR, RESULTS_DIR, WORKERS_DIR):
            (self.cluster_dir / sub).mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, document, indent=2)
        return path

    def reset_state(self) -> None:
        """Discard all protocol state (plan, leases, done markers, parts)."""
        import shutil

        from repro.runtime.guard import QuarantineStore

        for sub in (TASKS_DIR, RESULTS_DIR, WORKERS_DIR, TELEMETRY_DIR,
                    QuarantineStore.DIRNAME):
            shutil.rmtree(self.cluster_dir / sub, ignore_errors=True)
        (self.cluster_dir / PLAN_NAME).unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Progress
    # ------------------------------------------------------------------ #
    def status(self, include_owners: bool = False) -> dict:
        """Done / leased / pending counts, per shard and overall.

        With ``include_owners`` the (single) directory scan also collects
        ``busy_workers`` — the ids behind the live leases — reading each
        live lease file once.
        """
        plan = self.plan()
        now = time.time()
        per_shard = []
        totals = {"done": 0, "leased": 0, "stale": 0, "pending": 0}
        owners: set = set()
        # Same staleness rule the transports apply: forgive up to the skew
        # tolerance of observed age before declaring a lease abandoned.
        stale_after = self.lease_timeout + self.clock_skew_tolerance
        for shard in plan.shards:
            counts = {"done": 0, "leased": 0, "stale": 0, "pending": 0}
            for index in shard:
                if done_path(self.cluster_dir, index).exists():
                    counts["done"] += 1
                    continue
                lease = lease_path(self.cluster_dir, index)
                try:
                    age = now - lease.stat().st_mtime
                except OSError:
                    counts["pending"] += 1
                    continue
                if age >= stale_after:
                    counts["stale"] += 1
                    continue
                counts["leased"] += 1
                if include_owners:
                    try:
                        owner = json.loads(lease.read_text()).get("worker_id")
                    except (OSError, json.JSONDecodeError):
                        owner = None
                    if owner:
                        owners.add(owner)
            per_shard.append(counts)
            for key, value in counts.items():
                totals[key] += value
        status = {"shards": per_shard, "total": totals,
                  "scenarios": len(self.specs)}
        if include_owners:
            status["busy_workers"] = sorted(owners)
        return status

    def is_complete(self) -> bool:
        """Whether every scenario has a done marker."""
        return all(done_path(self.cluster_dir, index).exists()
                   for index in range(len(self.specs)))

    def quarantine_records(self) -> list:
        """Durable quarantine records of this sweep (guarded runs only).

        Each is a :class:`repro.runtime.guard.QuarantineRecord`; empty when
        nothing was quarantined (or the plan ran unguarded).
        """
        from repro.runtime.guard import QuarantineStore

        return QuarantineStore(self.cluster_dir).load_all()

    # ------------------------------------------------------------------ #
    # Merge
    # ------------------------------------------------------------------ #
    def result_parts(self) -> list[Path]:
        """All sink parts workers have produced so far."""
        results = self.cluster_dir / RESULTS_DIR
        if not results.exists():
            return []
        return sorted(path for path in results.iterdir()
                      if path.name.startswith("part-")
                      and not path.name.endswith(".tmp"))

    def merge(self, require_complete: bool = True) -> SweepResult:
        """Merge all sink parts into the canonical :class:`SweepResult`.

        With ``require_complete`` (default) the merge fails loudly if any
        scenario index is missing; pass ``False`` to collect a partial
        result from a still-running or abandoned grid.

        When workers uploaded observability telemetry (``REPRO_OBS``
        enabled metrics), the per-worker registries are merged and attached
        as ``SweepResult.telemetry`` — and written next to the parts as
        ``metrics.json`` / ``metrics.prom``.  Without telemetry the field
        stays ``None``, so the merged result is field-for-field identical
        to an uninstrumented run.
        """
        result = merge_results(
            self.result_parts(),
            expected_count=len(self.specs) if require_complete else None,
            master_seed=self.master_seed,
            duration=self.duration,
        )
        telemetry = self.merged_telemetry()
        if telemetry is not None:
            result.telemetry = telemetry.to_dict()
            atomic_write_text(self.cluster_dir / "metrics.json",
                              telemetry.to_json(indent=2) + "\n")
            atomic_write_text(self.cluster_dir / "metrics.prom",
                              telemetry.to_prometheus())
        return result

    def merged_telemetry(self):
        """Merge every ``telemetry/<worker>.json`` into one registry.

        Returns a :class:`repro.obs.metrics.MetricsRegistry`, or ``None``
        when no worker uploaded telemetry (the ``REPRO_OBS``-off default).
        Unreadable snapshots are skipped — telemetry is best-effort side
        data and must never fail a merge.
        """
        from repro.obs.metrics import MetricsRegistry

        directory = self.cluster_dir / TELEMETRY_DIR
        if not directory.exists():
            return None
        merged: Optional[MetricsRegistry] = None
        for path in sorted(directory.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if merged is None:
                merged = MetricsRegistry()
            merged.merge(payload)
        return merged

    # ------------------------------------------------------------------ #
    # Cost-model persistence
    # ------------------------------------------------------------------ #
    def record_costs(self, result: SweepResult) -> Optional[Path]:
        """Fold ``result``'s per-scenario wall-clock into the persistent
        cost model, so the *next* sweep plans from calibrated costs.

        Loads (or creates) ``cost_model.json`` at :meth:`cost_model_path`,
        absorbs every fresh successful outcome and saves atomically.
        Returns the path, or ``None`` when the result held no usable
        observation (e.g. everything came from cache).
        """
        path = self.cost_model_path()
        model = RecordedCostModel.load_if_present(path)
        if model is None:
            model = RecordedCostModel()
        if model.calibrate(result) == 0:
            return None
        return model.save(path)

    # ------------------------------------------------------------------ #
    # Local execution convenience
    # ------------------------------------------------------------------ #
    def run_local(self, workers: Optional[int] = None,
                  start_method: Optional[str] = None,
                  reset: bool = False) -> SweepResult:
        """Run the whole grid with local worker *processes* and merge.

        One worker per shard by default.  Real multi-machine deployments
        run ``python -m repro.cluster.worker`` against the shared directory
        instead; this helper exists so examples, tests and CI exercise the
        identical protocol on one box.
        """
        import multiprocessing

        self.write_plan(reset=reset)
        if workers is None:
            workers = self.num_shards
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        context = multiprocessing.get_context(start_method)
        processes = []
        for worker_index in range(max(1, workers)):
            shard = worker_index % self.num_shards
            process = context.Process(
                target=_run_worker_process,
                args=(str(self.cluster_dir), f"local-{worker_index}", shard),
            )
            process.start()
            processes.append(process)
        for process in processes:
            process.join()
        failed = [p.exitcode for p in processes if p.exitcode != 0]
        if failed:
            raise RuntimeError(f"{len(failed)} local worker process(es) "
                               f"exited with codes {failed}")
        result = self.merge()
        self.record_costs(result)
        return result


def _run_worker_process(cluster_dir: str, worker_id: str, shard: int) -> None:
    """Module-level worker entry point (picklable for spawn contexts)."""
    from repro.cluster.worker import ClusterWorker

    ClusterWorker(cluster_dir, worker_id, shard=shard).run()
