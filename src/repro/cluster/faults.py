"""Deterministic fault injection for the cluster protocol.

The link layer the source paper defines is characterised by how it behaves
under loss, delay, duplication and reordering — this module applies the same
discipline to our own coordinator/worker protocol.  A
:class:`FaultyTransport` wraps any :class:`~repro.cluster.transport.Transport`
and adversarially perturbs its operations:

* **drop** — the request never reaches the coordinator (the caller sees a
  connection error before delivery);
* **reset** — the request *is* applied but the response is lost mid-flight
  (the caller cannot tell whether the operation happened — the classic
  at-least-once ambiguity idempotent operations exist to absorb);
* **duplicate** — the request is delivered twice (a retransmitted frame);
* **stale replay** — after the current operation, the *previous* operation
  is delivered again (an old frame arriving late, i.e. reordering);
* **delay** — the request is held briefly before delivery;
* **crash** — the worker dies at a chosen claim/submit point
  (:class:`InjectedWorkerCrash` propagates out of the worker loop, leaving
  its lease to go stale exactly like a machine loss);
* **clock skew** — the wrapped filesystem transport reads and writes lease
  times on a clock offset from true time, exercising the skew-tolerance
  lease math.

Every decision is a pure function of ``(seed, operation, nth call of that
operation)`` — see :meth:`FaultSchedule.decide` — so a failing run is
replayable from its seed alone regardless of thread interleaving, and the
consumed schedule can be dumped (:meth:`FaultSchedule.to_dict`) as a CI
artifact.

Like a real client, :class:`FaultyTransport` retries operations whose
delivery failed: the whole protocol is idempotent
(:data:`~repro.cluster.transport.IDEMPOTENT_OPS`), so retrying a possibly
applied operation is safe by contract.  A fault burst longer than the retry
budget surfaces as an :class:`InjectedFault` (a ``TransportError``), which
the worker loop already treats as a coordinator outage.

Protocol faults compose with **scenario-level** faults from
:mod:`repro.runtime.guard` (re-exported here): a
:class:`~repro.runtime.guard.ScenarioFaultPlan` published through
``REPRO_SCENARIO_FAULTS`` makes chosen scenarios hang, exhaust memory or
kill their worker process outright, and the guard/quarantine machinery must
contain the blast radius while *this* module shakes the wire underneath.
``examples/chaos_sweep.py`` runs both at once in CI.

The invariant under all of this stays the cluster package's gold standard:
a faulted sweep merges **field-for-field identical** to a serial
``SweepRunner`` run (``tests/test_cluster_faults.py``,
``examples/fault_injection_sweep.py``) — with quarantined scenarios, and
only those, excluded.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.cluster.transport import (
    FilesystemTransport,
    SocketTransport,
    TaskSnapshot,
    Transport,
    TransportError,
)
from repro.runtime.guard import (  # noqa: F401  (re-exported)
    SCENARIO_FAULTS_ENV,
    ScenarioFaultPlan,
    injected_scenario_fault,
)
from repro.runtime.sweep import ScenarioOutcome

#: Operations faults are injected into by default.  ``plan`` is excluded:
#: it is fetched once while the transport is being constructed, before the
#: wrapper exists to mediate it.
DEFAULT_FAULT_OPS = frozenset({
    "register", "snapshot", "claim", "heartbeat", "submit", "fail",
})


class InjectedFault(TransportError):
    """A scheduled drop/reset that exhausted the retry budget.

    A ``TransportError`` subclass on purpose: to the worker loop an
    injected fault burst is indistinguishable from a real coordinator
    outage, and must be handled by the same code path.
    """


class InjectedWorkerCrash(RuntimeError):
    """A scheduled worker death at a claim/submit point.

    Deliberately *not* a ``TransportError``: the transport did not fail —
    the worker process is gone.  It propagates out of
    ``ClusterWorker.run()`` so the harness can abandon the worker, whose
    unheartbeated lease then goes stale and is reclaimed by a peer, exactly
    like a machine lost mid-scenario.
    """


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one delivery attempt of one operation."""

    #: Request lost before delivery — not applied, caller sees an error.
    drop: bool = False
    #: Connection reset after delivery — applied, caller sees an error.
    reset: bool = False
    #: Request delivered twice (second response discarded).
    duplicate: bool = False
    #: After this operation, redeliver the previous operation (stale frame).
    replay_stale: bool = False
    #: Seconds to hold the request before delivery.
    delay: float = 0.0
    #: Worker death: ``None``, ``"before"`` (op not applied) or ``"after"``
    #: (op applied, worker dies before using the response).
    crash: Optional[str] = None

    @property
    def is_clean(self) -> bool:
        """No fault at all on this delivery."""
        return not (self.drop or self.reset or self.duplicate
                    or self.replay_stale or self.delay or self.crash)


@dataclass
class FaultSchedule:
    """Seeded, replayable fault plan over protocol operations.

    Rates are independent per-delivery probabilities.  Decisions are a pure
    function of ``(seed, op, n)`` where ``n`` counts deliveries of ``op``
    through this schedule — thread interleaving between different
    operations cannot change any individual decision, so a failure
    reproduces from the seed alone.
    """

    seed: int = 0
    #: P(request lost before delivery) per attempt.
    drop: float = 0.0
    #: P(connection reset after delivery) per attempt.
    reset: float = 0.0
    #: P(request delivered twice).
    duplicate: float = 0.0
    #: P(previous operation redelivered after this one).
    replay: float = 0.0
    #: P(delivery held for ``delay_seconds``).
    delay: float = 0.0
    delay_seconds: float = 0.002
    #: Seconds added to the wrapped process's wall clock (filesystem
    #: transport lease reads/writes) — simulated cross-machine skew.
    clock_skew: float = 0.0
    #: Crash the worker on the ``crash_call``-th delivery of ``crash_op``
    #: (``"claim"`` / ``"submit"``), ``"before"`` or ``"after"`` applying it.
    crash_op: Optional[str] = None
    crash_call: int = 1
    crash_mode: str = "after"
    #: Operations the probabilistic faults apply to.
    fault_ops: frozenset = DEFAULT_FAULT_OPS

    def __post_init__(self) -> None:
        if self.crash_mode not in ("before", "after"):
            raise ValueError(f"crash_mode must be 'before' or 'after', "
                             f"got {self.crash_mode!r}")
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        #: Every non-clean decision taken, as ``(op, n, decision)`` — the
        #: replay log dumped into CI artifacts on a mismatch.
        self.injected: list[tuple[str, int, FaultDecision]] = []

    def decide(self, op: str) -> FaultDecision:
        """The (deterministic) fate of the next delivery of ``op``."""
        with self._lock:
            n = self._counts.get(op, 0) + 1
            self._counts[op] = n
        crash = None
        if op == self.crash_op and n == self.crash_call:
            crash = self.crash_mode
        if op in self.fault_ops:
            rng = random.Random(f"{self.seed}:{op}:{n}")
            decision = FaultDecision(
                drop=rng.random() < self.drop,
                reset=rng.random() < self.reset,
                duplicate=rng.random() < self.duplicate,
                replay_stale=rng.random() < self.replay,
                delay=(self.delay_seconds
                       if rng.random() < self.delay else 0.0),
                crash=crash,
            )
        else:
            decision = FaultDecision(crash=crash)
        if not decision.is_clean:
            with self._lock:
                self.injected.append((op, n, decision))
        return decision

    def to_dict(self) -> dict:
        """Replayable description: the seed, rates and every injected fault."""
        return {
            "seed": self.seed,
            "rates": {"drop": self.drop, "reset": self.reset,
                      "duplicate": self.duplicate, "replay": self.replay,
                      "delay": self.delay},
            "delay_seconds": self.delay_seconds,
            "clock_skew": self.clock_skew,
            "crash": {"op": self.crash_op, "call": self.crash_call,
                      "mode": self.crash_mode},
            "injected": [{"op": op, "call": n,
                          "faults": [name for name in
                                     ("drop", "reset", "duplicate",
                                      "replay_stale", "crash")
                                     if getattr(decision, name)]}
                         for op, n, decision in self.injected],
        }


class FaultyTransport(Transport):
    """Adversarial wrapper applying a :class:`FaultSchedule` to a transport.

    Faults are injected *around* the inner transport's operations — the
    wrapper plays both the unreliable network and the disciplined client:
    a drop or reset raises internally and is retried (every protocol
    operation is idempotent, so retrying a possibly-applied request is
    safe), mirroring :meth:`SocketTransport.request`'s retry path; a burst
    outlasting ``max_retries`` surfaces as :class:`InjectedFault`.

    Construct directly over any transport, or use :meth:`over_filesystem` /
    :meth:`over_socket` to also wire in the schedule's simulated clock skew.
    """

    def __init__(self, inner: Transport, schedule: FaultSchedule,
                 max_retries: int = 8, retry_delay: float = 0.002) -> None:
        self.inner = inner
        self.schedule = schedule
        self.max_retries = max(0, int(max_retries))
        self.retry_delay = max(0.0, retry_delay)
        self.kind = f"faulty+{inner.kind}"
        self.plan = inner.plan
        #: The previous applied operation, for stale-replay redelivery.
        self._last: Optional[tuple[str, Callable, tuple]] = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def over_filesystem(cls, cluster_dir: "str | Path",
                        schedule: FaultSchedule,
                        **kwargs) -> "FaultyTransport":
        """Faulty shared-directory transport whose process clock is offset
        by the schedule's ``clock_skew`` (lease mtime writes *and* reads)."""
        skew = schedule.clock_skew
        inner = FilesystemTransport(cluster_dir,
                                    clock=lambda: time.time() + skew)
        return cls(inner, schedule, **kwargs)

    @classmethod
    def over_socket(cls, address: "str | tuple[str, int]",
                    schedule: FaultSchedule, **kwargs) -> "FaultyTransport":
        """Faulty TCP transport.  The schedule's ``clock_skew`` is recorded
        but has no pathway into the protocol: the coordinator is the single
        clock authority for socket workers, which is exactly the property
        the acceptance tests pin (a skewed worker cannot perturb leases)."""
        inner = SocketTransport(address)
        return cls(inner, schedule, **kwargs)

    # ------------------------------------------------------------------ #
    # Fault application
    # ------------------------------------------------------------------ #
    def _apply(self, op: str, func: Callable, *args):
        """Deliver ``func(*args)`` under the schedule's faults for ``op``."""
        for attempt in range(self.max_retries + 1):
            if attempt:
                time.sleep(self.retry_delay)
            decision = self.schedule.decide(op)
            if decision.crash == "before":
                raise InjectedWorkerCrash(
                    f"injected crash before {op!r} "
                    f"(call {self.schedule._counts[op]})")
            if decision.delay:
                time.sleep(decision.delay)
            if decision.drop:
                if attempt < self.max_retries:
                    continue  # idempotent: safe to re-send
                raise InjectedFault(f"injected drop of {op!r} outlasted "
                                    f"{self.max_retries} retries")
            with self._lock:
                result = func(*args)
                if decision.duplicate:
                    func(*args)  # retransmitted frame; response discarded
                if decision.replay_stale and self._last is not None:
                    _, last_func, last_args = self._last
                    last_func(*last_args)  # stale frame arriving late
                self._last = (op, func, args)
            if decision.crash == "after":
                raise InjectedWorkerCrash(
                    f"injected crash after {op!r} "
                    f"(call {self.schedule._counts[op]})")
            if decision.reset:
                # Applied, but the caller must not know: retry — the
                # redelivery is exactly the duplicate-submission /
                # double-claim case the idempotent protocol absorbs.
                if attempt < self.max_retries:
                    continue
                raise InjectedFault(f"injected reset of {op!r} outlasted "
                                    f"{self.max_retries} retries")
            return result
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # Transport contract
    # ------------------------------------------------------------------ #
    def register_worker(self, worker_id: str, shard: Optional[int]) -> int:
        return self._apply("register", self.inner.register_worker,
                           worker_id, shard)

    def snapshot(self) -> TaskSnapshot:
        return self._apply("snapshot", self.inner.snapshot)

    def try_claim(self, index: int, worker_id: str) -> bool:
        return self._apply("claim", self.inner.try_claim, index, worker_id)

    def heartbeat(self, index: int, worker_id: str) -> bool:
        return self._apply("heartbeat", self.inner.heartbeat,
                           index, worker_id)

    def submit_result(self, worker_id: str, index: int,
                      outcome: ScenarioOutcome, attempt: int = 0) -> None:
        return self._apply("submit", self.inner.submit_result,
                           worker_id, index, outcome, attempt)

    def record_failure(self, worker_id: str, index: int,
                       outcome: ScenarioOutcome, attempt: int = 0) -> dict:
        return self._apply("fail", self.inner.record_failure,
                           worker_id, index, outcome, attempt)

    def send_telemetry(self, worker_id: str, metrics: dict) -> None:
        return self._apply("telemetry", self.inner.send_telemetry,
                           worker_id, metrics)

    def close(self) -> None:
        self.inner.close()
