"""Worker side of the filesystem cluster protocol.

A worker is stateless: point it at a cluster directory and it rebuilds the
scenario list, seeds and shard plan from ``plan.json``, then loops:

1. **Claim** the next pending scenario of its own shard (front to back — the
   planner puts the costliest first).  Claims are atomic lease-file creation;
   losing a race just moves on to the next candidate.
2. **Steal** when its shard is exhausted: victims are ranked by estimated
   *remaining* cost (the slowest shard is robbed first) and scenarios are
   taken from the back of the victim's list (the cheapest remaining work),
   so stragglers never gate the grid while the victim keeps its expensive
   head-of-line work.
3. **Reclaim** scenarios whose lease heartbeat went stale — a worker died
   mid-scenario.  Takeover is an atomic rename; if two workers race, both
   re-execute the scenario, which is harmless: execution is deterministic,
   so the duplicate sink records are identical and the merge dedupes them.

While a scenario runs, a daemon heartbeat thread refreshes the lease mtime
at a third of the lease timeout, so long scenarios are never mistaken for
dead workers.  Outcomes stream through the worker's private sink part;
the ``done`` marker is written only after the sink write returned (i.e. the
outcome is durable), which makes crash-and-resume safe at every point.

``python -m repro.cluster.worker --cluster-dir DIR`` runs one worker from
the command line — that is the whole multi-machine deployment story.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Optional

from repro.cluster.coordinator import (
    RESULTS_DIR,
    WORKERS_DIR,
    ClusterPlan,
    atomic_write_json,
    done_path,
    lease_path,
)
from repro.cluster.sinks import open_sink, part_name
from repro.runtime.cache import CacheReport, CacheSkip, ResumeCache
from repro.runtime.sweep import ScenarioOutcome, execute_scenario


class _Heartbeat:
    """Daemon thread refreshing a lease's mtime while a scenario runs."""

    def __init__(self, lease: Path, interval: float) -> None:
        self._lease = lease
        self._interval = max(interval, 0.05)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                os.utime(self._lease)
            except OSError:
                return  # lease was taken over or cleaned up: stop beating


class ClusterWorker:
    """Executes scenarios from a shared cluster directory.

    Parameters
    ----------
    cluster_dir:
        Directory a :class:`~repro.cluster.coordinator.ClusterCoordinator`
        wrote a plan into.
    worker_id:
        Unique name; used for the sink part, lease ownership and the
        registration file.  Defaults to ``<hostname>-<pid>``.
    shard:
        Home shard id.  ``None`` auto-assigns round-robin over the existing
        worker registrations.
    steal:
        Whether to take work from other shards once the home shard is done.
    crash_after_claims:
        Test hook — the worker "dies" (stops, leaving its last lease without
        a heartbeat) immediately after its N-th successful claim, simulating
        a machine lost mid-scenario.
    on_outcome:
        Optional progress callback, as in ``SweepRunner``.
    """

    def __init__(self, cluster_dir: str | Path,
                 worker_id: Optional[str] = None,
                 shard: Optional[int] = None,
                 steal: bool = True,
                 crash_after_claims: Optional[int] = None,
                 on_outcome: Optional[Callable[[ScenarioOutcome], None]] = None,
                 ) -> None:
        self.cluster_dir = Path(cluster_dir)
        self.plan = ClusterPlan.load(self.cluster_dir)
        if worker_id is None:
            worker_id = f"{os.uname().nodename}-{os.getpid()}"
        self.worker_id = worker_id
        self.steal = steal
        self.crash_after_claims = crash_after_claims
        self.on_outcome = on_outcome
        self.crashed = False
        self.executed: list[int] = []
        self.cache_report = CacheReport()
        self._claims = 0
        self._cache = (None if self.plan.cache_dir is None
                       else ResumeCache(self.plan.cache_dir))
        self.shard = self._register(shard)
        self.sink = open_sink(
            self.plan.sink,
            self.cluster_dir / RESULTS_DIR / part_name(self.plan.sink,
                                                       self.worker_id),
            master_seed=self.plan.master_seed,
            duration=self.plan.duration,
        )

    # ------------------------------------------------------------------ #
    # Registration / shard assignment
    # ------------------------------------------------------------------ #
    def _register(self, shard: Optional[int]) -> int:
        workers_dir = self.cluster_dir / WORKERS_DIR
        workers_dir.mkdir(parents=True, exist_ok=True)
        num_shards = self.plan.shard_plan.num_shards
        if shard is None:
            existing = len(list(workers_dir.glob("*.json")))
            shard = existing % num_shards
        if not 0 <= shard < num_shards:
            raise ValueError(f"shard {shard} out of range "
                             f"(plan has {num_shards} shards)")
        atomic_write_json(workers_dir / f"{self.worker_id}.json",
                          {"worker_id": self.worker_id, "shard": shard,
                           "registered_at": time.time()})
        return shard

    # ------------------------------------------------------------------ #
    # Candidate selection
    # ------------------------------------------------------------------ #
    def _is_done(self, index: int) -> bool:
        return done_path(self.cluster_dir, index).exists()

    def _lease_age(self, index: int) -> Optional[float]:
        """Seconds since the lease's last heartbeat, or ``None`` if unleased."""
        try:
            return time.time() - lease_path(self.cluster_dir,
                                            index).stat().st_mtime
        except OSError:
            return None

    def _is_available(self, index: int) -> bool:
        """Pending: not done, and not covered by a live lease."""
        if self._is_done(index):
            return False
        age = self._lease_age(index)
        return age is None or age >= self.plan.lease_timeout

    def _pending_of_shard(self, shard_id: int) -> list[int]:
        return [index for index in self.plan.shard_plan.shards[shard_id]
                if self._is_available(index)]

    def _next_candidates(self):
        """Yield candidate indices in claim-priority order.

        Own shard front-to-back first; then, if stealing, other shards by
        descending remaining estimated cost, robbed back-to-front.
        """
        yield from self._pending_of_shard(self.shard)
        if not self.steal:
            return
        plan = self.plan.shard_plan
        victims = []
        for shard_id in range(plan.num_shards):
            if shard_id == self.shard:
                continue
            pending = self._pending_of_shard(shard_id)
            if not pending:
                continue
            remaining = sum(plan.scenario_costs[index] for index in pending)
            victims.append((-remaining, shard_id, pending))
        victims.sort()
        for _, _, pending in victims:
            yield from reversed(pending)

    # ------------------------------------------------------------------ #
    # Claiming
    # ------------------------------------------------------------------ #
    def _claim(self, index: int) -> bool:
        """Try to acquire the lease for ``index``; never blocks."""
        lease = lease_path(self.cluster_dir, index)
        payload = json.dumps({"worker_id": self.worker_id,
                              "claimed_at": time.time()})
        try:
            descriptor = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            age = self._lease_age(index)
            if age is None:
                # Lease vanished between the existence check and now —
                # retry through the normal candidate loop.
                return False
            if age < self.plan.lease_timeout or self._is_done(index):
                return False
            # Stale lease: take it over atomically.  If two workers race
            # here both takeovers "succeed" and the scenario runs twice —
            # deterministic execution makes that merely wasteful, and the
            # merge dedupes the identical records.
            tmp = lease.with_name(f"{lease.name}.{self.worker_id}.tmp")
            tmp.write_text(payload)
            tmp.replace(lease)
            return not self._is_done(index)
        with os.fdopen(descriptor, "w") as handle:
            handle.write(payload)
        return True

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _execute(self, index: int) -> ScenarioOutcome:
        spec = self.plan.specs[index]
        seed = self.plan.seeds[index]
        duration = self.plan.duration
        outcome = None
        if self._cache is not None:
            outcome, reason = self._cache.load(spec, seed, duration)
            if outcome is not None:
                self.cache_report.hits.append(spec.name)
            elif reason is not None:
                self.cache_report.skips.append(CacheSkip(spec.name, reason))
            else:
                self.cache_report.misses.append(spec.name)
        if outcome is None:
            outcome = execute_scenario(spec, seed, duration)
            if self._cache is not None:
                self._cache.store(spec, outcome, duration)
        self.sink.write(index, outcome)
        atomic_write_json(done_path(self.cluster_dir, index),
                          {"index": index, "worker_id": self.worker_id,
                           "wall_time": outcome.wall_time,
                           "finished_at": time.time()})
        self.executed.append(index)
        if self.on_outcome is not None:
            self.on_outcome(outcome)
        return outcome

    def step(self) -> Optional[int]:
        """Claim and execute one scenario; ``None`` when nothing is left.

        "Nothing" means: no pending scenario this worker may take right now.
        Live leases held by other workers are *not* waited for — callers
        that want to drain a grid poll :meth:`step` (or use :meth:`run`)
        until the coordinator reports completion.
        """
        if self.crashed:
            return None
        for index in self._next_candidates():
            if not self._claim(index):
                continue
            self._claims += 1
            if (self.crash_after_claims is not None
                    and self._claims >= self.crash_after_claims):
                # Simulated death mid-scenario: keep the lease, never
                # heartbeat, write nothing.  The lease goes stale and the
                # scenario is reclaimed by a peer.
                self.crashed = True
                return None
            lease = lease_path(self.cluster_dir, index)
            with _Heartbeat(lease, self.plan.lease_timeout / 3.0):
                self._execute(index)
            return index
        return None

    def run(self, poll_interval: float = 0.2,
            wait_for_stragglers: bool = True) -> int:
        """Serve scenarios until the grid has no work left for this worker.

        With ``wait_for_stragglers`` the worker idles (sleeping
        ``poll_interval``) while other workers still hold live leases, so it
        can reclaim them if their owners die; it returns once every
        scenario is done.  Returns the number of scenarios this worker
        executed.
        """
        while True:
            if self.step() is not None:
                continue
            if self.crashed or not wait_for_stragglers:
                break
            if all(self._is_done(index)
                   for index in range(len(self.plan.specs))):
                break
            time.sleep(poll_interval)
        self.sink.close()
        return len(self.executed)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point: ``python -m repro.cluster.worker``."""
    parser = argparse.ArgumentParser(
        description="Run one sweep-cluster worker against a shared "
                    "cluster directory.")
    parser.add_argument("--cluster-dir", required=True,
                        help="directory containing plan.json")
    parser.add_argument("--worker-id", default=None,
                        help="unique worker name (default: <host>-<pid>)")
    parser.add_argument("--shard", type=int, default=None,
                        help="home shard (default: auto round-robin)")
    parser.add_argument("--no-steal", action="store_true",
                        help="never take work from other shards")
    parser.add_argument("--no-wait", action="store_true",
                        help="exit when idle instead of standing by to "
                             "reclaim crashed peers' work")
    args = parser.parse_args(argv)

    def progress(outcome: ScenarioOutcome) -> None:
        tag = "cached" if outcome.from_cache else (
            "ok" if outcome.ok else "FAILED")
        print(f"[{worker.worker_id}] {outcome.scenario_name:<40} {tag} "
              f"({outcome.wall_time:.1f}s)", flush=True)

    worker = ClusterWorker(args.cluster_dir, worker_id=args.worker_id,
                           shard=args.shard, steal=not args.no_steal,
                           on_outcome=progress)
    print(f"[{worker.worker_id}] serving shard {worker.shard} of "
          f"{worker.plan.shard_plan.num_shards} "
          f"({len(worker.plan.specs)} scenarios total)", flush=True)
    executed = worker.run(wait_for_stragglers=not args.no_wait)
    print(f"[{worker.worker_id}] done: {executed} scenario(s) executed",
          flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
