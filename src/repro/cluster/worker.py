"""Worker side of the cluster protocol, over any transport.

A worker is stateless: point it at a cluster directory (filesystem
transport) or a coordinator address (socket transport) and it rebuilds the
scenario list, seeds and shard plan from the plan document, then loops:

1. **Claim** the next pending scenario of its own shard (front to back — the
   planner puts the costliest first).  Claims go through the transport's
   atomic :meth:`~repro.cluster.transport.Transport.try_claim`; losing a race
   just moves on to the next candidate.
2. **Steal** when its shard is exhausted: victims are ranked by estimated
   *remaining* cost (the slowest shard is robbed first) and scenarios are
   taken from the back of the victim's list (the cheapest remaining work),
   so stragglers never gate the grid while the victim keeps its expensive
   head-of-line work.
3. **Reclaim** scenarios whose lease heartbeat went stale — a worker died
   mid-scenario.  Takeover is atomic inside the transport; if two workers
   race, both re-execute the scenario, which is harmless: execution is
   deterministic, so the duplicate sink records are identical and the merge
   dedupes them.

While a scenario runs, a daemon heartbeat thread refreshes the lease through
the transport at a third of the lease timeout, so long scenarios are never
mistaken for dead workers; a heartbeat that reports the lease lost (taken
over while this worker was presumed dead) stops beating.  Outcomes stream
through :meth:`~repro.cluster.transport.Transport.submit_result`, which is
durable before the done marker exists — crash-and-resume is safe at every
point.

With ``batch_size > 1`` a worker claims up to that many *analytic* scenarios
per step and advances them as one vectorized cohort
(:mod:`repro.runtime.batch`): one lease and one heartbeat per member, so the
failure story is unchanged — a member whose lease was taken over mid-cohort
is aborted individually while the others still submit.

When the plan carries a :class:`~repro.runtime.guard.GuardPolicy` the worker
executes under it (event budgets, wall deadlines, result validation) and
reports failed outcomes through
:meth:`~repro.cluster.transport.Transport.record_failure` instead of
submitting them: the coordinator charges the scenario's retry budget,
releases the lease for a retry, and quarantines the scenario once the
budget is spent.  A ``MemoryError`` anywhere in execution is reported as an
``oom`` failure and halves this worker's cohort batch size — the usual
reason a cohort blows the memory ceiling is the cohort itself.

CLI — the whole multi-machine deployment story::

    python -m repro.cluster.worker --cluster-dir DIR          # shared filesystem
    python -m repro.cluster.worker --coordinator HOST:PORT    # plain TCP
"""

from __future__ import annotations

import argparse
import contextlib
import logging
import os
import threading
import time
from pathlib import Path
from typing import Callable, Optional

from repro.cluster.transport import (
    FilesystemTransport,
    SocketTransport,
    TaskSnapshot,
    Transport,
    TransportError,
)
from repro.runtime.cache import (
    CacheReport,
    CacheSkip,
    ResumeCache,
    cost_model_path,
)
from repro.runtime.sweep import (
    ScenarioOutcome,
    _failure_outcome,
    execute_scenario,
)

logger = logging.getLogger("repro.cluster.worker")

#: Ceiling of the auto-derived cohort size: recorded speedups beyond this
#: are noise (the vectorized backend's amortization saturates, see
#: ``StaticCostModel.ANALYTIC_COHORT_SPEEDUP``), and oversized cohorts delay
#: lease turnover without buying throughput.
MAX_AUTO_BATCH_SIZE = 8


def derive_batch_size(plan, cache_dir: "Optional[str | Path]" = None) -> int:
    """Pick a cohort size from recorded cost-model history.

    The persisted cost model (``cost_model.json`` next to the resume cache,
    or in the cluster directory) records cohort-mode throughput separately
    from solo throughput under the ``#cohort`` backend key.  The observed
    per-member speedup, averaged over the plan's cohortable scenarios that
    have history in *both* modes, is the cohort size worth claiming: a
    cohort of roughly that many members keeps the vectorized backend at its
    measured amortization.  Without history (first sweep, foreign machine,
    socket worker without a shared filesystem) this returns 1 — the solo
    path — so auto-derivation can never regress an uncalibrated deployment.
    """
    from repro.cluster.planner import RecordedCostModel
    from repro.runtime.batch import cohortable

    if cache_dir is None:
        cache_dir = plan.cache_dir
    if cache_dir is None:
        return 1
    model = RecordedCostModel.load_if_present(cost_model_path(cache_dir))
    if model is None:
        return 1
    speedups = []
    for spec in plan.specs:
        if not cohortable(spec):
            continue
        solo = model.recorded_rate(spec)
        cohort = model.recorded_rate(spec, cohort=True)
        if solo is None or cohort is None or cohort <= 0:
            continue
        speedups.append(solo / cohort)
    if not speedups:
        return 1
    mean = sum(speedups) / len(speedups)
    return max(1, min(MAX_AUTO_BATCH_SIZE, round(mean)))


class _Heartbeat:
    """Daemon thread refreshing a lease through the transport while a
    scenario runs.  Stops on its own once the transport reports the lease
    lost (stale takeover by a peer) — and **surfaces** that loss through
    :attr:`lease_lost`, which the worker must check before submitting: a
    displaced worker that submits anyway double-counts the scenario (its
    peer took over and will submit it too)."""

    def __init__(self, transport: Transport, index: int, worker_id: str,
                 interval: float) -> None:
        self._transport = transport
        self._index = index
        self._worker_id = worker_id
        self._interval = max(interval, 0.05)
        self._stop = threading.Event()
        #: Set once the transport authoritatively reports the lease as no
        #: longer ours.  The running scenario observes it as its abort
        #: signal: finish (execution is cheap and deterministic) but do NOT
        #: submit.
        self.lease_lost = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                alive = self._transport.heartbeat(self._index,
                                                  self._worker_id)
            except TransportError:
                # Transient outage — unknown is not "lost".  Keep beating;
                # the transport reconnects/retries, and a genuine takeover
                # is reported authoritatively as False.
                continue
            if not alive:
                self.lease_lost.set()
                return  # lease was taken over or cleaned up: stop beating


class ClusterWorker:
    """Executes scenarios from a cluster plan over any transport.

    Parameters
    ----------
    cluster:
        A :class:`~repro.cluster.transport.Transport`, or a cluster
        directory path (opened as a :class:`FilesystemTransport`).
    worker_id:
        Unique name; used for the sink part, lease ownership and the
        registration.  Defaults to ``<hostname>-<pid>``.
    shard:
        Home shard id.  ``None`` auto-assigns round-robin over the existing
        worker registrations.
    steal:
        Whether to take work from other shards once the home shard is done.
    crash_after_claims:
        Test hook — the worker "dies" (stops, leaving its last lease without
        a heartbeat) immediately after its N-th successful claim, simulating
        a machine lost mid-scenario.
    on_outcome:
        Optional progress callback, as in ``SweepRunner``.
    cache_dir:
        Resume-cache directory override.  Defaults to the plan's
        ``cache_dir`` (shared-filesystem deployments); socket workers
        typically pass a machine-local directory or ``None``.
    batch_size:
        Cohort size for vectorized execution.  With ``batch_size > 1`` each
        step claims up to this many analytic scenarios and runs them as one
        cohort; non-analytic scenarios keep the solo path.  ``None`` (the
        default) derives the size from the persisted cost model's recorded
        cohort speedup (see :func:`derive_batch_size`) — 1 when there is no
        calibration history.
    """

    def __init__(self, cluster: "Transport | str | Path",
                 worker_id: Optional[str] = None,
                 shard: Optional[int] = None,
                 steal: bool = True,
                 crash_after_claims: Optional[int] = None,
                 on_outcome: Optional[Callable[[ScenarioOutcome], None]] = None,
                 cache_dir: "Optional[str | Path]" = ...,
                 batch_size: Optional[int] = None,
                 ) -> None:
        if isinstance(cluster, Transport):
            self.transport = cluster
        else:
            self.transport = FilesystemTransport(cluster)
        self.plan = self.transport.plan
        if worker_id is None:
            worker_id = f"{os.uname().nodename}-{os.getpid()}"
        self.worker_id = worker_id
        self.steal = steal
        if cache_dir is ...:
            cache_dir = self.plan.cache_dir
        if batch_size is None:
            batch_size = derive_batch_size(self.plan, cache_dir=cache_dir)
            if batch_size > 1:
                logger.info("[%s] auto-derived cohort batch size %d from "
                            "recorded cost model", worker_id, batch_size)
        self.batch_size = max(1, int(batch_size))
        self.crash_after_claims = crash_after_claims
        self.on_outcome = on_outcome
        self.crashed = False
        self.executed: list[int] = []
        #: Indices whose failed outcomes were reported through
        #: :meth:`Transport.record_failure` (guarded plans only) — the
        #: scenario goes back to pending for a retry, or is quarantined by
        #: the coordinator once its budget is spent.
        self.failed: list[int] = []
        #: Indices this worker computed but did **not** submit because its
        #: lease was taken over mid-run (the peer that took over owns the
        #: submission; submitting here too would double-count).
        self.aborted: list[int] = []
        self.cache_report = CacheReport()
        self._claims = 0
        #: Monotonic per-execution token, sent with every submit so the
        #: coordinator can dedupe duplicate deliveries of one execution
        #: (keyed on ``(index, worker_id, attempt)``).
        self._attempts = 0
        self._last_snapshot: Optional[TaskSnapshot] = None
        #: Shared vectorized backend reused across this worker's cohorts so
        #: FEU tables and physics chains stay warm between steps (results
        #: are bit-identical with or without the reuse).
        self._cohort_backend = None
        self._cache = None if cache_dir is None else ResumeCache(cache_dir)
        #: The plan's supervision policy (``None`` on unguarded plans):
        #: installed into every execution and the trigger for routing
        #: failures through ``record_failure`` instead of ``submit_result``.
        self.guard = self.plan.guard_policy()
        self.shard = self.transport.register_worker(self.worker_id, shard)
        self._own_indices = frozenset(
            self.plan.shard_plan.shards[self.shard])
        # Observability: a per-worker metrics registry when REPRO_OBS
        # enables metrics, shipped to the coordinator through the
        # transport's idempotent ``telemetry`` op on close().  None — the
        # production default — costs nothing on the claim/execute path.
        from repro.obs import config_from_env

        config = config_from_env()
        self.metrics = None
        if config is not None and config.metrics:
            from repro.obs.metrics import MetricsRegistry

            self.metrics = MetricsRegistry(
                base_labels={"worker": self.worker_id,
                             "shard": str(self.shard)})

    # ------------------------------------------------------------------ #
    # Candidate selection
    # ------------------------------------------------------------------ #
    def _pending_of_shard(self, snapshot: TaskSnapshot,
                          shard_id: int) -> list[int]:
        timeout = self.plan.lease_timeout
        return [index for index in self.plan.shard_plan.shards[shard_id]
                if snapshot.is_available(index, timeout)]

    def _next_candidates(self, snapshot: TaskSnapshot):
        """Yield candidate indices in claim-priority order.

        Own shard front-to-back first; then, if stealing, other shards by
        descending remaining estimated cost, robbed back-to-front.
        """
        yield from self._pending_of_shard(snapshot, self.shard)
        if not self.steal:
            return
        plan = self.plan.shard_plan
        victims = []
        for shard_id in range(plan.num_shards):
            if shard_id == self.shard:
                continue
            pending = self._pending_of_shard(snapshot, shard_id)
            if not pending:
                continue
            remaining = sum(plan.scenario_costs[index] for index in pending)
            victims.append((-remaining, shard_id, pending))
        victims.sort()
        for _, _, pending in victims:
            yield from reversed(pending)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _load_cached(self, index: int) -> Optional[ScenarioOutcome]:
        """Resume-cache lookup for ``index`` (updates the cache report)."""
        if self._cache is None:
            return None
        spec = self.plan.specs[index]
        outcome, reason = self._cache.load(spec, self.plan.seeds[index],
                                           self.plan.duration)
        if outcome is not None:
            self.cache_report.hits.append(spec.name)
        elif reason is not None:
            self.cache_report.skips.append(CacheSkip(spec.name, reason))
        else:
            self.cache_report.misses.append(spec.name)
        return outcome

    def _compute(self, index: int) -> ScenarioOutcome:
        """Produce the outcome for ``index`` (cache hit or execution) —
        submission is separate so the lease can be re-checked between the
        two."""
        outcome = self._load_cached(index)
        if outcome is None:
            spec = self.plan.specs[index]
            # Unguarded plans keep the exact pre-guard call (and signature,
            # for test doubles); the keyword only appears when a policy is
            # actually in force.
            guard_kwargs = {} if self.guard is None else {"guard": self.guard}
            try:
                outcome = execute_scenario(spec, self.plan.seeds[index],
                                           self.plan.duration,
                                           **guard_kwargs)
            except MemoryError:
                # execute_scenario catches MemoryError from the scenario
                # itself; this one fired outside it (cache I/O, outcome
                # assembly).  Same taxonomy: an oom failure.
                outcome = _failure_outcome(
                    spec, self.plan.seeds[index], self.plan.duration,
                    "oom", "MemoryError outside scenario execution",
                    time.perf_counter())
            if self._cache is not None:
                self._cache.store(spec, outcome, self.plan.duration)
        return outcome

    def _note_claim(self, index: int,
                    snapshot: Optional[TaskSnapshot]) -> None:
        """Account one granted claim (steal / stale-lease takeover split)."""
        self._claims += 1
        if self.metrics is None:
            return
        self.metrics.counter("repro_worker_claims_total")
        if index not in self._own_indices:
            self.metrics.counter("repro_worker_steals_total")
        if snapshot is not None:
            age = snapshot.lease_ages.get(index)
            if age is not None and age >= self.plan.lease_timeout:
                # The claim displaced a stale lease: a peer died (or was
                # presumed dead) mid-scenario and this worker took over.
                self.metrics.counter("repro_worker_takeovers_total")

    def _submit(self, index: int, outcome: ScenarioOutcome) -> None:
        self._attempts += 1
        self.transport.submit_result(self.worker_id, index, outcome,
                                     attempt=self._attempts)
        self.executed.append(index)
        if self.metrics is not None:
            self.metrics.counter("repro_worker_submits_total",
                                 status=outcome.status)
            if outcome.from_cache:
                self.metrics.counter("repro_worker_cache_hits_total")
            else:
                self.metrics.counter("repro_worker_scenarios_executed_total")
                self.metrics.observe("repro_worker_scenario_wall_seconds",
                                     outcome.wall_time)
            self.metrics.counter("repro_worker_events_processed_total",
                                 outcome.events_processed)
            self.metrics.counter("repro_worker_events_elided_total",
                                 outcome.events_elided)
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    def _report_failure(self, index: int, outcome: ScenarioOutcome) -> None:
        """Charge a failed execution against the scenario's retry budget.

        The transport releases this worker's lease (the scenario goes back
        to pending for a retry — possibly by this same worker) and, once
        the budget is spent, quarantines it: a durable record plus a
        synthetic ``quarantined`` outcome in the sinks, so the sweep still
        completes.  An ``oom`` failure additionally halves this worker's
        cohort batch size — smaller cohorts are the one lever a worker has
        against its own memory ceiling.
        """
        self._attempts += 1
        self.failed.append(index)
        if self.metrics is not None:
            self.metrics.counter("repro_worker_failures_total",
                                 status=outcome.status)
        if outcome.status == "oom" and self.batch_size > 1:
            self.batch_size = max(1, self.batch_size // 2)
            logger.warning("[%s] oom on scenario %d; cohort batch size "
                           "halved to %d", self.worker_id, index,
                           self.batch_size)
        charged = self.transport.record_failure(self.worker_id, index,
                                                outcome,
                                                attempt=self._attempts)
        logger.warning(
            "[%s] scenario %d failed [%s] — attempt %s of %d%s: %s",
            self.worker_id, index, outcome.status,
            charged.get("attempts", "?"), self.guard.max_attempts,
            " (quarantined)" if charged.get("quarantined") else "",
            outcome.error)
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    def _execute_claimed(self, index: int) -> int:
        """Run one freshly claimed scenario under its heartbeat and submit
        (or abort/report) it."""
        with _Heartbeat(self.transport, index, self.worker_id,
                        self.plan.lease_timeout / 3.0) as heartbeat:
            outcome = self._compute(index)
        # The heartbeat thread is joined here: lease_lost is final for
        # everything it observed.  A worker that was presumed dead and
        # displaced must abort instead of submitting — its peer took
        # the lease over and owns this scenario's submission now;
        # submitting both would double-count it.
        if heartbeat.lease_lost.is_set():
            self._abort(index)
            return index
        if (self.guard is not None and not outcome.ok
                and not outcome.from_cache):
            self._report_failure(index, outcome)
            return index
        self._submit(index, outcome)
        return index

    def _abort(self, index: int) -> None:
        self.aborted.append(index)
        if self.metrics is not None:
            self.metrics.counter("repro_worker_aborts_total")
        logger.warning(
            "[%s] lease for scenario %d was taken over while "
            "running; discarding the local result", self.worker_id, index)

    def _crash_hook(self) -> bool:
        """Test hook: simulated death after the N-th successful claim —
        keep the lease(s), never heartbeat, write nothing.  The leases go
        stale and the scenarios are reclaimed by peers."""
        if (self.crash_after_claims is not None
                and self._claims >= self.crash_after_claims):
            self.crashed = True
            return True
        return False

    def step(self) -> Optional[int]:
        """Claim and execute one scenario (or one cohort of scenarios, with
        ``batch_size > 1``); ``None`` when nothing is left.

        "Nothing" means: no pending scenario this worker may take right now.
        Live leases held by other workers are *not* waited for — callers
        that want to drain a grid poll :meth:`step` (or use :meth:`run`)
        until the coordinator reports completion.
        """
        if self.crashed:
            return None
        snapshot = self._last_snapshot = self.transport.snapshot()
        if self.batch_size > 1:
            return self._step_cohort(snapshot)
        for index in self._next_candidates(snapshot):
            if not self.transport.try_claim(index, self.worker_id):
                continue
            self._note_claim(index, snapshot)
            if self._crash_hook():
                return None
            return self._execute_claimed(index)
        return None

    def _step_cohort(self, snapshot: TaskSnapshot) -> Optional[int]:
        """Claim up to ``batch_size`` analytic scenarios and run them as one
        vectorized cohort — one lease and heartbeat per member, so each
        member aborts or submits individually exactly as on the solo path.
        """
        from repro.runtime.batch import cohortable, execute_cohort

        claimed: list[int] = []
        for index in self._next_candidates(snapshot):
            solo = not cohortable(self.plan.specs[index])
            if solo and claimed:
                # Run the cohort gathered so far first; the non-analytic
                # scenario stays claimable for the next step (or a peer).
                break
            if not self.transport.try_claim(index, self.worker_id):
                continue
            self._note_claim(index, snapshot)
            if self._crash_hook():
                return None
            if solo:
                return self._execute_claimed(index)
            claimed.append(index)
            if len(claimed) >= self.batch_size:
                break
        if not claimed:
            return None
        if len(claimed) == 1:
            return self._execute_claimed(claimed[0])

        # Cache hits submit straight away (their leases are fresh); the
        # misses form the cohort.
        payloads = []
        for index in claimed:
            outcome = self._load_cached(index)
            if outcome is not None:
                self._submit(index, outcome)
            else:
                payloads.append((index, self.plan.specs[index],
                                 self.plan.seeds[index], self.plan.duration))
        if not payloads:
            return claimed[0]
        if self._cohort_backend is None:
            from repro.backends.vectorized import VectorizedAnalyticBackend
            self._cohort_backend = VectorizedAnalyticBackend()
        with contextlib.ExitStack() as stack:
            beats = {
                payload[0]: stack.enter_context(
                    _Heartbeat(self.transport, payload[0], self.worker_id,
                               self.plan.lease_timeout / 3.0))
                for payload in payloads
            }
            try:
                outcomes = execute_cohort(payloads,
                                          backend=self._cohort_backend,
                                          guard=self.guard)
            except MemoryError:
                # The cohort itself (vectorized state allocation) blew the
                # memory ceiling before per-member handling could: every
                # member becomes an oom failure, and _report_failure halves
                # the batch size so the retries come back smaller.
                self._cohort_backend = None
                outcomes = [
                    (payload[0], _failure_outcome(
                        payload[1], payload[2], payload[3], "oom",
                        f"MemoryError in a {len(payloads)}-member cohort",
                        time.perf_counter()))
                    for payload in payloads
                ]
        # All heartbeat threads are joined here — per-member lease_lost is
        # final, and a displaced member aborts while the rest submit.
        specs = {payload[0]: payload[1] for payload in payloads}
        for index, outcome in outcomes:
            if beats[index].lease_lost.is_set():
                self._abort(index)
                continue
            if self.guard is not None and not outcome.ok:
                self._report_failure(index, outcome)
                continue
            if self._cache is not None:
                self._cache.store(specs[index], outcome, self.plan.duration)
            self._submit(index, outcome)
        return claimed[0]

    def run(self, poll_interval: float = 0.2,
            wait_for_stragglers: bool = True,
            reconnect_grace: float = 30.0) -> int:
        """Serve scenarios until the grid has no work left for this worker.

        With ``wait_for_stragglers`` the worker idles (sleeping
        ``poll_interval``) while other workers still hold live leases, so it
        can reclaim them if their owners die; it returns once every
        scenario is done — or, on a socket transport, when the coordinator
        stays unreachable for ``reconnect_grace`` seconds.  The grace
        window matters both ways: a coordinator *restart* (serve resumes on
        its durable directory) must not kill the whole worker fleet over a
        transient connection blip, while a coordinator that merged and
        exited should release the worker promptly.  Whatever was in flight
        when the coordinator vanished is protocol-safe: an unsubmitted
        result just leaves its lease to go stale and the scenario is
        re-executed deterministically on resume.  Returns the number of
        scenarios this worker executed.
        """
        outage_since: Optional[float] = None
        try:
            while True:
                try:
                    if self.step() is not None:
                        outage_since = None
                        continue
                    outage_since = None
                    if self.crashed or not wait_for_stragglers:
                        break
                    # step() found nothing claimable; its snapshot is fresh
                    # enough to double as the completion check (a second
                    # snapshot RPC per poll would just double idle-fleet
                    # load on the coordinator).
                    if (self._last_snapshot is not None
                            and len(self._last_snapshot.done)
                            >= len(self.plan.specs)):
                        break
                except TransportError as error:
                    now = time.monotonic()
                    if outage_since is None:
                        outage_since = now
                    if now - outage_since >= reconnect_grace:
                        logger.warning(
                            "coordinator unreachable for %.0fs, stopping: %s",
                            now - outage_since, error)
                        break
                    logger.info("coordinator unreachable, retrying: %s",
                                error)
                time.sleep(poll_interval)
        finally:
            self.close()
        return len(self.executed)

    def close(self) -> None:
        """Flush sinks / release the coordinator connection.

        Also the telemetry ship point: the metrics registry (when
        ``REPRO_OBS`` enabled one) is uploaded as a whole snapshot through
        the transport — best-effort, so a coordinator that already exited
        never turns a clean worker shutdown into a failure.
        """
        if self.metrics is not None:
            # Gauges, not counters: close() may run twice (run()'s finally
            # plus an explicit call) and last-write-wins stays idempotent.
            self.metrics.gauge("repro_worker_transport_retries",
                               getattr(self.transport, "retries", 0))
            schedule = getattr(self.transport, "schedule", None)
            if schedule is not None:
                self.metrics.gauge(
                    "repro_worker_injected_faults",
                    len(getattr(schedule, "injected", ())))
            try:
                self.transport.send_telemetry(self.worker_id,
                                              self.metrics.to_dict())
            except (TransportError, OSError) as error:
                logger.warning("[%s] telemetry upload failed (%s); dropped",
                               self.worker_id, error)
        self.transport.close()


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point: ``python -m repro.cluster.worker``."""
    parser = argparse.ArgumentParser(
        description="Run one sweep-cluster worker against a shared cluster "
                    "directory or a TCP coordinator.")
    where = parser.add_mutually_exclusive_group(required=True)
    where.add_argument("--cluster-dir", default=None,
                       help="shared directory containing plan.json")
    where.add_argument("--coordinator", default=None, metavar="HOST:PORT",
                       help="TCP coordinator started with "
                            "python -m repro.cluster.serve")
    parser.add_argument("--worker-id", default=None,
                        help="unique worker name (default: <host>-<pid>)")
    parser.add_argument("--shard", type=int, default=None,
                        help="home shard (default: auto round-robin)")
    parser.add_argument("--cache-dir", default=None,
                        help="machine-local resume-cache directory "
                             "(default: the plan's cache_dir; '' disables "
                             "caching)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="vectorized cohort size: claim up to this many "
                             "analytic scenarios per step and advance them "
                             "as one cohort (default: auto — derived from "
                             "the recorded cost model's cohort speedup, 1 "
                             "without calibration history)")
    parser.add_argument("--no-steal", action="store_true",
                        help="never take work from other shards")
    parser.add_argument("--no-wait", action="store_true",
                        help="exit when idle instead of standing by to "
                             "reclaim crashed peers' work")
    parser.add_argument("--crash-after-claims", type=int, default=None,
                        help=argparse.SUPPRESS)  # CI crash-recovery smoke
    parser.add_argument("--verbose", action="store_true",
                        help="DEBUG-level logging (default INFO; see also "
                             "$REPRO_LOG)")
    args = parser.parse_args(argv)

    from repro.obs.logconf import configure_logging

    configure_logging(verbose=args.verbose)

    if args.coordinator is not None:
        transport: Transport = SocketTransport(args.coordinator)
    else:
        transport = FilesystemTransport(args.cluster_dir)

    def progress(outcome: ScenarioOutcome) -> None:
        tag = "cached" if outcome.from_cache else (
            "ok" if outcome.ok else "FAILED")
        logger.info("[%s] %-40s %s (%.1fs)", worker.worker_id,
                    outcome.scenario_name, tag, outcome.wall_time)

    if args.cache_dir is None:
        cache_dir = ...  # not given: use the plan's cache_dir
    else:
        cache_dir = args.cache_dir or None  # "" disables (as in serve)
    worker = ClusterWorker(
        transport, worker_id=args.worker_id, shard=args.shard,
        steal=not args.no_steal, on_outcome=progress,
        crash_after_claims=args.crash_after_claims,
        cache_dir=cache_dir, batch_size=args.batch_size)
    logger.info("[%s] serving shard %d of %d over %s (%d scenarios total)",
                worker.worker_id, worker.shard,
                worker.plan.shard_plan.num_shards, transport.kind,
                len(worker.plan.specs))
    executed = worker.run(wait_for_stragglers=not args.no_wait)
    logger.info("[%s] done: %d scenario(s) executed", worker.worker_id,
                executed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
