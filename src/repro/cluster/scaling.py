"""Worker autoscaling: pluggable policies plus a local process-pool scaler.

The coordinator (``repro.cluster.serve``) periodically folds its progress
counters into a :class:`ClusterStats` record and asks a :class:`ScalePolicy`
for :class:`ScaleAdvice` — *advice*, not action: the policy is deliberately
decoupled from the mechanism that spawns or retires workers, so the same
policy can drive a local :class:`ProcessPoolScaler`, a Kubernetes HPA shim,
or an operator watching ``status`` frames over the wire.

Retiring a worker is deliberately brutal (terminate the process): the lease
protocol already tolerates workers dying mid-scenario — the stale lease is
reclaimed by a peer and the scenario re-executes deterministically — so the
scaler needs no drain handshake.
"""

from __future__ import annotations

import math
import multiprocessing
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ClusterStats:
    """Progress counters a scaling decision is made from."""

    #: Scenarios with no (live) lease and no done marker.
    pending: int
    #: Scenarios behind a live lease (a worker is executing them).
    leased: int
    #: Scenarios behind a stale lease (their worker is presumed dead).
    stale: int
    #: Scenarios with a done marker.
    done: int
    #: Total scenarios in the grid.
    scenarios: int
    #: Workers the scaler currently runs (live processes, not historical
    #: registrations — registrations never expire).
    workers: int
    #: Exact idle count when the observer can determine it (the scaler
    #: matches its process names against the coordinator's busy-worker
    #: ids); ``None`` falls back to ``workers - leased``, which undercounts
    #: local idleness whenever *external* workers hold leases too.
    idle: Optional[int] = None

    @property
    def outstanding(self) -> int:
        """Scenarios still needing a worker (pending + stale reclaims)."""
        return self.pending + self.stale

    @property
    def idle_workers(self) -> int:
        """Workers not currently holding a live lease."""
        if self.idle is not None:
            return self.idle
        return max(0, self.workers - self.leased)

    @property
    def complete(self) -> bool:
        """Whether every scenario is done."""
        return self.done >= self.scenarios


@dataclass(frozen=True)
class ScaleAdvice:
    """What a policy wants done to the worker pool."""

    spawn: int = 0
    retire: int = 0
    reason: str = ""

    @property
    def is_noop(self) -> bool:
        """Whether the advice changes nothing."""
        return self.spawn == 0 and self.retire == 0


class ScalePolicy(ABC):
    """Maps observed cluster state to spawn/retire advice."""

    @abstractmethod
    def advise(self, stats: ClusterStats) -> ScaleAdvice:
        """Advice for the current observation (must be side-effect free)."""


class QueueDepthPolicy(ScalePolicy):
    """Scale on queue depth: one worker per ``backlog_per_worker`` pending
    scenarios, bounded to ``[min_workers, max_workers]``; retire idle
    workers once the backlog no longer justifies them, and everyone once
    the grid is complete.

    ``backlog_per_worker`` trades spawn churn against drain latency: 1.0
    spawns a worker per outstanding scenario (fastest drain, most churn);
    larger values keep a deeper per-worker backlog before growing the pool.
    """

    def __init__(self, min_workers: int = 1, max_workers: int = 8,
                 backlog_per_worker: float = 2.0) -> None:
        if min_workers < 0 or max_workers < max(1, min_workers):
            raise ValueError(f"invalid worker bounds "
                             f"[{min_workers}, {max_workers}]")
        if backlog_per_worker <= 0:
            raise ValueError("backlog_per_worker must be positive")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.backlog_per_worker = backlog_per_worker

    def desired_workers(self, stats: ClusterStats) -> int:
        """The pool size the backlog currently justifies."""
        if stats.complete or stats.outstanding == 0:
            # Nothing claimable: leased scenarios are already staffed (by
            # whoever holds their lease), and spawning a worker with no
            # claimable work would just have it exit immediately — churning
            # a fresh process (and a permanent registration) every round.
            return 0
        wanted = math.ceil(stats.outstanding / self.backlog_per_worker)
        wanted = min(max(wanted, self.min_workers), self.max_workers)
        # Never more workers than claimable scenarios.
        return min(wanted, stats.outstanding)

    def advise(self, stats: ClusterStats) -> ScaleAdvice:
        desired = self.desired_workers(stats)
        if desired > stats.workers:
            return ScaleAdvice(
                spawn=desired - stats.workers,
                reason=f"backlog of {stats.outstanding} wants {desired} "
                       f"worker(s), have {stats.workers}")
        if desired < stats.workers:
            if stats.complete:
                return ScaleAdvice(retire=stats.workers,
                                   reason="grid complete")
            # Only retire workers that are actually idle — terminating a
            # leased worker is safe (stale-lease reclaim) but wasteful.
            retire = min(stats.workers - desired, stats.idle_workers)
            if retire:
                return ScaleAdvice(
                    retire=retire,
                    reason=f"backlog of {stats.outstanding} justifies "
                           f"{desired} worker(s), {stats.idle_workers} idle")
        return ScaleAdvice(reason="pool size matches backlog")


def _scaled_worker_main(coordinator: str, worker_id: str) -> None:
    """Entry point of an autoscaled worker process (module-level: picklable
    under spawn contexts)."""
    from repro.cluster.transport import SocketTransport
    from repro.cluster.worker import ClusterWorker

    worker = ClusterWorker(SocketTransport(coordinator), worker_id=worker_id)
    # Exit when idle: the scaler (not the worker) owns pool-size decisions,
    # and an exited process is the cheapest possible retirement.
    worker.run(wait_for_stragglers=False)


class ProcessPoolScaler:
    """Applies :class:`ScaleAdvice` by spawning/terminating local worker
    processes attached to a TCP coordinator.

    This is the reference consumer of the autoscaling hooks: it turns a
    single machine into an elastic worker pool (CI, the examples, and any
    box that can reach the coordinator).  Multi-machine deployments can run
    one scaler per machine, all pointed at the same coordinator.
    """

    def __init__(self, coordinator: str,
                 policy: Optional[ScalePolicy] = None,
                 start_method: Optional[str] = None,
                 name_prefix: str = "scaled") -> None:
        self.coordinator = coordinator
        self.policy = policy if policy is not None else QueueDepthPolicy()
        if start_method is None:
            # Not fork: the scaler typically runs inside the coordinator
            # process, which serves worker connections on threads — forking
            # a multi-threaded process can deadlock the child on a lock some
            # other thread held at fork time.  spawn costs ~1s per worker
            # and is always safe.
            start_method = "spawn"
        self._context = multiprocessing.get_context(start_method)
        self._name_prefix = name_prefix
        self._spawned = 0
        self._processes: list[multiprocessing.Process] = []

    # ------------------------------------------------------------------ #
    # Pool state
    # ------------------------------------------------------------------ #
    def reap(self) -> int:
        """Drop exited processes from the pool; returns the live count."""
        self._processes = [p for p in self._processes if p.is_alive()]
        return len(self._processes)

    @property
    def live_workers(self) -> int:
        """Currently running worker processes."""
        return self.reap()

    # ------------------------------------------------------------------ #
    # Scaling
    # ------------------------------------------------------------------ #
    def observe(self, status: dict) -> ClusterStats:
        """Fold a coordinator ``status`` document into :class:`ClusterStats`.

        The ``workers`` field is this scaler's own live pool (which, unlike
        the registration count, can shrink), and ``idle`` counts the local
        processes whose worker ids hold no live lease — external workers'
        leases must not mask local idleness.
        """
        totals = status["total"]
        alive = self.reap()
        busy = set(status.get("busy_workers") or ())
        idle = sum(1 for process in self._processes
                   if process.name not in busy)
        return ClusterStats(pending=totals["pending"],
                            leased=totals["leased"],
                            stale=totals["stale"],
                            done=totals["done"],
                            scenarios=status["scenarios"],
                            workers=alive,
                            idle=idle)

    def scale_once(self, status: dict) -> ScaleAdvice:
        """One observe -> advise -> apply round; returns the advice."""
        advice = self.policy.advise(self.observe(status))
        self.apply(advice, busy_workers=status.get("busy_workers"))
        return advice

    def apply(self, advice: ScaleAdvice,
              busy_workers: "Optional[list[str]]" = None) -> None:
        """Spawn/terminate processes as advised.

        ``busy_workers`` (worker ids holding live leases, as reported in a
        coordinator ``status``) lets retirement target idle processes
        first — terminating a leased worker is protocol-safe but stalls its
        scenario for a lease timeout.
        """
        for _ in range(advice.spawn):
            self._spawn_one()
        if advice.retire:
            self._retire(advice.retire, busy_workers=busy_workers)

    def _spawn_one(self) -> None:
        self._spawned += 1
        worker_id = f"{self._name_prefix}-{self._spawned}"
        process = self._context.Process(
            target=_scaled_worker_main,
            args=(self.coordinator, worker_id),
            name=worker_id, daemon=False)
        process.start()
        self._processes.append(process)

    def _retire(self, count: int,
                busy_workers: "Optional[list[str]]" = None) -> int:
        """Terminate up to ``count`` workers — idle ones first (by process
        name, which is the worker id), newest first within each class.

        Terminating a leased worker is still safe: its lease goes stale and
        a peer reclaims the scenario (deterministic re-execution) — it just
        costs a lease timeout, which preferring idle processes avoids.
        """
        self.reap()
        busy = set(busy_workers or ())
        idle = [p for p in self._processes if p.name not in busy]
        leased = [p for p in self._processes if p.name in busy]
        order = list(reversed(idle)) + list(reversed(leased))
        retired = 0
        for process in order[:count]:
            self._processes.remove(process)
            process.terminate()
            process.join(timeout=10.0)
            retired += 1
        return retired

    def shutdown(self) -> None:
        """Terminate every remaining worker process."""
        self._retire(len(self._processes))
