"""Network assembly: wiring nodes, the midpoint and channels together."""

from repro.network.node import LinkLayerNode
from repro.network.network import LinkLayerNetwork

__all__ = ["LinkLayerNode", "LinkLayerNetwork"]
