"""A controllable quantum network node.

Groups the per-node components: the NV quantum processor, the node-side MHP,
the distributed-queue endpoint and the EGP.  Construction and wiring is done
by :class:`repro.network.network.LinkLayerNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distributed_queue import DistributedQueue
from repro.core.egp import EGP
from repro.core.feu import FidelityEstimationUnit
from repro.core.mhp import NodeMHP
from repro.hardware.nv_device import NVQuantumProcessor


@dataclass
class LinkLayerNode:
    """One controllable node with its full protocol stack."""

    name: str
    device: NVQuantumProcessor
    mhp: NodeMHP
    dqp: DistributedQueue
    feu: FidelityEstimationUnit
    egp: EGP

    def create(self, request) -> int:
        """Submit a CREATE request to this node's link layer."""
        return self.egp.create(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"<LinkLayerNode {self.name}>"
