"""Factory that wires up a complete two-node link-layer network.

The topology matches the paper's evaluation setup::

    Node A ----fibre----> Heralding station H <----fibre---- Node B
       \\_________________ classical control ________________/

Every classical channel applies the scenario's frame-loss probability so the
robustness study (Section 6.1) can stress the protocol by raising it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.distributed_queue import DistributedQueue
from repro.core.egp import EGP
from repro.core.feu import FidelityEstimationUnit
from repro.core.mhp import MidpointHeraldingService, NodeMHP
from repro.core.scheduler import SchedulingStrategy, make_scheduler
from repro.hardware.nv_device import NVQuantumProcessor
from repro.hardware.parameters import ScenarioConfig
from repro.network.node import LinkLayerNode
from repro.sim.channel import ClassicalChannel
from repro.sim.engine import SimulationEngine


class LinkLayerNetwork:
    """A fully wired two-node network running the MHP and EGP.

    Parameters
    ----------
    scenario:
        Hardware scenario configuration (Lab or QL2020).
    scheduler:
        Scheduling strategy name or instances.  A single name/instance is
        cloned for both nodes; both nodes must use the same strategy for the
        queues to stay consistent.
    seed:
        Master seed for all randomness in the network.
    emission_multiplexing:
        Whether measure-directly attempts may overlap with outstanding REPLYs.
    test_round_fraction:
        Fraction of attempts the FEU turns into test rounds (Appendix B).
    backend:
        Physics backend shared by the midpoint, devices, FEUs and EGPs; a
        name, an instance, or ``None`` for the environment default
        (``REPRO_BACKEND``, falling back to ``"density"``).
    event_queue:
        Event-engine selection for the simulation engine (ignored when an
        ``engine`` instance is passed): an engine name (``"heap"``,
        ``"calendar"``, ``"ladder"``), an
        :class:`~repro.sim.queues.EventQueue` instance, or ``None`` for the
        environment default (``REPRO_ENGINE``, falling back to ``"heap"``).
    elide_watchdog:
        Forwarded to both EGPs (skip reply watchdogs that provably cannot
        fire); ``None`` elides exactly when the scenario's frame-loss
        probability is zero.
    """

    def __init__(self, scenario: ScenarioConfig,
                 scheduler: str | SchedulingStrategy = "FCFS",
                 seed: Optional[int] = None,
                 emission_multiplexing: bool = True,
                 test_round_fraction: float = 0.0,
                 attempt_batch_size: int = 1,
                 engine: Optional[SimulationEngine] = None,
                 backend=None,
                 event_queue=None,
                 elide_watchdog: Optional[bool] = None,
                 timer_elision: bool = True) -> None:
        from repro.backends import get_backend

        self.scenario = scenario
        self.backend = get_backend(backend)
        self.engine = (engine if engine is not None
                       else SimulationEngine(queue=event_queue))
        master_rng = np.random.default_rng(seed)
        self._rngs = {name: np.random.default_rng(master_rng.integers(2 ** 63))
                      for name in ("midpoint", "device_a", "device_b",
                                   "channels", "egp_a", "egp_b")}

        loss = scenario.classical.frame_loss_probability
        timing = scenario.timing
        channel_rng = self._rngs["channels"]

        # --- Midpoint and node MHPs -------------------------------------- #
        self.midpoint = MidpointHeraldingService(self.engine, scenario,
                                                 rng=self._rngs["midpoint"],
                                                 backend=self.backend,
                                                 timer_elision=timer_elision)
        self.nodes: dict[str, LinkLayerNode] = {}
        mhp_channels = {}
        for name, delay in (("A", timing.midpoint_delay_a),
                            ("B", timing.midpoint_delay_b)):
            to_midpoint = ClassicalChannel(self.engine, delay, loss,
                                           rng=channel_rng,
                                           name=f"{name}->H")
            from_midpoint = ClassicalChannel(self.engine, delay, loss,
                                             rng=channel_rng,
                                             name=f"H->{name}")
            to_midpoint.connect(self.midpoint.receive)
            self.midpoint.attach_channel(name, from_midpoint)
            mhp_channels[name] = (to_midpoint, from_midpoint)

        # --- Node-to-node classical channels ------------------------------ #
        node_delay = scenario.classical.node_to_node_delay
        dqp_ab = ClassicalChannel(self.engine, node_delay, loss,
                                  rng=channel_rng, name="DQP A->B")
        dqp_ba = ClassicalChannel(self.engine, node_delay, loss,
                                  rng=channel_rng, name="DQP B->A")
        egp_ab = ClassicalChannel(self.engine, node_delay, loss,
                                  rng=channel_rng, name="EGP A->B")
        egp_ba = ClassicalChannel(self.engine, node_delay, loss,
                                  rng=channel_rng, name="EGP B->A")

        # --- Per-node stacks ---------------------------------------------- #
        schedulers = self._resolve_schedulers(scheduler)
        for name, peer, is_master, sched in (("A", "B", True, schedulers[0]),
                                             ("B", "A", False, schedulers[1])):
            device = NVQuantumProcessor(
                name, scenario.gates,
                num_communication=scenario.num_communication_qubits,
                num_memory=scenario.num_memory_qubits,
                rng=self._rngs[f"device_{name.lower()}"],
                backend=self.backend)
            mhp = NodeMHP(self.engine, name, scenario)
            to_midpoint, from_midpoint = mhp_channels[name]
            mhp.attach_channel(to_midpoint)
            from_midpoint.connect(mhp.receive)
            dqp = DistributedQueue(self.engine, name, is_master=is_master,
                                   max_queue_size=scenario.max_queue_size)
            feu = FidelityEstimationUnit(scenario,
                                         test_round_fraction=test_round_fraction,
                                         backend=self.backend)
            egp = EGP(self.engine, name, peer, scenario, device, mhp, dqp, feu,
                      sched, rng=self._rngs[f"egp_{name.lower()}"],
                      emission_multiplexing=emission_multiplexing,
                      attempt_batch_size=attempt_batch_size,
                      backend=self.backend,
                      elide_watchdog=elide_watchdog,
                      timer_elision=timer_elision)
            self.nodes[name] = LinkLayerNode(name=name, device=device, mhp=mhp,
                                             dqp=dqp, feu=feu, egp=egp)

        # DQP wiring (A is master).
        dqp_ab.connect(self.nodes["B"].dqp.receive)
        dqp_ba.connect(self.nodes["A"].dqp.receive)
        self.nodes["A"].dqp.attach_channel(dqp_ab)
        self.nodes["B"].dqp.attach_channel(dqp_ba)
        # EGP peer wiring (EXPIRE notices).
        egp_ab.connect(self.nodes["B"].egp.receive_peer)
        egp_ba.connect(self.nodes["A"].egp.receive_peer)
        self.nodes["A"].egp.attach_peer_channel(egp_ab)
        self.nodes["B"].egp.attach_peer_channel(egp_ba)

        self.classical_channels = {
            "A->H": mhp_channels["A"][0], "H->A": mhp_channels["A"][1],
            "B->H": mhp_channels["B"][0], "H->B": mhp_channels["B"][1],
            "DQP A->B": dqp_ab, "DQP B->A": dqp_ba,
            "EGP A->B": egp_ab, "EGP B->A": egp_ba,
        }

    @staticmethod
    def _resolve_schedulers(scheduler: str | SchedulingStrategy,
                            ) -> tuple[SchedulingStrategy, SchedulingStrategy]:
        if isinstance(scheduler, SchedulingStrategy):
            # Both nodes need *separate* instances with identical
            # configuration: they each observe the same delivery events, so
            # their WFQ virtual clocks evolve in lock-step, but sharing one
            # object would double-count every event.
            import copy

            return scheduler, copy.deepcopy(scheduler)
        return make_scheduler(scheduler), make_scheduler(scheduler)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def node_a(self) -> LinkLayerNode:
        """Node A (master of the distributed queue)."""
        return self.nodes["A"]

    @property
    def node_b(self) -> LinkLayerNode:
        """Node B."""
        return self.nodes["B"]

    def run(self, duration: float) -> float:
        """Advance the simulation by ``duration`` seconds."""
        return self.engine.run(until=self.engine.now + duration)

    def run_until(self, time: float) -> float:
        """Advance the simulation until absolute time ``time``."""
        return self.engine.run(until=time)
