"""Performance metrics of the link layer (paper Section 4.2).

The collector subscribes to the OK/error streams of both nodes' EGPs and
produces the metrics used throughout the paper's evaluation:

* throughput (pairs per second), per priority class,
* request latency (CREATE submission to completion at the requesting node),
* per-pair latency (CREATE to each OK at the requesting node),
* scaled latency (request latency / number of requested pairs),
* fidelity: measured directly on the simulated pair states for K requests
  and recovered from QBER for M requests (as the paper does),
* queue length traces and fairness comparisons between the two origins,
* counts of OK / error / EXPIRE events for the robustness study.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import asdict, dataclass, field, fields
from statistics import mean
from typing import Optional

from repro.core.messages import (
    ErrorCode,
    ErrorMessage,
    OkMessage,
    Priority,
    RequestType,
)
from repro.quantum.fidelity import fidelity_from_qber
from repro.quantum.states import BellIndex


def relative_difference(first: float, second: float) -> float:
    """Relative difference |m1 - m2| / max(|m1|, |m2|) used in Section 6.1."""
    largest = max(abs(first), abs(second))
    if largest == 0:
        return 0.0
    return abs(first - second) / largest


@dataclass
class PairRecord:
    """One delivered entangled pair (or measured correlation)."""

    entanglement_id: tuple
    create_id: int
    priority: Priority
    request_type: RequestType
    origin: str
    created_request_at: float
    delivered_at: float
    fidelity: Optional[float] = None
    basis: Optional[str] = None
    outcome_a: Optional[int] = None
    outcome_b: Optional[int] = None
    goodness: float = 0.0

    @property
    def pair_latency(self) -> float:
        """Time from CREATE submission to this pair's OK."""
        return self.delivered_at - self.created_request_at


@dataclass
class RequestRecord:
    """Book-keeping for one CREATE request."""

    create_id: int
    origin: str
    priority: Priority
    request_type: RequestType
    number: int
    submitted_at: float
    completed_at: Optional[float] = None
    error: Optional[ErrorCode] = None
    pairs_delivered: int = 0

    @property
    def completed(self) -> bool:
        """Whether every requested pair was delivered."""
        return self.completed_at is not None

    @property
    def request_latency(self) -> Optional[float]:
        """Latency from submission to completion, if completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def scaled_latency(self) -> Optional[float]:
        """Request latency divided by the number of requested pairs."""
        latency = self.request_latency
        if latency is None:
            return None
        return latency / self.number


@dataclass
class MetricsSummary:
    """Aggregated metrics over one simulation run.

    The summary is deliberately *plain data* (floats, ints and string-keyed
    dicts of them): it is the payload shipped back from sweep worker
    processes and stored in sweep caches, so it must survive pickling and a
    JSON round-trip without loss.
    """

    duration: float
    throughput: dict[str, float]
    average_fidelity: dict[str, float]
    average_request_latency: dict[str, float]
    average_scaled_latency: dict[str, float]
    average_pair_latency: dict[str, float]
    pairs_delivered: dict[str, int]
    requests_submitted: dict[str, int]
    requests_completed: dict[str, int]
    errors: dict[str, int]
    expires: int
    oks: int
    average_queue_length: float

    def throughput_total(self) -> float:
        """Total delivered pairs per second across all classes."""
        return sum(self.throughput.values())

    def to_dict(self) -> dict:
        """JSON-serialisable representation (exact float round-trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in known})


class MetricsCollector:
    """Collects OK / error events from both nodes and aggregates metrics.

    Parameters
    ----------
    network:
        A wired :class:`~repro.network.network.LinkLayerNetwork`.  The
        collector registers itself on both EGPs.
    release_memory:
        When ``True`` (default), storage qubits of delivered K pairs are
        released immediately — modelling an application that consumes
        entanglement as soon as it is delivered, as the paper's workload does.
    """

    def __init__(self, network, release_memory: bool = True) -> None:
        self.network = network
        self.release_memory = release_memory
        self.pair_records: list[PairRecord] = []
        self.request_records: dict[int, RequestRecord] = {}
        self.error_counts: dict[str, int] = defaultdict(int)
        self.expire_count = 0
        self.ok_count = 0
        self.queue_samples: list[tuple[float, int]] = []
        self._pending_pairs: dict[tuple, dict] = {}
        self._started_at = network.engine.now
        for name, node in network.nodes.items():
            node.egp.add_ok_listener(
                lambda ok, node_name=name: self._on_ok(node_name, ok))
            node.egp.add_error_listener(
                lambda err, node_name=name: self._on_error(node_name, err))

    # ------------------------------------------------------------------ #
    # Request registration (called by the workload generator)
    # ------------------------------------------------------------------ #
    def register_request(self, request) -> None:
        """Record a CREATE request at submission time."""
        self.request_records[request.create_id] = RequestRecord(
            create_id=request.create_id,
            origin=request.origin or "",
            priority=request.priority,
            request_type=request.request_type,
            number=request.number,
            submitted_at=self.network.engine.now,
        )

    def sample_queue_length(self) -> None:
        """Record the current distributed-queue length (node A's view)."""
        self.queue_samples.append((self.network.engine.now,
                                   self.network.node_a.egp.queue_length()))

    # ------------------------------------------------------------------ #
    # EGP event handling
    # ------------------------------------------------------------------ #
    def _on_ok(self, node_name: str, ok: OkMessage) -> None:
        self.ok_count += 1
        record = self.request_records.get(ok.create_id)
        if record is None:
            record = RequestRecord(create_id=ok.create_id, origin=ok.origin,
                                   priority=Priority.CK,
                                   request_type=ok.request_type,
                                   number=ok.total_pairs,
                                   submitted_at=ok.create_time)
            self.request_records[ok.create_id] = record

        if self.release_memory and ok.logical_qubit_id is not None:
            node = self.network.nodes[node_name]
            node.egp.release_delivered_pair(ok.logical_qubit_id)

        key = tuple(ok.entanglement_id)
        pending = self._pending_pairs.setdefault(key, {})
        pending[node_name] = ok
        if len(pending) < 2:
            return
        # Both nodes delivered: finalise the pair record.
        ok_a = pending.get("A")
        ok_b = pending.get("B")
        del self._pending_pairs[key]
        origin_ok = ok_a if (ok_a and ok_a.origin == "A") else ok_b
        if origin_ok is None:
            origin_ok = ok_a or ok_b
        now = self.network.engine.now
        fidelity = None
        basis = None
        outcome_a = outcome_b = None
        if ok.request_type is RequestType.KEEP:
            pair = getattr(ok, "pair", None)
            if pair is not None:
                fidelity = pair.fidelity(BellIndex.PSI_PLUS)
        else:
            basis = ok_a.measurement_basis if ok_a else None
            outcome_a = ok_a.measurement_outcome if ok_a else None
            outcome_b = ok_b.measurement_outcome if ok_b else None
        record.pairs_delivered += 1
        if record.pairs_delivered >= record.number and record.completed_at is None:
            record.completed_at = now
        self.pair_records.append(PairRecord(
            entanglement_id=key,
            create_id=ok.create_id,
            priority=record.priority,
            request_type=ok.request_type,
            origin=record.origin,
            created_request_at=record.submitted_at,
            delivered_at=now,
            fidelity=fidelity,
            basis=basis,
            outcome_a=outcome_a,
            outcome_b=outcome_b,
            goodness=origin_ok.goodness if origin_ok else ok.goodness,
        ))

    def _on_error(self, node_name: str, error: ErrorMessage) -> None:
        self.error_counts[error.error.value] += 1
        if error.error is ErrorCode.EXPIRE:
            self.expire_count += 1
        record = self.request_records.get(error.create_id)
        if record is not None and record.error is None:
            record.error = error.error

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def qber_by_basis(self, priority: Optional[Priority] = None) -> dict[str, float]:
        """Measured QBER per basis from measure-directly pair records."""
        counts: dict[str, list[int]] = {"X": [], "Y": [], "Z": []}
        for pair in self.pair_records:
            if pair.request_type is not RequestType.MEASURE:
                continue
            if priority is not None and pair.priority != priority:
                continue
            if pair.basis is None or pair.outcome_a is None or pair.outcome_b is None:
                continue
            # Target after correction is |Psi+>: Z anti-correlated, X/Y correlated.
            equal = pair.outcome_a == pair.outcome_b
            error = equal if pair.basis == "Z" else not equal
            counts[pair.basis].append(1 if error else 0)
        return {basis: mean(values) for basis, values in counts.items() if values}

    def fidelity_from_md_qber(self, priority: Optional[Priority] = None,
                              ) -> Optional[float]:
        """Fidelity recovered from MD QBER measurements (paper Section 6.2)."""
        qber = self.qber_by_basis(priority)
        if set(qber) != {"X", "Y", "Z"}:
            return None
        return fidelity_from_qber(qber)

    def summary(self) -> MetricsSummary:
        """Aggregate all collected data into a :class:`MetricsSummary`."""
        now = self.network.engine.now
        duration = max(now - self._started_at, 1e-12)

        def class_of(priority: Priority) -> str:
            return priority.name

        pairs_by_class: dict[str, int] = defaultdict(int)
        fidelity_by_class: dict[str, list[float]] = defaultdict(list)
        pair_latency_by_class: dict[str, list[float]] = defaultdict(list)
        for pair in self.pair_records:
            key = class_of(pair.priority)
            pairs_by_class[key] += 1
            pair_latency_by_class[key].append(pair.pair_latency)
            if pair.fidelity is not None:
                fidelity_by_class[key].append(pair.fidelity)

        # Fidelity of MD classes comes from QBER, as in the paper.
        for priority in Priority:
            key = class_of(priority)
            if not fidelity_by_class.get(key):
                md_fidelity = self.fidelity_from_md_qber(priority)
                if md_fidelity is not None:
                    fidelity_by_class[key] = [md_fidelity]

        submitted: dict[str, int] = defaultdict(int)
        completed: dict[str, int] = defaultdict(int)
        request_latency: dict[str, list[float]] = defaultdict(list)
        scaled_latency: dict[str, list[float]] = defaultdict(list)
        for record in self.request_records.values():
            key = class_of(record.priority)
            submitted[key] += 1
            if record.completed:
                completed[key] += 1
                request_latency[key].append(record.request_latency)
                scaled_latency[key].append(record.scaled_latency)

        average_queue = 0.0
        if self.queue_samples:
            average_queue = mean(length for _, length in self.queue_samples)

        return MetricsSummary(
            duration=duration,
            throughput={key: count / duration
                        for key, count in pairs_by_class.items()},
            average_fidelity={key: mean(values)
                              for key, values in fidelity_by_class.items() if values},
            average_request_latency={key: mean(values)
                                     for key, values in request_latency.items()
                                     if values},
            average_scaled_latency={key: mean(values)
                                    for key, values in scaled_latency.items()
                                    if values},
            average_pair_latency={key: mean(values)
                                  for key, values in pair_latency_by_class.items()
                                  if values},
            pairs_delivered=dict(pairs_by_class),
            requests_submitted=dict(submitted),
            requests_completed=dict(completed),
            errors=dict(self.error_counts),
            expires=self.expire_count,
            oks=self.ok_count,
            average_queue_length=average_queue,
        )

    # ------------------------------------------------------------------ #
    # Fairness (Section 6.2)
    # ------------------------------------------------------------------ #
    def fairness_by_origin(self) -> dict[str, dict[str, float]]:
        """Throughput / latency / fidelity split by the origin of the request."""
        by_origin: dict[str, dict[str, list[float]]] = {
            "A": defaultdict(list), "B": defaultdict(list)}
        duration = max(self.network.engine.now - self._started_at, 1e-12)
        pair_counts = {"A": 0, "B": 0}
        for pair in self.pair_records:
            if pair.origin not in by_origin:
                continue
            pair_counts[pair.origin] += 1
            if pair.fidelity is not None:
                by_origin[pair.origin]["fidelity"].append(pair.fidelity)
            by_origin[pair.origin]["latency"].append(pair.pair_latency)
        result = {}
        for origin, data in by_origin.items():
            result[origin] = {
                "throughput": pair_counts[origin] / duration,
                "fidelity": mean(data["fidelity"]) if data["fidelity"] else 0.0,
                "latency": mean(data["latency"]) if data["latency"] else 0.0,
                "oks": float(pair_counts[origin]),
            }
        return result
