"""Metrics collection and aggregation for link-layer evaluations."""

from repro.analysis.metrics import (
    MetricsCollector,
    PairRecord,
    RequestRecord,
    MetricsSummary,
    relative_difference,
)

__all__ = [
    "MetricsCollector",
    "PairRecord",
    "RequestRecord",
    "MetricsSummary",
    "relative_difference",
]
