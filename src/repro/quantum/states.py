"""Standard single-qubit states and the Bell basis.

States are plain numpy column vectors (shape ``(d, 1)`` as 1-D arrays of
length ``d``) with complex dtype.  The Bell basis ordering follows the paper:
``PHI_PLUS``, ``PHI_MINUS``, ``PSI_PLUS``, ``PSI_MINUS``.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

_SQRT2 = np.sqrt(2.0)


def ket0() -> np.ndarray:
    """|0> basis state."""
    return np.array([1.0, 0.0], dtype=complex)


def ket1() -> np.ndarray:
    """|1> basis state."""
    return np.array([0.0, 1.0], dtype=complex)


def ket_plus() -> np.ndarray:
    """|+> = (|0> + |1>)/sqrt(2), the X-basis '0' outcome state."""
    return np.array([1.0, 1.0], dtype=complex) / _SQRT2


def ket_minus() -> np.ndarray:
    """|-> = (|0> - |1>)/sqrt(2), the X-basis '1' outcome state."""
    return np.array([1.0, -1.0], dtype=complex) / _SQRT2


def ket_y_plus() -> np.ndarray:
    """|+i> = (|0> + i|1>)/sqrt(2), the Y-basis '0' outcome state."""
    return np.array([1.0, 1.0j], dtype=complex) / _SQRT2


def ket_y_minus() -> np.ndarray:
    """|-i> = (|0> - i|1>)/sqrt(2), the Y-basis '1' outcome state."""
    return np.array([1.0, -1.0j], dtype=complex) / _SQRT2


class BellIndex(IntEnum):
    """Identifiers for the four Bell states.

    The heralding station reports ``PSI_PLUS`` (left detector clicks) or
    ``PSI_MINUS`` (right detector clicks) on success; the remaining two
    complete the basis and are used by gates/corrections.
    """

    PHI_PLUS = 0
    PHI_MINUS = 1
    PSI_PLUS = 2
    PSI_MINUS = 3


def bell_state(index: BellIndex | int) -> np.ndarray:
    """Return the requested Bell state as a length-4 complex vector.

    Qubit ordering is (A, B) with A the most-significant qubit, matching the
    tensor product conventions of :class:`repro.quantum.density.DensityMatrix`.
    """
    index = BellIndex(index)
    if index is BellIndex.PHI_PLUS:
        vec = [1.0, 0.0, 0.0, 1.0]
    elif index is BellIndex.PHI_MINUS:
        vec = [1.0, 0.0, 0.0, -1.0]
    elif index is BellIndex.PSI_PLUS:
        vec = [0.0, 1.0, 1.0, 0.0]
    else:  # PSI_MINUS
        vec = [0.0, 1.0, -1.0, 0.0]
    return np.array(vec, dtype=complex) / _SQRT2


def ket_to_dm(ket: np.ndarray) -> np.ndarray:
    """Outer product |psi><psi| of a state vector."""
    ket = np.asarray(ket, dtype=complex).reshape(-1)
    return np.outer(ket, ket.conj())


def basis_states(basis: str) -> tuple[np.ndarray, np.ndarray]:
    """Return the (outcome-0, outcome-1) eigenstates of the X, Y or Z basis."""
    basis = basis.upper()
    if basis == "Z":
        return ket0(), ket1()
    if basis == "X":
        return ket_plus(), ket_minus()
    if basis == "Y":
        return ket_y_plus(), ket_y_minus()
    raise ValueError(f"unknown basis {basis!r}; expected 'X', 'Y' or 'Z'")
