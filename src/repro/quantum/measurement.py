"""Measurement helpers: projectors for the X/Y/Z bases and POVM utilities."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.quantum.states import basis_states, ket_to_dm


def basis_operators(basis: str) -> tuple[np.ndarray, np.ndarray]:
    """Projectors (outcome 0, outcome 1) for the X, Y or Z basis."""
    state0, state1 = basis_states(basis)
    return ket_to_dm(state0), ket_to_dm(state1)


def measure_qubit(state, qubit: int, basis: str = "Z",
                  rng: Optional[np.random.Generator] = None) -> int:
    """Projectively measure ``qubit`` of a DensityMatrix in the given basis.

    A thin functional wrapper around :meth:`DensityMatrix.measure`.
    """
    return state.measure(qubit, basis=basis, rng=rng)


def povm_outcome_probabilities(state, povm_elements: Sequence[np.ndarray],
                               qubits: Optional[Sequence[int]] = None) -> np.ndarray:
    """Outcome probabilities Tr(M_k rho) for a list of POVM elements."""
    probabilities = np.array([
        state.outcome_probability(element, qubits=qubits)
        for element in povm_elements
    ])
    return np.clip(probabilities, 0.0, None)


def readout_kraus(f0: float, f1: float) -> tuple[np.ndarray, np.ndarray]:
    """Noisy single-qubit readout Kraus operators (paper Eq. 23).

    ``f0`` (``f1``) is the probability of correctly reading out |0> (|1>).
    Returns the Kraus operators ``(M0, M1)`` for outcomes 0 and 1.
    """
    for name, value in (("f0", f0), ("f1", f1)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name}={value} is not a probability")
    m0 = np.array([[np.sqrt(f0), 0.0],
                   [0.0, np.sqrt(1.0 - f1)]], dtype=complex)
    m1 = np.array([[np.sqrt(1.0 - f0), 0.0],
                   [0.0, np.sqrt(f1)]], dtype=complex)
    return m0, m1
