"""Quantum gates used by the NV hardware model and the protocols.

All gates are plain numpy unitary matrices.  Multi-qubit gates follow the
convention that the first (most significant) qubit is the control unless
stated otherwise.
"""

from __future__ import annotations

import numpy as np

#: Identity
I = np.eye(2, dtype=complex)

#: Pauli X (bit flip)
X = np.array([[0, 1], [1, 0]], dtype=complex)

#: Pauli Y
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)

#: Pauli Z (phase flip)
Z = np.array([[1, 0], [0, -1]], dtype=complex)

#: Hadamard
H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2.0)

#: Phase gate S = diag(1, i)
S = np.array([[1, 0], [0, 1j]], dtype=complex)


def rx(theta: float) -> np.ndarray:
    """Rotation around the X axis by angle ``theta`` (radians)."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation around the Y axis by angle ``theta`` (radians)."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation around the Z axis by angle ``theta`` (radians)."""
    phase = np.exp(-1j * theta / 2.0)
    return np.array([[phase, 0], [0, phase.conjugate()]], dtype=complex)


#: CNOT with the first qubit as control.
CNOT = np.array([
    [1, 0, 0, 0],
    [0, 1, 0, 0],
    [0, 0, 0, 1],
    [0, 0, 1, 0],
], dtype=complex)

#: Controlled-Z.
CZ = np.diag([1, 1, 1, -1]).astype(complex)

#: SWAP gate.
SWAP = np.array([
    [1, 0, 0, 0],
    [0, 0, 1, 0],
    [0, 1, 0, 0],
    [0, 0, 0, 1],
], dtype=complex)


def controlled_rx(theta: float) -> np.ndarray:
    """Electron-controlled carbon rotation, Eq. (22) of the paper.

    If the control (electron) is |0> the target rotates by ``+theta`` around
    X; if the control is |1> it rotates by ``-theta``.  The NV two-qubit
    E-C controlled-sqrt(X) gate is ``controlled_rx(pi/2)``.
    """
    upper = rx(theta)
    lower = rx(-theta)
    gate = np.zeros((4, 4), dtype=complex)
    gate[:2, :2] = upper
    gate[2:, 2:] = lower
    return gate


#: The NV native two-qubit gate: electron-controlled sqrt(X) on the carbon.
EC_CONTROLLED_SQRT_X = controlled_rx(np.pi / 2.0)


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Check whether ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    product = matrix @ matrix.conj().T
    return bool(np.allclose(product, np.eye(matrix.shape[0]), atol=atol))


def expand_single_qubit(gate: np.ndarray, target: int, num_qubits: int) -> np.ndarray:
    """Embed a single-qubit ``gate`` acting on ``target`` into an
    ``num_qubits``-qubit unitary (qubit 0 is most significant)."""
    if not 0 <= target < num_qubits:
        raise ValueError(f"target {target} out of range for {num_qubits} qubits")
    ops = [I] * num_qubits
    ops[target] = np.asarray(gate, dtype=complex)
    result = ops[0]
    for op in ops[1:]:
        result = np.kron(result, op)
    return result


def expand_two_qubit(gate: np.ndarray, control: int, target: int,
                     num_qubits: int) -> np.ndarray:
    """Embed a two-qubit ``gate`` (acting on adjacent-ordered control/target)
    into an ``num_qubits``-qubit unitary.

    The embedding permutes qubits so that the supplied gate acts on
    ``(control, target)`` in that order.
    """
    if control == target:
        raise ValueError("control and target must differ")
    for qubit in (control, target):
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range for {num_qubits} qubits")
    gate = np.asarray(gate, dtype=complex)
    if gate.shape != (4, 4):
        raise ValueError(f"expected a 4x4 gate, got shape {gate.shape}")

    dim = 2 ** num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    for row in range(dim):
        row_bits = [(row >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        for sub_row in range(4):
            for sub_col in range(4):
                amplitude = gate[sub_row, sub_col]
                if amplitude == 0:
                    continue
                # The gate maps |sub_col> -> amplitude |sub_row> on (control, target).
                if (row_bits[control], row_bits[target]) != (sub_row >> 1, sub_row & 1):
                    continue
                col_bits = list(row_bits)
                col_bits[control] = sub_col >> 1
                col_bits[target] = sub_col & 1
                col = 0
                for bit in col_bits:
                    col = (col << 1) | bit
                full[row, col] += amplitude
    return full
