"""Quantum-information substrate.

Density-matrix based simulation of the few qubits involved in link-layer
entanglement generation (two communication qubits, two memory qubits, and the
photonic presence/absence qubits travelling to the heralding station).

The substrate intentionally works with explicit numpy density matrices: the
link layer never needs more than a handful of qubits at once, so an exact
representation is both simple and fast enough, and it lets us implement the
paper's noise models (Appendix D) literally.
"""

from repro.quantum.states import (
    ket0,
    ket1,
    ket_plus,
    ket_minus,
    ket_y_plus,
    ket_y_minus,
    bell_state,
    BellIndex,
)
from repro.quantum.density import DensityMatrix
from repro.quantum import gates
from repro.quantum import noise
from repro.quantum.fidelity import (
    fidelity,
    fidelity_to_pure,
    qber_from_state,
    qber_all_bases,
    fidelity_from_qber,
    qber_from_fidelity_werner,
    werner_state,
)
from repro.quantum.measurement import (
    basis_operators,
    measure_qubit,
    povm_outcome_probabilities,
)

__all__ = [
    "ket0",
    "ket1",
    "ket_plus",
    "ket_minus",
    "ket_y_plus",
    "ket_y_minus",
    "bell_state",
    "BellIndex",
    "DensityMatrix",
    "gates",
    "noise",
    "fidelity",
    "fidelity_to_pure",
    "qber_from_state",
    "qber_all_bases",
    "fidelity_from_qber",
    "qber_from_fidelity_werner",
    "werner_state",
    "basis_operators",
    "measure_qubit",
    "povm_outcome_probabilities",
]
