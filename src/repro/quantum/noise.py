"""Noise channels used by the NV hardware model (paper Appendix D).

All functions return lists of Kraus operators acting on a single qubit unless
stated otherwise.  They are applied to :class:`~repro.quantum.density.DensityMatrix`
instances via :meth:`apply_kraus`.
"""

from __future__ import annotations

import numpy as np

from repro.quantum import gates


def _check_probability(p: float, name: str) -> float:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name}={p} is not a probability")
    return float(p)


def dephasing_kraus(p: float) -> list[np.ndarray]:
    """Dephasing channel: rho -> (1-p) rho + p Z rho Z (Eq. 24)."""
    p = _check_probability(p, "dephasing probability")
    return [np.sqrt(1.0 - p) * gates.I, np.sqrt(p) * gates.Z]


def depolarizing_kraus(f: float) -> list[np.ndarray]:
    """Depolarising channel: rho -> f rho + (1-f)/3 (X rho X + Y rho Y + Z rho Z).

    ``f`` is the probability of no error (the paper's gate fidelity
    parameterisation, Appendix D.3.1).
    """
    f = _check_probability(f, "depolarizing fidelity")
    p_err = (1.0 - f) / 3.0
    return [
        np.sqrt(f) * gates.I,
        np.sqrt(p_err) * gates.X,
        np.sqrt(p_err) * gates.Y,
        np.sqrt(p_err) * gates.Z,
    ]


def amplitude_damping_kraus(p: float) -> list[np.ndarray]:
    """Amplitude damping with damping probability ``p``.

    Used for photon loss on the presence/absence encoding: |1> (photon
    present) decays to |0> (photon lost) with probability ``p``.
    """
    p = _check_probability(p, "amplitude damping probability")
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - p)]], dtype=complex)
    k1 = np.array([[0.0, np.sqrt(p)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def t1_t2_kraus(duration: float, t1: float, t2: float) -> list[np.ndarray]:
    """Combined relaxation (T1) and dephasing (T2) over ``duration`` seconds.

    ``t1`` and/or ``t2`` may be ``inf`` (or ``<= 0`` meaning "no decay") to
    disable the corresponding process.  The implementation composes amplitude
    damping with probability ``1 - exp(-t/T1)`` and pure dephasing chosen such
    that the total coherence decay matches ``exp(-t/T2)``.
    """
    if duration < 0:
        raise ValueError(f"negative duration {duration}")
    p_relax = 0.0
    if t1 and np.isfinite(t1) and t1 > 0:
        p_relax = 1.0 - np.exp(-duration / t1)
    # Coherence decays as exp(-t/T2); amplitude damping alone contributes
    # exp(-t/(2*T1)).  The extra dephasing factor is exp(-t/T2 + t/(2*T1)).
    extra = 0.0
    if t2 and np.isfinite(t2) and t2 > 0:
        exponent = -duration / t2
        if t1 and np.isfinite(t1) and t1 > 0:
            exponent += duration / (2.0 * t1)
        coherence_factor = np.exp(min(exponent, 0.0))
        extra = (1.0 - coherence_factor) / 2.0
    damping = amplitude_damping_kraus(p_relax)
    dephasing = dephasing_kraus(extra)
    return compose_kraus(damping, dephasing)


def compose_kraus(first: list[np.ndarray],
                  second: list[np.ndarray]) -> list[np.ndarray]:
    """Kraus operators of the channel that applies ``first`` then ``second``."""
    return [b @ a for a in first for b in second]


def is_trace_preserving(kraus_operators: list[np.ndarray],
                        atol: float = 1e-9) -> bool:
    """Check sum_k K_k^dagger K_k == identity."""
    if not kraus_operators:
        return False
    dim = kraus_operators[0].shape[1]
    total = np.zeros((dim, dim), dtype=complex)
    for op in kraus_operators:
        total += op.conj().T @ op
    return bool(np.allclose(total, np.eye(dim), atol=atol))


def dephasing_probability_from_phase_std(sigma_radians: float) -> float:
    """Dephasing parameter for optical-phase uncertainty (Eq. 28).

    ``p_d = (1 - I1(sigma^-2) / I0(sigma^-2)) / 2`` where I0, I1 are modified
    Bessel functions of the first kind.  For large sigma the ratio tends to
    zero and p_d -> 1/2 (complete dephasing); for sigma -> 0 it tends to 0.
    """
    if sigma_radians < 0:
        raise ValueError(f"negative phase std {sigma_radians}")
    if sigma_radians == 0:
        return 0.0
    argument = 1.0 / (sigma_radians ** 2)
    ratio = bessel_ratio_i1_i0(argument)
    return float((1.0 - ratio) / 2.0)


def bessel_ratio_i1_i0(x: float) -> float:
    """Compute I1(x)/I0(x) stably for large ``x`` (Amos 1974 style recursion).

    ``scipy.special.iv`` overflows for large arguments, so we use the
    exponentially-scaled variants.
    """
    from scipy.special import ive

    if x < 0:
        raise ValueError(f"negative argument {x}")
    if x == 0:
        return 0.0
    return float(ive(1, x) / ive(0, x))


def nuclear_dephasing_per_attempt(alpha: float, delta_omega: float,
                                  tau_decay: float) -> float:
    """Dephasing probability on the carbon memory per entanglement attempt.

    Implements Eq. (25): ``p_d = alpha/2 (1 - exp(-(delta_omega^2 tau^2)/2))``
    where ``alpha`` is the bright-state population, ``delta_omega`` the
    electron-carbon coupling strength (rad/s) and ``tau_decay`` the electron
    reset decay constant (s).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha={alpha} is not a probability")
    exponent = -(delta_omega ** 2) * (tau_decay ** 2) / 2.0
    return float(alpha / 2.0 * (1.0 - np.exp(exponent)))
