"""Density-matrix representation of small multi-qubit systems.

The :class:`DensityMatrix` wraps a numpy array and provides the operations the
hardware and protocol models need: tensor products, applying unitaries and
Kraus channels to subsets of qubits, partial trace, projective and POVM
measurements, and fidelity helpers.

Qubit ordering: qubit 0 is the most-significant index of the computational
basis (i.e. ``|q0 q1 ... qn-1>``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.quantum import gates
from repro.quantum.states import ket_to_dm


class DensityMatrix:
    """An exact density matrix over ``num_qubits`` qubits.

    Parameters
    ----------
    matrix:
        Square complex matrix of dimension ``2**n``.  A state vector of
        length ``2**n`` is also accepted and converted to its outer product.
    validate:
        When ``True`` (default) check hermiticity, trace and positivity.
    """

    def __init__(self, matrix: np.ndarray, validate: bool = True) -> None:
        array = np.asarray(matrix, dtype=complex)
        if array.ndim == 1:
            array = ket_to_dm(array)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise ValueError(f"expected a square matrix, got shape {array.shape}")
        dim = array.shape[0]
        num_qubits = int(np.log2(dim))
        if 2 ** num_qubits != dim:
            raise ValueError(f"dimension {dim} is not a power of two")
        self._matrix = array
        self._num_qubits = num_qubits
        if validate:
            self._validate()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_ket(cls, ket: np.ndarray, validate: bool = True) -> "DensityMatrix":
        """Build a pure-state density matrix from a state vector.

        Internal hot paths pass ``validate=False`` when the ket is known to
        be normalised (the outer product of a normalised vector is always a
        valid state).
        """
        return cls(ket_to_dm(np.asarray(ket, dtype=complex)),
                   validate=validate)

    @classmethod
    def computational_basis(cls, bits: Sequence[int]) -> "DensityMatrix":
        """|b0 b1 ... bn-1><...| for the given classical bit string."""
        dim = 2 ** len(bits)
        index = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0/1, got {bit}")
            index = (index << 1) | bit
        matrix = np.zeros((dim, dim), dtype=complex)
        matrix[index, index] = 1.0
        return cls(matrix, validate=False)

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        """The maximally mixed state I / 2**n."""
        dim = 2 ** num_qubits
        return cls(np.eye(dim, dtype=complex) / dim, validate=False)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def matrix(self) -> np.ndarray:
        """The underlying numpy matrix (not copied)."""
        return self._matrix

    @property
    def num_qubits(self) -> int:
        """Number of qubits this state describes."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension 2**n."""
        return self._matrix.shape[0]

    def trace(self) -> float:
        """Trace of the matrix (should be 1 for a normalised state)."""
        return float(np.real(np.trace(self._matrix)))

    def purity(self) -> float:
        """Tr(rho^2); 1 for pure states, 1/2**n for maximally mixed."""
        return float(np.real(np.trace(self._matrix @ self._matrix)))

    def copy(self) -> "DensityMatrix":
        """An independent copy of this state."""
        return DensityMatrix(self._matrix.copy(), validate=False)

    def update_matrix(self, matrix: np.ndarray) -> None:
        """Replace the underlying matrix without validation.

        For physics backends whose operations preserve validity by
        construction (Kraus application, measurement collapse); the matrix
        must have the same dimension.
        """
        if matrix.shape != self._matrix.shape:
            raise ValueError(f"replacement shape {matrix.shape} does not "
                             f"match state shape {self._matrix.shape}")
        self._matrix = matrix

    def _validate(self, atol: float = 1e-8) -> None:
        if not np.allclose(self._matrix, self._matrix.conj().T, atol=atol):
            raise ValueError("density matrix is not Hermitian")
        if not np.isclose(self.trace(), 1.0, atol=atol):
            raise ValueError(f"density matrix trace {self.trace()} != 1")
        eigenvalues = np.linalg.eigvalsh(self._matrix)
        if eigenvalues.min() < -atol:
            raise ValueError(f"density matrix has negative eigenvalue "
                             f"{eigenvalues.min()}")

    # ------------------------------------------------------------------ #
    # Composition and reduction
    # ------------------------------------------------------------------ #
    def tensor(self, other: "DensityMatrix") -> "DensityMatrix":
        """Tensor product ``self (x) other``; ``other``'s qubits come after."""
        return DensityMatrix(np.kron(self._matrix, other._matrix), validate=False)

    def partial_trace(self, keep: Iterable[int]) -> "DensityMatrix":
        """Trace out all qubits not listed in ``keep``.

        The kept qubits retain their relative ordering.
        """
        keep = list(keep)
        if any(q < 0 or q >= self._num_qubits for q in keep):
            raise ValueError(f"keep={keep} out of range for {self._num_qubits} qubits")
        if len(set(keep)) != len(keep):
            raise ValueError(f"duplicate qubits in keep={keep}")
        n = self._num_qubits
        traced = [q for q in range(n) if q not in keep]
        reshaped = self._matrix.reshape([2] * (2 * n))
        # Axes: row indices 0..n-1, column indices n..2n-1.
        for offset, qubit in enumerate(sorted(traced)):
            axis_row = qubit - offset
            current_n = n - offset
            reshaped = np.trace(reshaped, axis1=axis_row,
                                axis2=axis_row + current_n)
        dim = 2 ** len(keep)
        new_matrix = reshaped.reshape(dim, dim)
        # Reorder kept qubits to match the order given in ``keep``.
        order = np.argsort(np.argsort(keep))
        if not np.array_equal(order, np.arange(len(keep))):
            new_matrix = _permute_qubits(new_matrix, list(order))
        return DensityMatrix(new_matrix, validate=False)

    # ------------------------------------------------------------------ #
    # Evolution
    # ------------------------------------------------------------------ #
    def apply_unitary(self, unitary: np.ndarray,
                      qubits: Optional[Sequence[int]] = None) -> None:
        """Apply ``unitary`` in place.

        If ``qubits`` is given, the unitary acts on those qubits only (it must
        have dimension ``2**len(qubits)``); otherwise it must act on the whole
        register.
        """
        unitary = np.asarray(unitary, dtype=complex)
        if qubits is not None:
            unitary = self._expand_operator(unitary, list(qubits))
        if unitary.shape != self._matrix.shape:
            raise ValueError(
                f"unitary shape {unitary.shape} does not match state "
                f"dimension {self._matrix.shape}")
        self._matrix = unitary @ self._matrix @ unitary.conj().T

    def apply_kraus(self, kraus_operators: Sequence[np.ndarray],
                    qubits: Optional[Sequence[int]] = None) -> None:
        """Apply a completely-positive map given by Kraus operators in place."""
        expanded = []
        for op in kraus_operators:
            op = np.asarray(op, dtype=complex)
            if qubits is not None:
                op = self._expand_operator(op, list(qubits))
            expanded.append(op)
        total = np.zeros_like(self._matrix)
        for op in expanded:
            total += op @ self._matrix @ op.conj().T
        self._matrix = total

    def _expand_operator(self, operator: np.ndarray,
                         qubits: list[int]) -> np.ndarray:
        expected_dim = 2 ** len(qubits)
        if operator.shape != (expected_dim, expected_dim):
            raise ValueError(
                f"operator shape {operator.shape} does not match "
                f"{len(qubits)} target qubits")
        if len(qubits) == 1:
            return gates.expand_single_qubit(operator, qubits[0],
                                             self._num_qubits)
        if len(qubits) == 2:
            return gates.expand_two_qubit(operator, qubits[0], qubits[1],
                                          self._num_qubits)
        raise NotImplementedError(
            "operators on more than two qubits are not needed by this model")

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def outcome_probability(self, operator: np.ndarray,
                            qubits: Optional[Sequence[int]] = None) -> float:
        """Probability Tr(M rho) of POVM element ``operator``."""
        operator = np.asarray(operator, dtype=complex)
        if qubits is not None:
            operator = self._expand_operator(operator, list(qubits))
        return float(np.real(np.trace(operator @ self._matrix)))

    def measure(self, qubit: int, basis: str = "Z",
                rng: Optional[np.random.Generator] = None,
                collapse: bool = True) -> int:
        """Projectively measure ``qubit`` in the X, Y or Z basis.

        Returns the classical outcome (0 or 1).  When ``collapse`` is true the
        state is updated (and renormalised) according to the outcome.
        """
        from repro.quantum.measurement import basis_operators

        rng = rng if rng is not None else np.random.default_rng()
        projector0, projector1 = basis_operators(basis)
        p0 = self.outcome_probability(projector0, qubits=[qubit])
        p0 = min(max(p0, 0.0), 1.0)
        outcome = 0 if rng.random() < p0 else 1
        if collapse:
            projector = projector0 if outcome == 0 else projector1
            expanded = self._expand_operator(projector, [qubit])
            post = expanded @ self._matrix @ expanded.conj().T
            norm = np.real(np.trace(post))
            if norm <= 0:
                raise RuntimeError("measurement produced zero-probability branch")
            self._matrix = post / norm
        return outcome

    def measure_povm(self, kraus_operators: Sequence[np.ndarray],
                     qubits: Optional[Sequence[int]] = None,
                     rng: Optional[np.random.Generator] = None,
                     collapse: bool = True) -> int:
        """Measure a POVM specified by Kraus operators.

        Returns the index of the observed outcome; when ``collapse`` is true
        the state is updated with the corresponding Kraus operator.
        """
        rng = rng if rng is not None else np.random.default_rng()
        expanded = []
        for op in kraus_operators:
            op = np.asarray(op, dtype=complex)
            if qubits is not None:
                op = self._expand_operator(op, list(qubits))
            expanded.append(op)
        probabilities = []
        for op in expanded:
            element = op.conj().T @ op
            probabilities.append(
                float(np.real(np.trace(element @ self._matrix))))
        probabilities = np.clip(np.array(probabilities), 0.0, None)
        total = probabilities.sum()
        if total <= 0:
            raise RuntimeError("POVM probabilities sum to zero")
        probabilities = probabilities / total
        outcome = int(rng.choice(len(expanded), p=probabilities))
        if collapse:
            op = expanded[outcome]
            post = op @ self._matrix @ op.conj().T
            norm = np.real(np.trace(post))
            if norm <= 0:
                raise RuntimeError("POVM produced zero-probability branch")
            self._matrix = post / norm
        return outcome

    # ------------------------------------------------------------------ #
    # Comparison helpers
    # ------------------------------------------------------------------ #
    def fidelity_to_pure(self, ket: np.ndarray) -> float:
        """Fidelity <psi| rho |psi> with the pure state ``ket``."""
        ket = np.asarray(ket, dtype=complex).reshape(-1)
        if ket.shape[0] != self.dim:
            raise ValueError(
                f"state vector dimension {ket.shape[0]} does not match {self.dim}")
        return float(np.real(ket.conj() @ self._matrix @ ket))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DensityMatrix):
            return NotImplemented
        return (self._num_qubits == other._num_qubits
                and np.allclose(self._matrix, other._matrix))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (f"DensityMatrix(num_qubits={self._num_qubits}, "
                f"purity={self.purity():.4f})")


def _permute_qubits(matrix: np.ndarray, order: list[int]) -> np.ndarray:
    """Permute qubit order of a density matrix; ``order[i]`` gives the new
    position of current qubit ``i``."""
    n = len(order)
    dim = 2 ** n
    permutation = np.zeros(dim, dtype=int)
    for index in range(dim):
        bits = [(index >> (n - 1 - q)) & 1 for q in range(n)]
        new_bits = [0] * n
        for current, new in enumerate(order):
            new_bits[new] = bits[current]
        new_index = 0
        for bit in new_bits:
            new_index = (new_index << 1) | bit
        permutation[index] = new_index
    result = np.zeros_like(matrix)
    for row in range(dim):
        for col in range(dim):
            result[permutation[row], permutation[col]] = matrix[row, col]
    return result
