"""Fidelity and QBER utilities (paper Appendix A.3).

The link layer's quantum quality metric is the fidelity ``F`` of the
delivered pair to the target Bell state.  For measure-directly (MD) requests
the observable quantity is the quantum bit error rate (QBER) in the X, Y and
Z bases; the two are related by ``F = 1 - (QBER_X + QBER_Y + QBER_Z) / 2``
for the |Psi-> target (Eq. 16), with basis-dependent correlation signs for the
other Bell states.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy.linalg import sqrtm

from repro.quantum.states import BellIndex, bell_state

#: For each Bell state, whether ideal X/Y/Z measurement outcomes at the two
#: nodes are correlated (+1, equal outcomes) or anti-correlated (-1).
BELL_CORRELATIONS: dict[BellIndex, dict[str, int]] = {
    BellIndex.PHI_PLUS: {"X": +1, "Y": -1, "Z": +1},
    BellIndex.PHI_MINUS: {"X": -1, "Y": +1, "Z": +1},
    BellIndex.PSI_PLUS: {"X": +1, "Y": +1, "Z": -1},
    BellIndex.PSI_MINUS: {"X": -1, "Y": -1, "Z": -1},
}


def fidelity_to_pure(rho: np.ndarray, ket: np.ndarray) -> float:
    """Fidelity <psi|rho|psi> of a density matrix with a pure target state."""
    rho = np.asarray(rho, dtype=complex)
    ket = np.asarray(ket, dtype=complex).reshape(-1)
    return float(np.real(ket.conj() @ rho @ ket))


def fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Uhlmann fidelity F(rho, sigma) = (Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2."""
    rho = np.asarray(rho, dtype=complex)
    sigma = np.asarray(sigma, dtype=complex)
    sqrt_rho = sqrtm(rho)
    inner = sqrtm(sqrt_rho @ sigma @ sqrt_rho)
    value = np.real(np.trace(inner)) ** 2
    return float(min(max(value, 0.0), 1.0))


def qber_from_state(rho: np.ndarray, basis: str,
                    target: BellIndex = BellIndex.PSI_PLUS) -> float:
    """QBER in ``basis`` of the two-qubit state ``rho`` relative to ``target``.

    The QBER is the probability that the two nodes' measurement outcomes have
    the *wrong* correlation for the target Bell state: e.g. for |Psi+> the Z
    outcomes should be anti-correlated, so QBER_Z is the probability of equal
    outcomes.
    """
    from repro.quantum.measurement import basis_operators

    rho = np.asarray(rho, dtype=complex)
    if rho.shape != (4, 4):
        raise ValueError(f"expected a two-qubit state, got shape {rho.shape}")
    projector0, projector1 = basis_operators(basis)
    p_equal = 0.0
    for proj in (projector0, projector1):
        operator = np.kron(proj, proj)
        p_equal += float(np.real(np.trace(operator @ rho)))
    correlation = BELL_CORRELATIONS[BellIndex(target)][basis.upper()]
    if correlation > 0:
        # Outcomes should be equal; errors are unequal outcomes.
        return float(min(max(1.0 - p_equal, 0.0), 1.0))
    return float(min(max(p_equal, 0.0), 1.0))


def qber_all_bases(rho: np.ndarray,
                   target: BellIndex = BellIndex.PSI_PLUS) -> dict[str, float]:
    """QBER in each of X, Y, Z for the two-qubit state ``rho``."""
    return {basis: qber_from_state(rho, basis, target=target)
            for basis in ("X", "Y", "Z")}


def fidelity_from_qber(qbers: Mapping[str, float]) -> float:
    """Fidelity estimate from measured QBERs (Eq. 16).

    ``F = 1 - (QBER_X + QBER_Y + QBER_Z) / 2``.  Valid for any target Bell
    state as long as the QBERs were computed relative to that same target.
    """
    missing = {"X", "Y", "Z"} - {k.upper() for k in qbers}
    if missing:
        raise ValueError(f"missing QBER for bases {sorted(missing)}")
    total = sum(float(qbers[k]) for k in qbers if k.upper() in ("X", "Y", "Z"))
    return float(1.0 - total / 2.0)


def qber_from_fidelity_werner(f: float) -> float:
    """QBER of a Werner state with fidelity ``f`` (same in every basis).

    A Werner state mixes the target Bell state with white noise; each basis
    then sees ``QBER = 2(1-F)/3``.  Used for quick analytic estimates in the
    FEU and in tests.
    """
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"fidelity {f} not in [0, 1]")
    return float(2.0 * (1.0 - f) / 3.0)


def werner_state(f: float, target: BellIndex = BellIndex.PSI_PLUS) -> np.ndarray:
    """Two-qubit Werner state with fidelity ``f`` to ``target``."""
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"fidelity {f} not in [0, 1]")
    ket = bell_state(target)
    pure = np.outer(ket, ket.conj())
    mixed = np.eye(4, dtype=complex) / 4.0
    # F = f_target applied to pure part plus 1/4 from the identity component.
    weight = (4.0 * f - 1.0) / 3.0
    weight = min(max(weight, 0.0), 1.0)
    return weight * pure + (1.0 - weight) * mixed
