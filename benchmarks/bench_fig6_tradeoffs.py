"""Figure 6: performance trade-offs between latency, throughput and fidelity.

Three panels are regenerated on the QL2020 scenario with k_max = 3:

(a) scaled latency versus the request load fraction f_P,
(b) scaled latency versus the requested minimum fidelity F_min,
(c) throughput versus F_min (throughput scales directly with F_min because a
    higher F_min forces a lower alpha and hence a lower success probability).

The paper additionally shows that high F_min values stop being satisfiable
for the NL (create-and-keep) service before the MD one.

Both sweeps run through the :class:`~repro.runtime.sweep.SweepRunner` so a
multi-core machine regenerates the panels in parallel (``REPRO_BENCH_WORKERS``
sets the pool size; the results are identical to a serial run by
construction).
"""

from __future__ import annotations

import os

from benchmarks.conftest import BATCH, print_table, scaled
from repro.core.messages import Priority, RequestType
from repro.runtime.scenarios import ScenarioSpec
from repro.runtime.sweep import run_sweep
from repro.runtime.workload import WorkloadSpec

LOAD_POINTS = [0.4, 0.7, 0.99]
FIDELITY_POINTS = [0.55, 0.62, 0.68]

#: Worker processes used by the benchmark sweeps.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def md_specs(ql2020_config, points, prefix) -> list[ScenarioSpec]:
    """One MD scenario per (load, F_min) sweep point."""
    specs = []
    for load, min_fidelity in points:
        workload = WorkloadSpec(priority=Priority.MD, load_fraction=load,
                                max_pairs=3, min_fidelity=min_fidelity)
        specs.append(ScenarioSpec(
            name=f"{prefix}_f{load:.2f}_F{min_fidelity:.2f}",
            scenario=ql2020_config, workload=(workload,),
            attempt_batch_size=BATCH))
    return specs


def sweep_panel(specs, duration, master_seed, prefix):
    """Run one figure panel: all points share a seed (paired comparison)."""
    result = run_sweep(specs, duration, master_seed=master_seed,
                       workers=WORKERS, seed_key=lambda spec: prefix)
    failed = result.failed
    assert not failed, f"scenarios failed: {[o.scenario_name for o in failed]}"
    return result


def test_fig6a_scaled_latency_vs_load(benchmark, ql2020_config):
    duration = scaled(6.0)
    specs = md_specs(ql2020_config, [(load, 0.62) for load in LOAD_POINTS],
                     prefix="fig6a")

    def sweep():
        result = sweep_panel(specs, duration, 101, "fig6a")
        rows = []
        for load, outcome in zip(LOAD_POINTS, result.outcomes):
            summary = outcome.summary
            rows.append((load, summary.average_scaled_latency.get("MD", 0.0),
                         summary.throughput.get("MD", 0.0)))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Figure 6(a) — scaled latency vs load fraction f_P (QL2020, MD)",
                ["f_P", "scaled_latency_s", "throughput_1/s"],
                [[f"{l:.2f}", f"{sl:.3f}", f"{t:.2f}"] for l, sl, t in results])
    latencies = [row[1] for row in results]
    # Latency grows with offered load (queueing effect).
    assert latencies[-1] > latencies[0]


def test_fig6bc_latency_and_throughput_vs_fidelity(benchmark, ql2020_config):
    duration = scaled(6.0)
    specs = md_specs(ql2020_config, [(0.99, fmin) for fmin in FIDELITY_POINTS],
                     prefix="fig6bc")

    def sweep():
        result = sweep_panel(specs, duration, 102, "fig6bc")
        rows = []
        for fmin, outcome in zip(FIDELITY_POINTS, result.outcomes):
            summary = outcome.summary
            rows.append((fmin, summary.average_scaled_latency.get("MD", 0.0),
                         summary.throughput.get("MD", 0.0),
                         summary.average_fidelity.get("MD")))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Figure 6(b,c) — scaled latency and throughput vs F_min (QL2020, MD)",
        ["F_min", "scaled_latency_s", "throughput_1/s", "measured_F"],
        [[f"{f:.2f}", f"{sl:.3f}", f"{t:.2f}",
          f"{mf:.3f}" if mf is not None else "-"]
         for f, sl, t, mf in results])
    throughputs = [row[2] for row in results]
    # (c) Demanding a higher F_min lowers the attempt success probability and
    # with it the delivered throughput.
    assert throughputs[0] > throughputs[-1]


def test_fig6b_high_fidelity_unsatisfiable_for_keep_requests(ql2020_config):
    """The NL (K-type) service rejects F_min values that MD still supports."""
    from repro.core.feu import FidelityEstimationUnit

    feu = FidelityEstimationUnit(ql2020_config)
    keep_supported = [f for f in (0.60, 0.65, 0.70, 0.74)
                      if feu.estimate_for_fidelity(f, RequestType.KEEP)]
    measure_supported = [f for f in (0.60, 0.65, 0.70, 0.74)
                         if feu.estimate_for_fidelity(f, RequestType.MEASURE)]
    print(f"\nFigure 6(b) supportable F_min — K: {keep_supported}, "
          f"M: {measure_supported}")
    assert set(keep_supported) <= set(measure_supported)
    assert max(measure_supported) >= max(keep_supported)
