"""Figure 6: performance trade-offs between latency, throughput and fidelity.

Three panels are regenerated on the QL2020 scenario with k_max = 3:

(a) scaled latency versus the request load fraction f_P,
(b) scaled latency versus the requested minimum fidelity F_min,
(c) throughput versus F_min (throughput scales directly with F_min because a
    higher F_min forces a lower alpha and hence a lower success probability).

The paper additionally shows that high F_min values stop being satisfiable
for the NL (create-and-keep) service before the MD one.
"""

from __future__ import annotations

from benchmarks.conftest import BATCH, print_table, scaled
from repro.core.messages import Priority, RequestType
from repro.runtime.runner import run_scenario
from repro.runtime.workload import WorkloadSpec

LOAD_POINTS = [0.4, 0.7, 0.99]
FIDELITY_POINTS = [0.55, 0.62, 0.68]


def run_md(ql2020_config, load, min_fidelity, duration, seed=100):
    spec = WorkloadSpec(priority=Priority.MD, load_fraction=load, max_pairs=3,
                        min_fidelity=min_fidelity)
    return run_scenario(ql2020_config, [spec], duration=duration, seed=seed,
                        attempt_batch_size=BATCH)


def test_fig6a_scaled_latency_vs_load(benchmark, ql2020_config):
    duration = scaled(6.0)
    results = []

    def sweep():
        rows = []
        for load in LOAD_POINTS:
            result = run_md(ql2020_config, load, 0.62, duration, seed=101)
            summary = result.summary
            rows.append((load, summary.average_scaled_latency.get("MD", 0.0),
                         summary.throughput.get("MD", 0.0)))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Figure 6(a) — scaled latency vs load fraction f_P (QL2020, MD)",
                ["f_P", "scaled_latency_s", "throughput_1/s"],
                [[f"{l:.2f}", f"{sl:.3f}", f"{t:.2f}"] for l, sl, t in results])
    latencies = [row[1] for row in results]
    # Latency grows with offered load (queueing effect).
    assert latencies[-1] > latencies[0]


def test_fig6bc_latency_and_throughput_vs_fidelity(benchmark, ql2020_config):
    duration = scaled(6.0)

    def sweep():
        rows = []
        for fmin in FIDELITY_POINTS:
            result = run_md(ql2020_config, 0.99, fmin, duration, seed=102)
            summary = result.summary
            rows.append((fmin, summary.average_scaled_latency.get("MD", 0.0),
                         summary.throughput.get("MD", 0.0),
                         summary.average_fidelity.get("MD")))
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Figure 6(b,c) — scaled latency and throughput vs F_min (QL2020, MD)",
        ["F_min", "scaled_latency_s", "throughput_1/s", "measured_F"],
        [[f"{f:.2f}", f"{sl:.3f}", f"{t:.2f}",
          f"{mf:.3f}" if mf is not None else "-"]
         for f, sl, t, mf in results])
    throughputs = [row[2] for row in results]
    # (c) Demanding a higher F_min lowers the attempt success probability and
    # with it the delivered throughput.
    assert throughputs[0] > throughputs[-1]


def test_fig6b_high_fidelity_unsatisfiable_for_keep_requests(ql2020_config):
    """The NL (K-type) service rejects F_min values that MD still supports."""
    from repro.core.feu import FidelityEstimationUnit

    feu = FidelityEstimationUnit(ql2020_config)
    keep_supported = [f for f in (0.60, 0.65, 0.70, 0.74)
                      if feu.estimate_for_fidelity(f, RequestType.KEEP)]
    measure_supported = [f for f in (0.60, 0.65, 0.70, 0.74)
                         if feu.estimate_for_fidelity(f, RequestType.MEASURE)]
    print(f"\nFigure 6(b) supportable F_min — K: {keep_supported}, "
          f"M: {measure_supported}")
    assert set(keep_supported) <= set(measure_supported)
    assert max(measure_supported) >= max(keep_supported)
