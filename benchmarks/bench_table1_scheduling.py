"""Table 1: throughput and scaled latency under FCFS vs WFQ scheduling.

Two request patterns on QL2020, pairs per request 2 (NL) / 2 (CK) / 10 (MD):

(i)  uniform load  f_NL = f_CK = f_MD = 0.99/3,
(ii) no NL, more MD: f_CK = 0.99/5, f_MD = 0.99*4/5.

Expected qualitative outcome (paper Section 6.3): giving NL strict priority
(WFQ) drastically reduces NL scaled latency, reduces CK latency somewhat,
increases MD latency, and changes throughput only mildly.
"""

from __future__ import annotations

import time

from benchmarks.conftest import (
    bench_backend,
    print_table,
    record_perf,
    run_table1_slice,
    scaled,
)


def run_table1(duration):
    started = time.perf_counter()
    rows, events = run_table1_slice(duration)
    record_perf("bench_table1_scheduling", "test_table1_fcfs_vs_wfq",
                backend=bench_backend(), simulated_seconds=duration,
                events_per_second=round(
                    events / max(time.perf_counter() - started, 1e-9)))
    return rows


def test_table1_fcfs_vs_wfq(benchmark):
    duration = scaled(12.0)
    summaries = benchmark.pedantic(run_table1, args=(duration,), rounds=1,
                                   iterations=1)

    table_rows = []
    for name, summary in summaries.items():
        for kind in ("NL", "CK", "MD"):
            if kind in summary.throughput or kind in summary.average_scaled_latency:
                table_rows.append([
                    name, kind,
                    f"{summary.throughput.get(kind, 0.0):.3f}",
                    f"{summary.average_scaled_latency.get(kind, float('nan')):.3f}",
                ])
    print_table("Table 1 — throughput (1/s) and scaled latency (s), QL2020",
                ["scenario", "kind", "T", "SL"], table_rows)

    uniform_fcfs = summaries["table1_uniform_FCFS"]
    uniform_wfq = summaries["table1_uniform_HigherWFQ"]

    # MD dominates total throughput in both scenarios (10-pair requests).
    assert uniform_fcfs.throughput.get("MD", 0.0) > \
        uniform_fcfs.throughput.get("NL", 0.0)
    # Strict priority reduces NL scaled latency relative to FCFS whenever both
    # schedulers actually completed NL requests.
    nl_fcfs = uniform_fcfs.average_scaled_latency.get("NL")
    nl_wfq = uniform_wfq.average_scaled_latency.get("NL")
    if nl_fcfs is not None and nl_wfq is not None:
        assert nl_wfq <= nl_fcfs * 1.5
    # Total throughput is only mildly affected by the scheduler (paper: the
    # maximal difference is a factor ~1.16).
    total_fcfs = uniform_fcfs.throughput_total()
    total_wfq = uniform_wfq.throughput_total()
    if total_fcfs > 0 and total_wfq > 0:
        ratio = max(total_fcfs, total_wfq) / min(total_fcfs, total_wfq)
        assert ratio < 2.5
