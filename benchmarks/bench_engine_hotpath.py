"""Event-engine hot path: calendar queue + slim events + timer elision.

PR 4's profile left the engine itself as the bottleneck of the analytic
QL2020 mixed CK+MD workload: ~40% of the remaining wall-clock sat in the
``schedule_at``/``heappop`` chain — dataclass events compared through
tuple-building ``__lt__``, a fresh event + handle + closure + f-string name
per schedule, and thousands of timers that were scheduled only to be
cancelled (reply watchdogs) or to fire provably-no-op polls.

PR 5 attacks all of it at once:

* pluggable ``EventQueue`` layer (``REPRO_ENGINE``): binary heap
  (reference), calendar queue with recalibrating buckets + overflow
  ladder, and a ladder/tie-bucket hybrid — all event-for-event equivalent;
* slim ``__slots__`` events that double as their own handles, positional
  callback args instead of closures, reusable/periodic timers;
* timer elision for the GEN/REPLY hot path: reply watchdogs skipped when
  frames cannot be lost, the blocked-EGP follow-up poll skipped, the
  post-REPLY poll deferred past the K attempt spacing, and batched REPLYs
  collapsed into a single delivery event.

Two measurements land in ``BENCH_bench_engine_hotpath.json``:

``test_queue_ops_deep_backlog``
    Raw queue churn (cycle-cadence push/pop) under a growing backlog of
    outstanding timers.  The heap pays O(log n) Python ``__lt__`` calls per
    operation and degrades with depth; the calendar queue is O(1) amortised
    and flat — this is the regime where it wins.

``test_engine_end_to_end_speedup``
    The profiled analytic QL2020 mixed workload, end to end, on three
    configurations: the **PR-4 heap engine** (vendored below, verbatim
    semantics and allocation pattern: ordered dataclass events, per-schedule
    handle + closure, no elisions), the in-repo heap engine in the same
    reference scheduling pattern, and the optimised configuration (calendar
    queue + elisions; the heap stays the repo default).
    All three must deliver identical pairs; the first/last ratio is the
    PR's end-to-end speedup versus the heap engine (target >= 1.5x).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from benchmarks.conftest import print_table, record_perf, scaled

#: Cycle-cadence churn operations for the queue microbenchmark.
CHURN_OPS = 60_000
#: Outstanding-timer backlog depths to sweep.
DEPTHS = (0, 512, 4096, 16384)


# --------------------------------------------------------------------------- #
# Vendored PR-4 reference engine (the "before" of the end-to-end comparison)
# --------------------------------------------------------------------------- #
# This is the seed/PR-4 engine, verbatim in semantics and cost structure:
# an ordered-dataclass event (tuple-building __lt__ on every heap
# comparison), a separate handle object per schedule, and a closure per
# callback that carries arguments — exactly what every schedule allocated
# before PR 5.  The thin ``timer``/``schedule_periodic`` adapters reproduce
# the seed's fresh-event-per-arm / reschedule-per-tick patterns so the
# current protocol code runs on it unchanged.


@dataclass(order=True)
class _RefEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    popped: bool = field(default=False, compare=False)


class _RefHandle:
    def __init__(self, event: _RefEvent, engine: "ReferenceEngine") -> None:
        self._event = event
        self._engine = engine

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        if self._event.cancelled:
            return
        self._event.cancelled = True
        if not self._event.popped:
            self._engine._note_cancelled()


class _RefTimer:
    """Seed pattern: every arm allocates a fresh event + handle + closure."""

    def __init__(self, engine: "ReferenceEngine", callback, name=""):
        self._engine = engine
        self._callback = callback
        self._name = name
        self._handle: Optional[_RefHandle] = None

    def arm_at(self, when: float, args: tuple = ()) -> _RefHandle:
        self._handle = self._engine.schedule_at(when, self._callback,
                                                name=self._name, args=args)
        return self._handle

    def arm_after(self, delay: float, args: tuple = ()) -> _RefHandle:
        return self.arm_at(self._engine._now + delay, args=args)

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()

    @property
    def active(self) -> bool:
        handle = self._handle
        return (handle is not None and not handle.cancelled
                and not handle._event.popped)


class _RefPeriodic:
    """Seed pattern: the callback reschedules itself every interval."""

    def __init__(self, engine, interval, callback, start, name):
        self._engine = engine
        self.interval = interval
        self._callback = callback
        self._name = name
        self._stopped = False
        self._handle = engine.schedule_at(start, self._fire, name=name)

    def _fire(self) -> None:
        self._callback()
        if not self._stopped:
            self._handle = self._engine.schedule_after(
                self.interval, self._fire, name=self._name)

    @property
    def active(self) -> bool:
        return not self._stopped

    def cancel(self) -> None:
        self._stopped = True
        self._handle.cancel()


class ReferenceEngine:
    """The PR-4 binary-heap engine with its original per-event costs."""

    COMPACTION_MIN_CANCELLED = 64

    queue_name = "heap-pr4-reference"

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_RefEvent] = []
        self._counter = itertools.count()
        self._processed = 0
        self._cancelled_in_queue = 0
        self.trace = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._queue) - self._cancelled_in_queue

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule_at(self, when, callback, name="", args=()) -> _RefHandle:
        if when < self._now:
            raise RuntimeError(f"cannot schedule event at {when}")
        if args:
            # The seed's callers bound arguments in a fresh closure per
            # schedule; reproduce that allocation here.
            callback = lambda cb=callback, a=args: cb(*a)  # noqa: E731
        event = _RefEvent(time=float(when), sequence=next(self._counter),
                          callback=callback, name=name)
        heapq.heappush(self._queue, event)
        return _RefHandle(event, self)

    def schedule_after(self, delay, callback, name="", args=()):
        if delay < 0:
            raise RuntimeError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, name=name,
                                args=args)

    def schedule_now(self, callback, name="", args=()):
        return self.schedule_at(self._now, callback, name=name, args=args)

    def schedule_periodic(self, interval, callback, start=None, name=""):
        first = self._now + interval if start is None else float(start)
        return _RefPeriodic(self, interval, callback, first, name)

    def timer(self, callback, name=""):
        return _RefTimer(self, callback, name=name)

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until=None, max_events=None) -> float:
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                self._now = until
                break
            if not self.step():
                break
            executed += 1
        else:
            if until is not None and until > self._now:
                self._now = until
        return self._now

    def _peek(self):
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue).popped = True
            self._cancelled_in_queue -= 1
        return self._queue[0] if self._queue else None

    def _note_cancelled(self) -> None:
        self._cancelled_in_queue += 1
        if (self._cancelled_in_queue >= self.COMPACTION_MIN_CANCELLED
                and 2 * self._cancelled_in_queue > len(self._queue)):
            live = [e for e in self._queue if not e.cancelled]
            for event in self._queue:
                if event.cancelled:
                    event.popped = True
            self._queue = live
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0


# --------------------------------------------------------------------------- #
# Vendored PR-4 protocol hot paths (pre-PR-5 cost structure)
# --------------------------------------------------------------------------- #
# PR 5 also slimmed the protocol side of every event (memoised batch
# grants, single-candidate scheduler selection, version-checked flat ready
# lists, closure-free channel sends).  Like ``bench_mhp_hotpath``'s
# force-miss "before" path, the reference measurement runs the *verbatim
# PR-4 implementations* of those hot spots so the comparison is against the
# seed's true cost structure, not a half-upgraded hybrid.


def _pr4_fcfs_select(self, ready_items, cycle):
    """PR-4 ``FCFSScheduler.select`` (identity-memoised full scan)."""
    if not ready_items:
        return None
    hit, choice = self._cache.lookup(ready_items)
    if hit:
        return choice
    return self._cache.store(
        ready_items,
        min(ready_items, key=lambda item: (item.added_at, item.queue_id)))


def _pr4_ready_items(self, cycle):
    """PR-4 ``DistributedQueue.ready_items`` (per-lane identity check)."""
    sources = tuple(queue.ready_items(cycle)
                    for queue in self.queues.values())
    previous = self._flat_sources
    if (self._flat_ready is not None and len(sources) == len(previous)
            and all(a is b for a, b in zip(sources, previous))):
        return self._flat_ready
    flat = tuple(item for source in sources for item in source)
    self._flat_sources = sources
    self._flat_ready = flat
    return flat


def _pr4_channel_send(self, payload):
    """PR-4 ``ClassicalChannel.send`` (closure + f-string name per send)."""
    from repro.sim.channel import ChannelDelivery

    if self._receiver is None:
        raise RuntimeError(f"channel {self.name} has no receiver connected")
    self.messages_sent += 1
    lost = self._rng.random() < self.loss_probability
    delivered_at = None
    if lost:
        self.messages_lost += 1
    else:
        delivered_at = self.now + self.delay
        receiver = self._receiver
        self.call_after(self.delay, lambda p=payload: receiver(p),
                        name=f"{self.name}.deliver")
    if self.record_history:
        self.history.append(ChannelDelivery(
            sent_at=self.now, delivered_at=delivered_at,
            lost=lost, payload=payload))
    return not lost


class _NoGrantCache(dict):
    """Defeats the EGP's memoised batch grant (PR-4 recomputed per poll)."""

    def get(self, key, default=None):
        return default

    def __setitem__(self, key, value):
        pass


class _pr4_cost_structure:
    """Context manager installing the vendored PR-4 hot paths."""

    def __enter__(self):
        from repro.core.distributed_queue import DistributedQueue
        from repro.core.scheduler import FCFSScheduler
        from repro.sim.channel import ClassicalChannel

        self._saved = [
            (FCFSScheduler, "select", FCFSScheduler.select),
            (DistributedQueue, "ready_items", DistributedQueue.ready_items),
            (ClassicalChannel, "send", ClassicalChannel.send),
        ]
        FCFSScheduler.select = _pr4_fcfs_select
        DistributedQueue.ready_items = _pr4_ready_items
        ClassicalChannel.send = _pr4_channel_send
        return self

    def __exit__(self, *exc):
        for owner, attr, original in self._saved:
            setattr(owner, attr, original)
        return False


# --------------------------------------------------------------------------- #
# Workload helpers
# --------------------------------------------------------------------------- #
def _mixed_workload():
    from repro.core.messages import Priority
    from repro.runtime.workload import WorkloadSpec

    return [WorkloadSpec(priority=Priority.CK, load_fraction=0.99,
                         max_pairs=1, min_fidelity=0.6),
            WorkloadSpec(priority=Priority.MD, load_fraction=0.6,
                         max_pairs=3, min_fidelity=0.55)]


def _run_mixed(duration, *, engine=None, engine_factory=None,
               elide_watchdog=None, timer_elision=True, no_grant_cache=False):
    """One profiled mixed CK+MD QL2020 run; returns (wall, result-like)."""
    from repro.analysis.metrics import MetricsCollector
    from repro.hardware.parameters import ql2020_scenario
    from repro.network.network import LinkLayerNetwork
    from repro.runtime.workload import RequestGenerator

    started = time.perf_counter()
    network = LinkLayerNetwork(ql2020_scenario(), scheduler="FCFS",
                               seed=12345, attempt_batch_size=100,
                               backend="analytic",
                               engine=(engine_factory() if engine_factory
                                       else None),
                               event_queue=engine,
                               elide_watchdog=elide_watchdog,
                               timer_elision=timer_elision)
    if no_grant_cache:
        for node in network.nodes.values():
            node.egp._grant_cache = _NoGrantCache()
    metrics = MetricsCollector(network)
    generator = RequestGenerator(network, _mixed_workload(), metrics=metrics,
                                 seed=12346)
    generator.start()
    network.run(duration)
    wall = time.perf_counter() - started
    return wall, {
        "events": network.engine.processed_events,
        "pairs": metrics.summary().pairs_delivered,
        "summary": metrics.summary(),
        "engine": network.engine.queue_name,
    }


def _best_of_interleaved(reps, *fns):
    """Best-of-``reps`` per configuration, rounds interleaved.

    Interleaving (A B C, A B C, ...) instead of batching (A A, B B, C C)
    keeps slow machine-load drift from biasing whole configurations.
    """
    walls = [float("inf")] * len(fns)
    results = [None] * len(fns)
    for _ in range(reps):
        for index, fn in enumerate(fns):
            wall, result = fn()
            if wall < walls[index]:
                walls[index] = wall
                results[index] = result
    return walls, results


# --------------------------------------------------------------------------- #
# Benchmarks
# --------------------------------------------------------------------------- #
def test_queue_ops_deep_backlog():
    """Raw queue churn under a growing outstanding-timer backlog."""
    from repro.sim.queues import Event, make_event_queue

    def churn(name: str, depth: int) -> float:
        queue = make_event_queue(name)
        seq = 0
        for i in range(depth):
            seq += 1
            queue.push(Event(1.0 + i * 1e-3, seq, lambda: None))
        started = time.perf_counter()
        now = 0.0
        for _ in range(CHURN_OPS):
            seq += 1
            now += 1e-5
            queue.push(Event(now + 3e-4, seq, lambda: None))
            queue.pop()
        return time.perf_counter() - started

    rows = []
    rates: dict[tuple[str, int], float] = {}
    for depth in DEPTHS:
        row = [depth]
        for name in ("heap", "calendar", "ladder"):
            wall = min(churn(name, depth) for _ in range(3))
            rates[(name, depth)] = CHURN_OPS / wall
            row.append(f"{CHURN_OPS / wall / 1e6:.2f}M ops/s")
        rows.append(row)

    deep = max(DEPTHS)
    calendar_speedup = rates[("calendar", deep)] / rates[("heap", deep)]
    ladder_speedup = rates[("ladder", deep)] / rates[("heap", deep)]
    print_table(
        f"Queue churn vs backlog depth — calendar {calendar_speedup:.1f}x "
        f"heap at depth {deep}",
        ["backlog", "heap", "calendar", "ladder"], rows)

    record_perf("bench_engine_hotpath", "test_queue_ops_deep_backlog",
                churn_ops=CHURN_OPS,
                ops_per_second={f"{name}@{depth}": round(rate)
                                for (name, depth), rate in rates.items()},
                calendar_speedup_at_depth=round(calendar_speedup, 2),
                ladder_speedup_at_depth=round(ladder_speedup, 2),
                backlog_depth=deep)

    # The calendar queue is O(1) amortised where the heap pays O(log n):
    # with a deep backlog it must win comfortably; the floor is loose so CI
    # noise cannot flake it while a broken fast path (~1x) fails.
    assert calendar_speedup >= 1.3, \
        f"calendar only {calendar_speedup:.2f}x heap at depth {deep}"


def test_engine_end_to_end_speedup():
    """The profiled mixed workload: PR-4 engine vs calendar + elisions."""
    duration = scaled(60.0)

    # Warm the process-global caches (analytic attempt models) so the
    # ordering of the measurements below cannot bias them.
    _run_mixed(min(duration, 2.0), engine="heap")

    # Three configurations, rounds interleaved:
    # * before — the vendored PR-4 heap engine and the vendored PR-4
    #   protocol hot paths, running the PR-4 scheduling pattern (watchdogs
    #   scheduled, no poll elision, two-event batched replies): the seed's
    #   exact event stream and cost structure, event for event;
    # * slim — the in-repo heap engine on the same reference pattern,
    #   isolating the slim-event contribution (same events, leaner cost);
    # * after — the optimised configuration: calendar queue plus
    #   watchdog/timer elision.
    def measure_before():
        with _pr4_cost_structure():
            return _run_mixed(duration, engine_factory=ReferenceEngine,
                              elide_watchdog=False, timer_elision=False,
                              no_grant_cache=True)

    (before_wall, slim_wall, after_wall), (before, slim, after) = \
        _best_of_interleaved(
            6,
            measure_before,
            lambda: _run_mixed(duration, engine="heap",
                               elide_watchdog=False, timer_elision=False),
            lambda: _run_mixed(duration, engine="calendar"))

    # Identical physics everywhere: same delivered pairs and summaries;
    # the reference pattern replays the PR-4 event stream event for event.
    assert before["pairs"] == slim["pairs"] == after["pairs"]
    assert before["summary"] == slim["summary"] == after["summary"]
    assert before["events"] == slim["events"]
    assert after["events"] < before["events"]

    speedup = before_wall / max(after_wall, 1e-12)
    slim_speedup = before_wall / max(slim_wall, 1e-12)
    print_table(
        f"QL2020 CK+MD end-to-end ({duration:.1f}s sim, analytic) — "
        f"{speedup:.2f}x vs the PR-4 heap engine",
        ["configuration", "wall (s)", "events", "events/s"],
        [["heap engine (PR-4 reference)", f"{before_wall:.3f}",
          before["events"], f"{before['events'] / before_wall:,.0f}"],
         ["heap + slim events (same pattern)", f"{slim_wall:.3f}",
          slim["events"], f"{slim['events'] / slim_wall:,.0f}"],
         ["calendar + timer elision (optimised)", f"{after_wall:.3f}",
          after["events"], f"{after['events'] / after_wall:,.0f}"]])

    record_perf("bench_engine_hotpath", "test_engine_end_to_end_speedup",
                simulated_seconds=duration,
                before_wall_seconds=round(before_wall, 3),
                before_events=before["events"],
                slim_heap_wall_seconds=round(slim_wall, 3),
                after_wall_seconds=round(after_wall, 3),
                after_events=after["events"],
                events_elided=before["events"] - after["events"],
                slim_events_speedup=round(slim_speedup, 2),
                speedup=round(speedup, 2))

    # Acceptance target is >= 1.5x end-to-end versus the heap engine; the
    # assertion floor is looser so CI noise cannot flake it while a real
    # regression (~1x) fails.
    assert speedup >= 1.3, \
        f"end-to-end speedup only {speedup:.2f}x vs the PR-4 heap engine"
