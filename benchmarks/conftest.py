"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section.  Benchmarks print the reproduced rows/series so that the
output can be compared side-by-side with the paper (EXPERIMENTS.md records
that comparison), and use pytest-benchmark to time a representative slice of
the underlying simulation.

Environment knobs:

``REPRO_BENCH_SCALE``
    Multiplier on the simulated duration of every run (default 1.0).  Use a
    larger value for tighter statistics, a smaller one for a quick smoke run.
"""

from __future__ import annotations

import os

import pytest

#: Scale factor applied to simulated durations.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Batch size used for batched attempt generation in benchmarks.  One GEN /
#: REPLY exchange covers this many MHP cycles (Section 5.1 batched operation).
BATCH = 100


def scaled(duration: float) -> float:
    """Simulated duration adjusted by the benchmark scale factor."""
    return max(duration * SCALE, 0.2)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a small aligned table of reproduced results."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header)), max((len(str(row[i])) for row in rows),
                                        default=0))
              for i, header in enumerate(headers)]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


@pytest.fixture(scope="session")
def lab_config():
    from repro.hardware.parameters import lab_scenario

    return lab_scenario()


@pytest.fixture(scope="session")
def ql2020_config():
    from repro.hardware.parameters import ql2020_scenario

    return ql2020_scenario()
