"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section.  Benchmarks print the reproduced rows/series so that the
output can be compared side-by-side with the paper (EXPERIMENTS.md records
that comparison), and use pytest-benchmark to time a representative slice of
the underlying simulation.

Environment knobs:

``REPRO_BENCH_SCALE``
    Multiplier on the simulated duration of every run (default 1.0).  Use a
    larger value for tighter statistics, a smaller one for a quick smoke run.
``REPRO_BACKEND``
    Physics backend every benchmark runs under (``density`` by default,
    ``analytic`` for the closed-form fast path) — the knob is read by the
    runtime layer, so it applies to every ``spec.run`` / ``run_scenario``
    call in the benchmark modules.
``REPRO_BENCH_JSON_DIR``
    Directory the machine-readable perf records are written to (default:
    current working directory).  One ``BENCH_<module>.json`` file per
    benchmark module tracks wall-clock per test, events/sec where the
    benchmark reports it, and the backend — the perf trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import time
from collections import defaultdict
from pathlib import Path

import pytest

#: Scale factor applied to simulated durations.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Batch size used for batched attempt generation in benchmarks.  One GEN /
#: REPLY exchange covers this many MHP cycles (Section 5.1 batched operation).
BATCH = 100


def bench_backend() -> str:
    """The physics backend benchmarks run under (``REPRO_BACKEND``)."""
    from repro.backends import default_backend_name

    return default_backend_name()


def scaled(duration: float) -> float:
    """Simulated duration adjusted by the benchmark scale factor."""
    return max(duration * SCALE, 0.2)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a small aligned table of reproduced results."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header)), max((len(str(row[i])) for row in rows),
                                        default=0))
              for i, header in enumerate(headers)]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


# --------------------------------------------------------------------------- #
# Machine-readable perf records (BENCH_<module>.json)
# --------------------------------------------------------------------------- #
#: module name -> test name -> record dict.
_PERF_RECORDS: dict[str, dict[str, dict]] = defaultdict(dict)


def _records() -> dict[str, dict[str, dict]]:
    """The shared perf-record store.

    pytest imports ``conftest.py`` under its own module name while the
    benchmark modules import ``benchmarks.conftest`` — two module objects.
    Always resolve through the canonical import so both sides write into the
    same dict.
    """
    try:
        from benchmarks.conftest import _PERF_RECORDS as shared
        return shared
    except ImportError:  # pragma: no cover - canonical import unavailable
        return _PERF_RECORDS


def record_perf(module: str, test: str, **fields) -> None:
    """Attach extra perf fields (e.g. ``events_per_second``) to a test record.

    Benchmarks call this with whatever throughput figures they can compute;
    wall-clock and backend are recorded automatically for every test.
    """
    _records()[module].setdefault(test, {}).update(fields)


def run_table1_slice(duration: float, backend=None) -> tuple[dict, int]:
    """The Table-1 scheduling slice (QL2020, batched attempts).

    Shared by ``bench_table1_scheduling`` and ``bench_backend_fastpath`` so
    the fast-path speedup comparison always measures exactly the workload
    the scheduling benchmark reports.  Returns scenario-name -> summary and
    the total number of simulation events processed.
    """
    from repro.runtime.scenarios import table1_scenarios

    summaries = {}
    events = 0
    for spec in table1_scenarios("QL2020", backend=backend):
        result = spec.run(duration, attempt_batch_size=BATCH)
        summaries[spec.name] = result.summary
        events += result.network.engine.processed_events
    return summaries, events


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or item.fspath is None:
        return
    module = Path(str(item.fspath)).stem
    if not module.startswith("bench_"):
        return
    record = _records()[module].setdefault(item.name, {})
    record["wall_seconds"] = round(report.duration, 4)
    record["outcome"] = report.outcome


def pytest_sessionfinish(session, exitstatus):
    records = _records()
    if not records:
        return
    out_dir = Path(os.environ.get("REPRO_BENCH_JSON_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    backend = bench_backend()
    for module, tests in records.items():
        payload = {
            "module": module,
            "backend": backend,
            "bench_scale": SCALE,
            "attempt_batch": BATCH,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "tests": tests,
        }
        path = out_dir / f"BENCH_{module}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))


@pytest.fixture(scope="session")
def lab_config():
    from repro.hardware.parameters import lab_scenario

    return lab_scenario()


@pytest.fixture(scope="session")
def ql2020_config():
    from repro.hardware.parameters import ql2020_scenario

    return ql2020_scenario()
