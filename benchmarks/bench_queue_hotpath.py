"""DQP ready-list hot path: cached vs per-cycle rebuild.

The EGP polls ``DistributedQueue.ready_items`` every GEN cycle — hundreds of
thousands of times per simulated second on the Lab scenario — while the
answer only changes when the queue mutates or a waiting item's schedule
cycle passes.  PR 3 caches the per-lane ready list with a next-transition
watermark.  This benchmark measures the microbenchmark speedup (the "before"
path is the cached implementation force-invalidated every call, i.e. the
pre-PR-3 full rebuild plus a flag store) and an end-to-end simulation run,
and records both in ``BENCH_bench_queue_hotpath.json``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BATCH, print_table, record_perf, scaled

#: Queue population for the microbenchmark: a mostly-waiting queue, the
#: worst case for the rebuild (many items scanned, few ready).
NUM_ITEMS = 64
NUM_READY = 8
CYCLES = 20_000


def _populated_queue():
    from repro.core.distributed_queue import LocalQueue, QueueItem
    from repro.core.messages import (
        AbsoluteQueueId,
        EntanglementRequest,
        Priority,
        RequestType,
    )

    queue = LocalQueue(queue_id=int(Priority.MD), max_size=NUM_ITEMS + 1)
    for seq in range(NUM_ITEMS):
        request = EntanglementRequest(
            remote_node_id="B", request_type=RequestType.MEASURE, number=3,
            purpose_id=int(Priority.MD), priority=Priority.MD, origin="A")
        item = QueueItem(
            request=request,
            queue_id=AbsoluteQueueId(int(Priority.MD), seq),
            # A few items are ready now; the rest wait far in the future so
            # the cache never naturally expires during the measurement.
            schedule_cycle=0 if seq < NUM_READY else 10 ** 9,
            timeout_cycle=None,
            added_at=float(seq),
            pairs_remaining=3,
            acknowledged=True,
        )
        queue.add(item)
    return queue


def _time_ready_items(queue, invalidate_each_call: bool) -> float:
    started = time.perf_counter()
    for cycle in range(CYCLES):
        if invalidate_each_call:
            queue.invalidate_ready_cache()
        queue.ready_items(cycle)
    return time.perf_counter() - started


def test_ready_items_cache_speedup():
    queue = _populated_queue()
    # Warm up and sanity-check both paths return the same answer.
    assert len(queue.ready_items(0)) == NUM_READY
    queue.invalidate_ready_cache()
    assert len(queue.ready_items(0)) == NUM_READY

    before_wall = _time_ready_items(queue, invalidate_each_call=True)
    after_wall = _time_ready_items(queue, invalidate_each_call=False)
    before_rate = CYCLES / before_wall
    after_rate = CYCLES / after_wall
    speedup = before_wall / max(after_wall, 1e-12)

    print_table(
        f"DQP ready_items: {NUM_ITEMS} items ({NUM_READY} ready), "
        f"{CYCLES} cycles — cache speedup {speedup:.1f}x",
        ["path", "wall (s)", "calls/s"],
        [["rebuild every call (pre-PR3)", f"{before_wall:.4f}",
          f"{before_rate:,.0f}"],
         ["cached (PR3)", f"{after_wall:.4f}", f"{after_rate:,.0f}"]])

    record_perf("bench_queue_hotpath", "test_ready_items_cache_speedup",
                before_calls_per_second=round(before_rate),
                after_calls_per_second=round(after_rate),
                speedup=round(speedup, 2),
                queue_items=NUM_ITEMS, ready_items=NUM_READY)

    # The cached path must beat a per-call rebuild by a comfortable margin;
    # the floor is loose so CI noise cannot flake it while a broken cache
    # (~1x) still fails.
    assert speedup >= 3.0, \
        f"ready-list cache only {speedup:.1f}x over rebuild"


def test_ready_items_end_to_end():
    """End-to-end guard: a busy MD scenario exercising the cached path."""
    from repro.core.messages import Priority
    from repro.runtime.runner import run_scenario
    from repro.runtime.workload import WorkloadSpec

    from repro.hardware.parameters import lab_scenario

    duration = scaled(2.0)
    workload = WorkloadSpec(priority=Priority.MD, load_fraction=0.99,
                            max_pairs=3, min_fidelity=0.64)
    started = time.perf_counter()
    result = run_scenario(lab_scenario(), [workload], duration,
                          seed=12345, attempt_batch_size=BATCH)
    wall = time.perf_counter() - started
    events_per_second = result.events_processed / max(wall, 1e-9)

    print_table(f"Lab MD High end-to-end ({duration:.1f}s sim)",
                ["wall (s)", "events", "events/s"],
                [[f"{wall:.2f}", result.events_processed,
                  f"{events_per_second:,.0f}"]])
    record_perf("bench_queue_hotpath", "test_ready_items_end_to_end",
                wall_seconds=round(wall, 3),
                events_processed=result.events_processed,
                events_per_second=round(events_per_second),
                simulated_seconds=duration)
    assert result.summary.pairs_delivered  # the run actually served pairs
