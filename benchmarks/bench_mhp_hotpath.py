"""MHP poll-chain hot path: cached vs per-cycle scheduler selection.

Profiling the analytic backend on QL2020 (the ROADMAP's "~2x headroom" item)
showed the cost of `MHP.notify_work`'s poll chain is not the poll itself but
its last step: ``EGP.handle_poll`` asks the scheduler to pick among the
ready queue items **every GEN cycle**, and the ``min(..., key=...)`` scan of
a deep queue (a ~150-item MD backlog) accounted for ~40% of the whole run —
35M key-lambda calls on a 300-simulated-second mixed CK+MD workload.

PR 4 lands the cheapest win: ``DistributedQueue.ready_items`` now returns a
flat list whose *object identity* is stable between queue mutations, and
both schedulers memoise their selection on that identity (every field the
choice depends on is fixed by the time an item appears in a ready list).
The scan runs once per queue mutation instead of once per cycle.  Measured
end-to-end on the profiled workload: 8.1s -> 5.2s wall (~1.6x), with the
event count and every delivered pair bit-identical.

This benchmark measures the microbenchmark speedup (the "before" path is
the same select forced to miss the cache every call — a fresh list object
per cycle, i.e. the pre-PR-4 full scan) and an end-to-end mixed QL2020 run,
recording both in ``BENCH_bench_mhp_hotpath.json``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BATCH, print_table, record_perf, scaled

#: Ready-list population for the microbenchmark — a deep MD backlog, the
#: regime the profile showed dominating (~150 ready items per poll).
NUM_READY = 150
CYCLES = 20_000


def _ready_list():
    from repro.core.distributed_queue import QueueItem
    from repro.core.messages import (
        AbsoluteQueueId,
        EntanglementRequest,
        Priority,
        RequestType,
    )

    items = []
    for seq in range(NUM_READY):
        request = EntanglementRequest(
            remote_node_id="B", request_type=RequestType.MEASURE, number=3,
            purpose_id=int(Priority.MD), priority=Priority.MD, origin="A")
        items.append(QueueItem(
            request=request,
            queue_id=AbsoluteQueueId(int(Priority.MD), seq),
            schedule_cycle=0,
            timeout_cycle=None,
            added_at=float(seq),
            pairs_remaining=3,
            acknowledged=True,
        ))
    return items


def _time_select(scheduler, ready_tuples, force_miss: bool) -> float:
    started = time.perf_counter()
    for cycle in range(CYCLES):
        # Alternating between two equal tuples defeats the identity memo —
        # exactly the pre-PR-4 cost of scanning the ready list every GEN
        # cycle — while a single stable tuple hits it, as the EGP's polls
        # do between queue mutations.
        ready = ready_tuples[cycle % 2] if force_miss else ready_tuples[0]
        scheduler.select(ready, cycle)
    return time.perf_counter() - started


def test_scheduler_selection_cache_speedup():
    from repro.core.scheduler import FCFSScheduler

    scheduler = FCFSScheduler()
    items = _ready_list()
    ready_tuples = (tuple(items), tuple(items))
    # Sanity: cached and scanned paths agree on the choice.
    expected = scheduler.select(list(items), 0)
    assert scheduler.select(ready_tuples[0], 0) is expected
    assert scheduler.select(ready_tuples[0], 1) is expected  # identity hit
    assert scheduler.select(ready_tuples[1], 2) is expected  # fresh scan

    before_wall = _time_select(scheduler, ready_tuples, force_miss=True)
    after_wall = _time_select(scheduler, ready_tuples, force_miss=False)
    before_rate = CYCLES / before_wall
    after_rate = CYCLES / after_wall
    speedup = before_wall / max(after_wall, 1e-12)

    print_table(
        f"FCFS select: {NUM_READY} ready items, {CYCLES} cycles — "
        f"selection-cache speedup {speedup:.1f}x",
        ["path", "wall (s)", "calls/s"],
        [["scan every call (pre-PR4)", f"{before_wall:.4f}",
          f"{before_rate:,.0f}"],
         ["identity-cached (PR4)", f"{after_wall:.4f}",
          f"{after_rate:,.0f}"]])

    record_perf("bench_mhp_hotpath", "test_scheduler_selection_cache_speedup",
                before_calls_per_second=round(before_rate),
                after_calls_per_second=round(after_rate),
                speedup=round(speedup, 2),
                ready_items=NUM_READY)

    # The memoised path must beat a per-call scan comfortably; the floor is
    # loose so CI noise cannot flake it while a broken cache (~1x) fails.
    assert speedup >= 3.0, \
        f"selection cache only {speedup:.1f}x over per-call scan"


def test_mhp_poll_chain_end_to_end():
    """End-to-end guard: the profiled mixed CK+MD QL2020 workload."""
    from repro.core.messages import Priority
    from repro.runtime.runner import run_scenario
    from repro.runtime.workload import WorkloadSpec

    from repro.hardware.parameters import ql2020_scenario

    duration = scaled(60.0)
    workload = [WorkloadSpec(priority=Priority.CK, load_fraction=0.99,
                             max_pairs=1, min_fidelity=0.6),
                WorkloadSpec(priority=Priority.MD, load_fraction=0.6,
                             max_pairs=3, min_fidelity=0.55)]
    started = time.perf_counter()
    result = run_scenario(ql2020_scenario(), workload, duration,
                          seed=12345, attempt_batch_size=BATCH,
                          backend="analytic")
    wall = time.perf_counter() - started
    events_per_second = result.events_processed / max(wall, 1e-9)

    print_table(f"QL2020 CK+MD end-to-end ({duration:.1f}s sim, analytic)",
                ["wall (s)", "events", "events/s"],
                [[f"{wall:.2f}", result.events_processed,
                  f"{events_per_second:,.0f}"]])
    record_perf("bench_mhp_hotpath", "test_mhp_poll_chain_end_to_end",
                wall_seconds=round(wall, 3),
                events_processed=result.events_processed,
                events_per_second=round(events_per_second),
                simulated_seconds=duration)
    assert result.summary.pairs_delivered  # the run actually served pairs
