"""Figure 9: fidelity of a stored pair versus storage time.

Regenerates the decay curves of Figure 9(a): a perfect |Psi+> pair stored in
the *communication* qubit (electron, T1 = 2.68-2.86 ms, T2 = 1 ms) decays much
faster than one stored in the *memory* qubit (carbon, T1 = inf, T2 = 3.5 ms),
and Figure 9(b): a dynamically decoupled electron with T2 = 1.46 s barely
decays over classical-communication timescales.
"""

from __future__ import annotations

import math

from benchmarks.conftest import print_table
from repro.quantum import noise
from repro.quantum.density import DensityMatrix
from repro.quantum.states import BellIndex, bell_state
from repro.sim.channel import FIBRE_LIGHT_SPEED_KM_S

#: Storage durations expressed as round trips over the 25 km QL2020 link.
ROUND_TRIPS = [0, 1, 2, 5, 10, 20, 50]
ROUND_TRIP_TIME = 2 * 25.0 / FIBRE_LIGHT_SPEED_KM_S


def decay_curve(t1: float, t2: float, durations):
    """Fidelity of |Psi+> after storing one qubit for each duration."""
    rows = []
    for duration in durations:
        state = DensityMatrix.from_ket(bell_state(BellIndex.PSI_PLUS))
        if duration > 0:
            state.apply_kraus(noise.t1_t2_kraus(duration, t1, t2), qubits=[0])
        rows.append((duration, state.fidelity_to_pure(
            bell_state(BellIndex.PSI_PLUS))))
    return rows


def test_fig9a_communication_vs_memory_qubit(benchmark):
    durations = [n * ROUND_TRIP_TIME for n in ROUND_TRIPS]

    def compute():
        communication = decay_curve(2.68e-3, 1.0e-3, durations)
        memory = decay_curve(math.inf, 3.5e-3, durations)
        return communication, memory

    communication, memory = benchmark(compute)
    print_table(
        "Figure 9(a) — fidelity vs storage time (25 km round trips)",
        ["round_trips", "time_ms", "F_comm_qubit", "F_memory_qubit"],
        [[n, f"{d * 1e3:.3f}", f"{fc:.3f}", f"{fm:.3f}"]
         for n, d, (_, fc), (_, fm) in zip(ROUND_TRIPS, durations,
                                           communication, memory)])

    # The memory qubit always preserves the state at least as well as the
    # communication qubit, and both decay monotonically.
    for (_, f_comm), (_, f_mem) in zip(communication, memory):
        assert f_mem >= f_comm - 1e-12
    comm_values = [f for _, f in communication]
    assert all(a >= b - 1e-12 for a, b in zip(comm_values, comm_values[1:]))
    # After ~50 round trips (~12 ms) the electron qubit is essentially useless
    # while the carbon still holds usable entanglement.
    assert communication[-1][1] < 0.6
    assert memory[-1][1] > communication[-1][1]


def test_fig9b_dynamical_decoupling_extends_lifetime(benchmark):
    durations = [n * ROUND_TRIP_TIME for n in ROUND_TRIPS]
    improved = benchmark(decay_curve, math.inf, 1.46, durations)
    print_table(
        "Figure 9(b) — dynamically decoupled electron (T2 = 1.46 s)",
        ["round_trips", "time_ms", "fidelity"],
        [[n, f"{d * 1e3:.3f}", f"{f:.4f}"]
         for n, d, (_, f) in zip(ROUND_TRIPS, durations, improved)])
    # Negligible decay over classical communication timescales.
    assert improved[-1][1] > 0.99
