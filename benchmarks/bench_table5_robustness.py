"""Section 6.1 / Table 5: robustness to classical control-message loss.

The paper artificially inflates the classical frame-loss probability from the
realistic < 4e-8 up to 1e-4 and observes that the protocol keeps running with
only a small impact on fidelity, throughput and the number of OKs (relative
differences of a few percent, latency excepted).

This benchmark runs the same Lab workload at several loss probabilities
(including zero) with per-attempt messaging (no batching, so every classical
frame is individually exposed to loss) and reports the relative differences.
"""

from __future__ import annotations

from benchmarks.conftest import print_table, scaled
from repro.analysis.metrics import relative_difference
from repro.core.messages import Priority
from repro.runtime.runner import run_scenario
from repro.runtime.workload import WorkloadSpec

LOSS_PROBABILITIES = [0.0, 1e-6, 1e-4]


def run_with_loss(lab_config, loss, duration, seed=55):
    scenario = lab_config.with_frame_loss(loss)
    spec = WorkloadSpec(priority=Priority.MD, load_fraction=0.99, max_pairs=3,
                        min_fidelity=0.64)
    return run_scenario(scenario, [spec], duration=duration, seed=seed,
                        attempt_batch_size=1)


def test_table5_robustness_to_message_loss(benchmark, lab_config):
    duration = scaled(1.5)

    def sweep():
        return {loss: run_with_loss(lab_config, loss, duration)
                for loss in LOSS_PROBABILITIES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline = results[0.0].summary
    rows = []
    for loss in LOSS_PROBABILITIES:
        summary = results[loss].summary
        rows.append([
            f"{loss:.0e}" if loss else "0",
            f"{summary.throughput.get('MD', 0.0):.2f}",
            f"{summary.average_fidelity.get('MD', float('nan')):.3f}",
            summary.oks,
            summary.expires,
            f"{relative_difference(summary.throughput.get('MD', 0.0), baseline.throughput.get('MD', 0.0)):.3f}",
        ])
    print_table("Table 5 — robustness to classical frame loss (Lab, MD)",
                ["p_loss", "throughput", "fidelity", "OKs", "EXPIREs",
                 "rel_diff_throughput"], rows)

    # The protocol must keep delivering pairs at every loss level.
    for loss in LOSS_PROBABILITIES:
        assert results[loss].summary.oks > 0, f"no OKs at loss={loss}"
    # At the paper's most extreme (and unrealistic) loss of 1e-4 the
    # throughput stays within a modest factor of the lossless baseline.
    stressed = results[1e-4].summary
    assert relative_difference(stressed.throughput.get("MD", 0.0),
                               baseline.throughput.get("MD", 0.0)) < 0.5
