"""Vectorized cohort throughput: a 64-scenario analytic grid in one process.

The cohort executor (``repro.runtime.batch`` over
``repro.backends.vectorized``) advances many analytic scenarios through one
shared backend: FEU fidelity tables are built once per distinct hardware
config instead of twice per run, and the per-delivery pair physics
(decay / dephasing / correction / measurement collapse) is served from
key-chained memoization instead of being recomputed per member.  Per-member
results stay bit-identical to solo runs (pinned in
``tests/test_vectorized.py`` and re-asserted here), so the speedup is pure
throughput.

This benchmark runs the same ≥64-scenario analytic grid twice in one
process — once per-scenario, once as a single cohort — and records both
scenarios/sec figures and their ratio in ``BENCH_bench_vectorized_grid
.json``.  CI's perf guard fails when a fresh run's ratio drops below half
of the committed baseline's (same-machine ratio comparison, so absolute
host speed does not matter).
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_table, record_perf, scaled

#: Grid width — the acceptance floor is 64 scenarios in one process.
GRID = 64


def _grid():
    from repro.runtime.scenarios import single_kind_scenarios

    specs = (single_kind_scenarios("Lab", backend="analytic")
             + single_kind_scenarios("QL2020", backend="analytic"))
    assert len(specs) >= GRID
    return specs[:GRID]


def test_vectorized_grid_speedup():
    from repro.runtime.batch import CohortRunner

    specs = _grid()
    duration = scaled(0.5)
    seeds = [31_000 + index for index in range(len(specs))]

    started = time.perf_counter()
    solo = [spec.run(duration, seed=seed)
            for spec, seed in zip(specs, seeds)]
    solo_wall = time.perf_counter() - started

    runner = CohortRunner(specs, duration, seeds=seeds)
    results = runner.run()
    cohort_wall = runner.wall_time

    assert runner.errors == [None] * len(specs)
    for reference, result in zip(solo, results):
        assert result.summary == reference.summary
        assert result.events_processed == reference.events_processed

    solo_rate = len(specs) / solo_wall
    cohort_rate = len(specs) / cohort_wall
    speedup = solo_wall / cohort_wall

    print_table(
        f"Vectorized cohort throughput ({len(specs)} analytic scenarios, "
        f"{duration:.2f}s simulated each)",
        ["path", "wall (s)", "scenarios/sec"],
        [["per-scenario", f"{solo_wall:.2f}", f"{solo_rate:.1f}"],
         ["cohort", f"{cohort_wall:.2f}", f"{cohort_rate:.1f}"],
         ["speedup", "", f"{speedup:.2f}x"]])

    record_perf("bench_vectorized_grid", "test_vectorized_grid_speedup",
                grid_scenarios=len(specs),
                simulated_seconds=duration,
                solo_scenarios_per_second=round(solo_rate, 1),
                cohort_scenarios_per_second=round(cohort_rate, 1),
                speedup=round(speedup, 2))

    # Sanity floor only — the real regression guard is CI's ratio check
    # against the committed baseline.
    assert speedup > 1.5
