"""Observability overhead: the no-op tracer must be free.

PR 9 instruments the engine, MHP/EGP, and the sweep/cluster runtime with
``repro.obs`` trace hooks.  Every site is guarded by a single
``if tracer is not None`` check (the engine's run loop hoists the
attribute to a local once per ``run()`` call), so with ``REPRO_OBS``
unset the only cost the simulation pays is that guard.  The acceptance
bar is <2% overhead on the profiled analytic QL2020 mixed workload.

Two measurements land in ``BENCH_bench_obs_overhead.json``:

``test_noop_guard_overhead``
    Bounds the no-op cost from first principles: one profiled mixed run
    with observability off gives wall-clock and event counts; a
    microbenchmark prices the guard pattern itself (attribute load +
    ``is not None`` on a ``__slots__`` host, loop overhead included so
    the per-check figure is an upper bound).  A generous four guard
    evaluations per processed-or-elided event then bounds the total
    guard share of the run's wall-clock.  Pinned <2%.

``test_tracing_outcomes_and_cost``
    End-to-end, rounds interleaved: observability off (tracer ``None``),
    :class:`~repro.obs.NullTracer` attached (guards pass, emission
    kwargs are built, the sink discards them), and a real
    :class:`~repro.obs.Tracer` (``REPRO_OBS=trace``).  All three must
    produce identical summaries and pair counts — tracing is
    outcome-preserving by construction — and the wall-clock ratios are
    recorded so the cost of *enabled* tracing is tracked across PRs.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_table, record_perf, scaled

#: Guard-pattern microbenchmark iterations (unrolled 8x inside the loop).
GUARD_CHECKS = 2_000_000
#: Generous bound on tracer-guard evaluations per processed/elided event
#: (schedule + execute + cancel + elide sites; the run loop's check is a
#: hoisted local, cheaper than what the microbenchmark prices).
GUARDS_PER_EVENT = 4


# --------------------------------------------------------------------------- #
# Workload (the profiled analytic QL2020 mixed CK+MD run, as in
# bench_engine_hotpath)
# --------------------------------------------------------------------------- #
def _mixed_workload():
    from repro.core.messages import Priority
    from repro.runtime.workload import WorkloadSpec

    return [WorkloadSpec(priority=Priority.CK, load_fraction=0.99,
                         max_pairs=1, min_fidelity=0.6),
            WorkloadSpec(priority=Priority.MD, load_fraction=0.6,
                         max_pairs=3, min_fidelity=0.55)]


def _run_mixed(duration, *, tracer=None):
    """One profiled mixed run; returns (wall, result-like).

    ``tracer=None`` is the production default (observability off);
    passing a tracer wires it into the engine, midpoint, and both
    nodes' MHP/EGP exactly as ``ObsSession.attach_link_network`` does.
    """
    from repro.analysis.metrics import MetricsCollector
    from repro.hardware.parameters import ql2020_scenario
    from repro.network.network import LinkLayerNetwork
    from repro.runtime.workload import RequestGenerator

    started = time.perf_counter()
    network = LinkLayerNetwork(ql2020_scenario(), scheduler="FCFS",
                               seed=12345, attempt_batch_size=100,
                               backend="analytic")
    if tracer is not None:
        network.engine.tracer = tracer
        network.midpoint.tracer = tracer
        for node in network.nodes.values():
            node.mhp.tracer = tracer
            node.egp.tracer = tracer
    metrics = MetricsCollector(network)
    generator = RequestGenerator(network, _mixed_workload(), metrics=metrics,
                                 seed=12346)
    generator.start()
    network.run(duration)
    wall = time.perf_counter() - started
    return wall, {
        "events": network.engine.processed_events,
        "elided": network.engine.elided_events,
        "pairs": metrics.summary().pairs_delivered,
        "summary": metrics.summary(),
    }


def _best_of_interleaved(reps, *fns):
    """Best-of-``reps`` per configuration, rounds interleaved."""
    walls = [float("inf")] * len(fns)
    results = [None] * len(fns)
    for _ in range(reps):
        for index, fn in enumerate(fns):
            wall, result = fn()
            if wall < walls[index]:
                walls[index] = wall
                results[index] = result
    return walls, results


class _GuardHost:
    """Same shape as the instrumented hot objects: slotted, tracer=None."""

    __slots__ = ("tracer",)

    def __init__(self):
        self.tracer = None


def _guard_cost_seconds(checks: int = GUARD_CHECKS) -> float:
    """Per-evaluation cost of ``if host.tracer is not None`` (upper bound:
    the loop overhead is charged to the guard)."""
    host = _GuardHost()
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(checks // 8):
            if host.tracer is not None:
                raise AssertionError
            if host.tracer is not None:
                raise AssertionError
            if host.tracer is not None:
                raise AssertionError
            if host.tracer is not None:
                raise AssertionError
            if host.tracer is not None:
                raise AssertionError
            if host.tracer is not None:
                raise AssertionError
            if host.tracer is not None:
                raise AssertionError
            if host.tracer is not None:
                raise AssertionError
        best = min(best, time.perf_counter() - started)
    return best / (checks // 8 * 8)


# --------------------------------------------------------------------------- #
# Benchmarks
# --------------------------------------------------------------------------- #
def test_noop_guard_overhead():
    """Bound the guard share of an observability-off run's wall-clock."""
    duration = scaled(60.0)

    # Warm the process-global caches so they don't inflate the measured run.
    _run_mixed(min(duration, 2.0))

    wall, result = min((_run_mixed(duration) for _ in range(3)),
                       key=lambda pair: pair[0])
    per_check = _guard_cost_seconds()
    guard_events = result["events"] + result["elided"]
    guard_seconds = guard_events * GUARDS_PER_EVENT * per_check
    overhead = guard_seconds / wall

    print_table(
        f"No-op tracer guard bound — {overhead * 100:.3f}% of wall "
        f"(target <2%)",
        ["quantity", "value"],
        [["run wall (s)", f"{wall:.3f}"],
         ["events processed + elided", guard_events],
         ["guard checks bounded", guard_events * GUARDS_PER_EVENT],
         ["per-check cost (ns)", f"{per_check * 1e9:.1f}"],
         ["guard share of wall", f"{overhead * 100:.3f}%"]])

    record_perf("bench_obs_overhead", "test_noop_guard_overhead",
                simulated_seconds=duration,
                run_wall_seconds=round(wall, 3),
                events_processed=result["events"],
                events_elided=result["elided"],
                guards_per_event=GUARDS_PER_EVENT,
                guard_check_nanoseconds=round(per_check * 1e9, 2),
                noop_overhead_percent=round(overhead * 100, 4))

    # The acceptance bar: the no-op tracer (the ``None`` default every
    # un-instrumented run pays for) costs <2% of the profiled workload.
    assert overhead < 0.02, \
        f"no-op tracer guards bound at {overhead * 100:.2f}% of wall (>= 2%)"


def test_tracing_outcomes_and_cost():
    """Off vs NullTracer vs real Tracer: identical outcomes, tracked cost."""
    from repro.obs import NullTracer, Tracer

    duration = scaled(60.0)
    _run_mixed(min(duration, 2.0))

    (off_wall, null_wall, traced_wall), (off, null, traced) = \
        _best_of_interleaved(
            5,
            lambda: _run_mixed(duration),
            lambda: _run_mixed(duration, tracer=NullTracer()),
            lambda: _run_mixed(duration, tracer=Tracer()))

    # Outcome preservation: attaching any tracer changes nothing.
    assert off["pairs"] == null["pairs"] == traced["pairs"]
    assert off["summary"] == null["summary"] == traced["summary"]
    assert off["events"] == null["events"] == traced["events"]

    null_ratio = null_wall / max(off_wall, 1e-12)
    traced_ratio = traced_wall / max(off_wall, 1e-12)
    print_table(
        f"Tracing cost on QL2020 CK+MD ({duration:.1f}s sim, analytic) — "
        f"null {null_ratio:.3f}x, traced {traced_ratio:.3f}x of off",
        ["configuration", "wall (s)", "x off"],
        [["observability off (tracer=None)", f"{off_wall:.3f}", "1.000"],
         ["NullTracer attached", f"{null_wall:.3f}", f"{null_ratio:.3f}"],
         ["Tracer attached (REPRO_OBS=trace)", f"{traced_wall:.3f}",
          f"{traced_ratio:.3f}"]])

    record_perf("bench_obs_overhead", "test_tracing_outcomes_and_cost",
                simulated_seconds=duration,
                off_wall_seconds=round(off_wall, 3),
                null_wall_seconds=round(null_wall, 3),
                traced_wall_seconds=round(traced_wall, 3),
                null_ratio=round(null_ratio, 3),
                traced_ratio=round(traced_ratio, 3),
                events_processed=off["events"])

    # Enabled tracing does real work (per-kind accounting + protocol
    # records); the floor is deliberately loose so CI noise cannot flake
    # it while a pathological regression (tracing dominating the run)
    # fails.
    assert traced_ratio < 2.0, \
        f"enabled tracing costs {traced_ratio:.2f}x the off configuration"
