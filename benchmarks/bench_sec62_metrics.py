"""Section 6.2: fidelity / throughput / latency / fairness of single-kind runs.

Regenerates the headline numbers of the long runs with a single request kind:

* fidelity bands per kind and scenario (NL/CK vs MD, Lab vs QL2020),
* throughput bands (MD slightly above NL/CK in the Lab; QL2020 K-type roughly
  an order of magnitude below the Lab),
* fairness between requests originating at node A and node B.
"""

from __future__ import annotations

from benchmarks.conftest import BATCH, print_table, scaled
from repro.analysis.metrics import relative_difference
from repro.core.messages import Priority
from repro.runtime.runner import run_scenario
from repro.runtime.workload import WorkloadSpec


def run_single_kind(config, priority, duration, origin="random", seed=77):
    spec = WorkloadSpec(priority=priority, load_fraction=0.99, max_pairs=3,
                        origin=origin, min_fidelity=0.64)
    return run_scenario(config, [spec], duration=duration, seed=seed,
                        attempt_batch_size=BATCH)


def test_sec62_lab_throughput_and_fidelity(benchmark, lab_config):
    duration = scaled(4.0)

    def sweep():
        return {kind: run_single_kind(lab_config, kind, duration)
                for kind in (Priority.NL, Priority.CK, Priority.MD)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for kind, result in results.items():
        summary = result.summary
        rows.append([kind.name,
                     f"{summary.throughput.get(kind.name, 0.0):.2f}",
                     f"{summary.average_fidelity.get(kind.name, float('nan')):.3f}",
                     f"{summary.average_scaled_latency.get(kind.name, float('nan')):.3f}"])
    print_table("Section 6.2 — Lab, High load, single kinds",
                ["kind", "throughput_1/s", "fidelity", "scaled_latency_s"], rows)

    nl = results[Priority.NL].summary
    md = results[Priority.MD].summary
    # Paper: Lab High throughput ~6-6.5 for NL/CK and ~6.5-7.1 for MD; our
    # simulator reproduces the same order of magnitude with MD >= NL.
    assert 2.0 < nl.throughput.get("NL", 0.0) < 30.0
    assert md.throughput.get("MD", 0.0) >= nl.throughput.get("NL", 0.0) * 0.8
    # Fidelity close to (and above) the requested 0.64.
    assert nl.average_fidelity["NL"] > 0.6


def test_sec62_ql2020_keep_throughput_is_an_order_lower(benchmark, lab_config,
                                                        ql2020_config):
    duration_lab = scaled(3.0)
    duration_ql = scaled(25.0)

    def sweep():
        lab = run_single_kind(lab_config, Priority.NL, duration_lab, seed=78)
        ql = run_single_kind(ql2020_config, Priority.NL, duration_ql, seed=78)
        return lab, ql

    lab_result, ql_result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lab_throughput = lab_result.summary.throughput.get("NL", 0.0)
    ql_throughput = ql_result.summary.throughput.get("NL", 0.0)
    print(f"\nSection 6.2 — NL throughput: Lab {lab_throughput:.2f}/s, "
          f"QL2020 {ql_throughput:.2f}/s "
          f"(ratio {lab_throughput / max(ql_throughput, 1e-9):.1f}; "
          f"paper reports a factor of ~14)")
    assert ql_throughput > 0
    # The paper reports a factor ~14; accept anything clearly order-of-magnitude.
    assert lab_throughput / ql_throughput > 5


def test_sec62_fairness_between_origins(benchmark, lab_config):
    duration = scaled(12.0)
    result = benchmark.pedantic(
        run_single_kind, args=(lab_config, Priority.MD, duration, "random", 79),
        rounds=1, iterations=1)
    fairness = result.metrics.fairness_by_origin()
    print_table("Section 6.2 — fairness by request origin (Lab, MD)",
                ["origin", "throughput", "oks", "latency_s"],
                [[origin,
                  f"{data['throughput']:.2f}",
                  int(data["oks"]),
                  f"{data['latency']:.3f}"]
                 for origin, data in fairness.items()])
    oks_a, oks_b = fairness["A"]["oks"], fairness["B"]["oks"]
    assert oks_a > 0 and oks_b > 0
    # Paper: relative differences between origins stay small (<= 0.1 for OKs)
    # over 120-hour runs; with runs that are orders of magnitude shorter the
    # sampling noise dominates, so only gross unfairness is rejected.
    assert relative_difference(oks_a, oks_b) < 0.75
