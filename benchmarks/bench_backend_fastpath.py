"""Physics-backend fast path: analytic vs density on the Table-1 slice.

Runs the Table 1 scheduling scenarios (QL2020, batched attempts) under the
exact ``density`` backend and the closed-form ``analytic`` backend and
compares wall-clock and the reproduced metrics.  The analytic backend
resolves runs of failed MHP cycles in O(1) events (geometric fast-forward)
and replaces the density-matrix setup with closed-form expressions, so the
slice runs an order of magnitude faster while staying statistically
equivalent (the tight equivalence bounds live in ``tests/test_backends.py``;
here we assert the headline speedup and coarse agreement).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import print_table, record_perf, run_table1_slice, scaled

#: Minimum analytic-over-density speedup asserted by the smoke benchmark.
#: Locally the slice shows >15x; the floor is deliberately loose so shared-CI
#: timing noise cannot flake the suite while a broken fast path (~1x) still
#: fails.  Override with ``REPRO_BENCH_MIN_SPEEDUP`` for strict local runs.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))


def _run_slice(backend: str, duration: float) -> tuple[dict, float, int]:
    started = time.perf_counter()
    summaries, events = run_table1_slice(duration, backend=backend)
    return summaries, time.perf_counter() - started, events


def test_analytic_fastpath_speedup():
    duration = scaled(12.0)
    density, density_wall, density_events = _run_slice("density", duration)
    analytic, analytic_wall, analytic_events = _run_slice("analytic", duration)
    speedup = density_wall / max(analytic_wall, 1e-9)

    rows = [
        ["density", f"{density_wall:.2f}", density_events,
         f"{density_events / density_wall:,.0f}"],
        ["analytic", f"{analytic_wall:.2f}", analytic_events,
         f"{analytic_events / analytic_wall:,.0f}"],
    ]
    print_table(f"Backend fast path — Table 1 slice ({duration:.1f}s sim), "
                f"speedup {speedup:.1f}x",
                ["backend", "wall (s)", "events", "events/s"], rows)

    metric_rows = []
    for name in density:
        for kind in ("NL", "CK", "MD"):
            t_density = density[name].throughput.get(kind)
            t_analytic = analytic[name].throughput.get(kind)
            if t_density is None and t_analytic is None:
                continue
            metric_rows.append([name, kind,
                                f"{t_density or 0.0:.3f}",
                                f"{t_analytic or 0.0:.3f}"])
    print_table("Throughput (1/s) by backend",
                ["scenario", "kind", "density", "analytic"], metric_rows)

    record_perf("bench_backend_fastpath", "test_analytic_fastpath_speedup",
                speedup=round(speedup, 2),
                density_wall_seconds=round(density_wall, 3),
                analytic_wall_seconds=round(analytic_wall, 3),
                density_events_per_second=round(density_events / density_wall),
                analytic_events_per_second=round(analytic_events /
                                                 analytic_wall),
                simulated_seconds=duration)

    assert speedup >= MIN_SPEEDUP, \
        f"analytic fast path only {speedup:.1f}x faster (want {MIN_SPEEDUP}x)"
    # Coarse agreement on the MD-dominated scenarios (large pair counts):
    # tight statistical bounds are enforced in tests/test_backends.py.
    for name in ("table1_noNLmoreMD_FCFS", "table1_noNLmoreMD_HigherWFQ"):
        t_density = density[name].throughput.get("MD", 0.0)
        t_analytic = analytic[name].throughput.get("MD", 0.0)
        if t_density > 0 and t_analytic > 0:
            ratio = max(t_density, t_analytic) / min(t_density, t_analytic)
            assert ratio < 1.8, \
                f"{name}: MD throughput diverges {t_density} vs {t_analytic}"
