"""Figure 8 / Figure 10: validation of the physical model against NV hardware.

Regenerates the two curves of Figure 8 for the Lab scenario:

(a) fidelity of the heralded state versus the bright-state population alpha,
(b) probability that a single entanglement attempt succeeds versus alpha.

The paper validates its simulation against hardware data; here we regenerate
the simulated curves and check their shape: F decreases roughly as 1 - alpha
(from ~0.83 down to ~0.55 over alpha in [0, 0.5]) while p_succ grows linearly
to ~3e-4 at alpha = 0.5.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.hardware.heralding import HeraldedStateSampler

ALPHAS = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5]


def compute_validation_curve(scenario, alphas=ALPHAS):
    """Return (alpha, fidelity, p_succ) rows for the scenario."""
    rows = []
    for alpha in alphas:
        sampler = HeraldedStateSampler.for_scenario(scenario, alpha)
        rows.append((alpha, sampler.average_success_fidelity(),
                     sampler.success_probability))
    return rows


def test_fig8_lab_validation_curve(benchmark, lab_config):
    rows = benchmark(compute_validation_curve, lab_config)
    print_table(
        "Figure 8 — Lab: fidelity and success probability vs alpha",
        ["alpha", "fidelity", "p_succ"],
        [[f"{a:.2f}", f"{f:.3f}", f"{p:.2e}"] for a, f, p in rows])

    alphas = np.array([row[0] for row in rows])
    fidelities = np.array([row[1] for row in rows])
    p_succ = np.array([row[2] for row in rows])
    # Shape checks mirroring the paper's hardware validation.
    assert np.all(np.diff(fidelities) < 0), "fidelity must decrease with alpha"
    assert np.all(np.diff(p_succ) > 0), "p_succ must increase with alpha"
    assert fidelities[0] > 0.75
    assert fidelities[-1] < 0.6
    assert 1e-4 < p_succ[-1] < 1e-3
    # p_succ is approximately linear in alpha (p ~ alpha * 1e-3, Section 4.4).
    ratio = p_succ / alphas
    assert ratio.max() / ratio.min() < 1.6


def test_fig8_success_probability_monte_carlo_agreement(benchmark, lab_config):
    """Monte-Carlo sampling agrees with the analytic outcome distribution."""
    rng = np.random.default_rng(1234)
    sampler = HeraldedStateSampler.for_scenario(lab_config, 0.4)

    def sample_rate(trials=20000):
        hits = sum(sampler.sample(rng).is_success for _ in range(trials))
        return hits / trials

    observed = benchmark.pedantic(sample_rate, rounds=1, iterations=1)
    expected = sampler.success_probability
    print(f"\nFigure 8 cross-check: analytic p_succ={expected:.3e}, "
          f"Monte-Carlo={observed:.3e}")
    assert abs(observed - expected) < 6 * np.sqrt(expected / 20000 + 1e-12)
