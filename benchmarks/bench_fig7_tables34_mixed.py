"""Figure 7 and Tables 3-4: mixed-priority workloads under different schedulers.

Runs the usage patterns of Appendix C.2 (Table 2) with the FCFS and HigherWFQ
schedulers and reports per-class throughput (Table 3) and scaled/request
latencies (Table 4).  The Figure-7 observation is checked directly: giving NL
strict priority caps its request latency well below its FCFS value.
"""

from __future__ import annotations

import os

from benchmarks.conftest import BATCH, print_table, scaled
from repro.runtime.scenarios import USAGE_PATTERNS, mixed_kind_scenarios
from repro.runtime.sweep import run_sweep

#: Worker processes used by the benchmark sweeps.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def run_mixed(hardware, patterns, schedulers, duration):
    """Sweep the pattern x scheduler grid; scenario name -> outcome.

    Scenarios are seed-grouped by usage pattern so every scheduler sees the
    same arrival randomness — the paper's scheduler comparisons are paired.
    """
    specs = mixed_kind_scenarios(hardware, patterns=patterns,
                                 schedulers=schedulers,
                                 attempt_batch_size=BATCH)
    result = run_sweep(specs, duration, master_seed=12345, workers=WORKERS,
                       seed_key=lambda spec: spec.name.rsplit("_", 1)[0])
    failed = result.failed
    assert not failed, f"scenarios failed: {[o.scenario_name for o in failed]}"
    return {outcome.scenario_name: outcome for outcome in result.outcomes}


def test_tables3_4_mixed_priorities_ql2020(benchmark):
    duration = scaled(12.0)
    patterns = ("MoreNL", "NoNLMoreMD")
    schedulers = ("FCFS", "HigherWFQ")

    results = benchmark.pedantic(run_mixed,
                                 args=("QL2020", patterns, schedulers, duration),
                                 rounds=1, iterations=1)

    throughput_rows, latency_rows = [], []
    for name, result in results.items():
        summary = result.summary
        for kind in ("NL", "CK", "MD"):
            if kind not in summary.pairs_delivered and \
                    kind not in summary.requests_submitted:
                continue
            throughput_rows.append(
                [name, kind, f"{summary.throughput.get(kind, 0.0):.3f}"])
            latency_rows.append(
                [name, kind,
                 f"{summary.average_scaled_latency.get(kind, float('nan')):.3f}",
                 f"{summary.average_request_latency.get(kind, float('nan')):.3f}"])
    print_table("Table 3 — mixed-priority throughput (1/s), QL2020",
                ["scenario", "kind", "T"], throughput_rows)
    print_table("Table 4 — mixed-priority latencies (s), QL2020",
                ["scenario", "kind", "SL", "RL"], latency_rows)

    more_nl_fcfs = results["QL2020_MoreNL_FCFS"].summary
    more_nl_wfq = results["QL2020_MoreNL_HigherWFQ"].summary
    no_nl_fcfs = results["QL2020_NoNLMoreMD_FCFS"].summary
    # The NL-dominated pattern keeps delivering NL pairs; the MD-dominated
    # pattern keeps delivering MD pairs (which dominate its throughput since
    # they need no memory swap).
    assert more_nl_fcfs.throughput.get("NL", 0.0) > 0
    assert no_nl_fcfs.throughput.get("MD", 0.0) > \
        no_nl_fcfs.throughput.get("CK", 0.0)
    # Figure 7: strict NL priority keeps NL latency at or below its FCFS value
    # (when NL requests completed under both schedulers).
    nl_fcfs = more_nl_fcfs.average_request_latency.get("NL")
    nl_wfq = more_nl_wfq.average_request_latency.get("NL")
    if nl_fcfs and nl_wfq:
        assert nl_wfq <= nl_fcfs * 1.5


def test_fig7_lab_request_latency_under_strict_priority(benchmark):
    duration = scaled(6.0)
    results = benchmark.pedantic(run_mixed,
                                 args=("Lab", ("MoreNL",),
                                       ("FCFS", "HigherWFQ"), duration),
                                 rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        summary = result.summary
        for kind in ("NL", "CK", "MD"):
            rows.append([name, kind,
                         f"{summary.average_request_latency.get(kind, float('nan')):.3f}",
                         summary.pairs_delivered.get(kind, 0)])
    print_table("Figure 7 — request latency (s) by scheduler (Lab, MoreNL)",
                ["scenario", "kind", "request_latency", "pairs"], rows)
    fcfs = results["Lab_MoreNL_FCFS"].summary
    wfq = results["Lab_MoreNL_HigherWFQ"].summary
    assert fcfs.pairs_delivered.get("NL", 0) > 0
    assert wfq.pairs_delivered.get("NL", 0) > 0
    nl_fcfs = fcfs.average_request_latency.get("NL")
    nl_wfq = wfq.average_request_latency.get("NL")
    if nl_fcfs and nl_wfq:
        assert nl_wfq <= nl_fcfs * 1.25


def test_usage_pattern_catalogue_is_complete():
    """All six usage patterns of Table 2 are available."""
    assert set(USAGE_PATTERNS) == {"Uniform", "MoreNL", "MoreCK", "MoreMD",
                                   "NoNLMoreCK", "NoNLMoreMD"}
