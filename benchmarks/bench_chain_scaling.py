"""Repeater-chain scaling: simulation throughput vs chain length.

A :class:`repro.topology.TopologyRun` puts one full MHP/EGP link stack per
link on a single shared event engine, so an N-node chain is (N-1) interleaved
link simulations plus the swap-ASAP controller.  This benchmark sweeps chain
lengths and records how engine throughput (events/sec of wall-clock) holds up
as links are added — the per-event cost should stay roughly flat (the engine
is O(1) amortised per event; the links are independent), with total
wall-clock growing linearly in links.

Emits ``BENCH_bench_chain_scaling.json`` with events/sec and end-to-end
delivery counts per chain length.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BATCH, print_table, record_perf, scaled

#: Chain lengths (nodes) to sweep; 2 nodes is the single-link baseline.
CHAIN_LENGTHS = (2, 3, 4, 5)


def test_chain_length_scaling():
    from repro.runtime.scenarios import chain_grid

    duration = scaled(2.0)
    rows = []
    events_per_second = {}
    pairs_delivered = {}
    baseline_rate = None
    for num_nodes in CHAIN_LENGTHS:
        spec = chain_grid(lengths=(num_nodes,), loads=("Ultra",),
                          attempt_batch_size=BATCH)[0]
        started = time.perf_counter()
        result = spec.run(duration, seed=7)
        wall = time.perf_counter() - started
        rate = result.events_processed / wall if wall > 0 else 0.0
        if baseline_rate is None:
            baseline_rate = rate
        e2e = result.end_to_end or {}
        events_per_second[num_nodes] = round(rate)
        pairs_delivered[num_nodes] = e2e.get("pairs", 0)
        rows.append([num_nodes, num_nodes - 1, result.events_processed,
                     f"{wall:.2f}", round(rate),
                     f"{rate / baseline_rate:.2f}x",
                     e2e.get("pairs", 0),
                     "-" if e2e.get("fidelity") is None
                     else f"{e2e['fidelity']:.3f}"])
        assert result.events_processed > 0
    print_table(
        f"Chain scaling ({duration:.1f}s simulated, Lab, Ultra load)",
        ["nodes", "links", "events", "wall (s)", "events/s", "rel rate",
         "e2e pairs", "e2e F"],
        rows)
    record_perf("bench_chain_scaling", "test_chain_length_scaling",
                simulated_seconds=duration,
                chain_lengths=list(CHAIN_LENGTHS),
                events_per_second=events_per_second,
                e2e_pairs=pairs_delivered)
