"""Ablation benchmarks for design choices called out in DESIGN.md.

* Emission multiplexing (Section 5.2.5): allowing measure-directly attempts
  in every MHP cycle without waiting for the previous REPLY should clearly
  increase MD throughput on QL2020, where the round trip to the midpoint is
  ~14 cycles long.
* Attempt batching (Section 5.1): batched operation must not change the
  delivered fidelity — it only trades protocol-message granularity for speed.
"""

from __future__ import annotations

from benchmarks.conftest import BATCH, print_table, scaled
from repro.core.messages import Priority
from repro.runtime.runner import run_scenario
from repro.runtime.workload import WorkloadSpec


def test_ablation_emission_multiplexing(benchmark, ql2020_config):
    duration = scaled(6.0)
    spec = WorkloadSpec(priority=Priority.MD, load_fraction=0.99, max_pairs=3,
                        min_fidelity=0.64)

    def sweep():
        with_mux = run_scenario(ql2020_config, [spec], duration=duration,
                                seed=31, emission_multiplexing=True,
                                attempt_batch_size=BATCH)
        without_mux = run_scenario(ql2020_config, [spec], duration=duration,
                                   seed=31, emission_multiplexing=False,
                                   attempt_batch_size=1)
        return with_mux, without_mux

    with_mux, without_mux = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [["multiplexing on",
             f"{with_mux.summary.throughput.get('MD', 0.0):.2f}"],
            ["multiplexing off",
             f"{without_mux.summary.throughput.get('MD', 0.0):.2f}"]]
    print_table("Ablation — emission multiplexing (QL2020, MD)",
                ["configuration", "throughput_1/s"], rows)
    assert with_mux.summary.throughput.get("MD", 0.0) > \
        2 * without_mux.summary.throughput.get("MD", 0.0)


def test_ablation_batching_preserves_fidelity(benchmark, lab_config):
    duration_batched = scaled(3.0)
    duration_unbatched = scaled(1.0)
    spec = WorkloadSpec(priority=Priority.CK, load_fraction=0.99, max_pairs=1,
                        origin="A", min_fidelity=0.64)

    def sweep():
        batched = run_scenario(lab_config, [spec], duration=duration_batched,
                               seed=32, attempt_batch_size=BATCH)
        unbatched = run_scenario(lab_config, [spec],
                                 duration=duration_unbatched, seed=32,
                                 attempt_batch_size=1)
        return batched, unbatched

    batched, unbatched = benchmark.pedantic(sweep, rounds=1, iterations=1)
    f_batched = batched.summary.average_fidelity.get("CK")
    f_unbatched = unbatched.summary.average_fidelity.get("CK")
    print(f"\nAblation — batching: fidelity batched={f_batched:.3f}, "
          f"per-attempt={f_unbatched:.3f}")
    assert f_batched is not None and f_unbatched is not None
    assert abs(f_batched - f_unbatched) < 0.05
