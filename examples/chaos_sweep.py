#!/usr/bin/env python3
"""Run a chaos sweep: poison scenarios must be quarantined, nothing else.

The run-supervision acceptance check, as a CLI.  A scenario grid is swept
through the full cluster protocol under a :class:`GuardPolicy` while a
seeded :class:`~repro.runtime.guard.ScenarioFaultPlan` (published to the
worker processes through ``REPRO_SCENARIO_FAULTS``) poisons two scenarios:

* one **hangs** — it schedules an endless stream of no-op events, so only
  the guard's deterministic event budget can stop it;
* one **crash-loops** — its worker process dies with ``os._exit(137)``
  (an OOM-killer exit) every time any worker claims it, so the failure can
  never be reported by the victim; the coordinator must infer it from
  repeated lease deaths.

The harness keeps a fixed number of worker *processes* alive, respawning
any the crash fault kills, until the grid completes.  It then checks, for
each transport:

1. exactly the two poisoned indices are quarantined, with durable
   quarantine records naming the right status (``timeout`` / ``crash``);
2. every surviving outcome is field-for-field identical to a serial
   ``SweepRunner`` run of the same grid with the same master seed.

Exit status 0 means both hold on every requested transport.  The consumed
fault plan and the quarantine records are written to ``--records-out`` so
CI can upload them as artifacts:

    python examples/chaos_sweep.py --transport both --seed 20260808
    python examples/chaos_sweep.py --transport socket --records-out chaos.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster import ClusterCoordinator
from repro.cluster.serve import ClusterCoordinatorServer
from repro.runtime import GuardPolicy, ScenarioFaultPlan, SweepRunner
from repro.runtime import single_kind_scenarios


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transport", default="both",
                        choices=("filesystem", "socket", "both"),
                        help="transport(s) to run the chaos sweep over")
    parser.add_argument("--backend", default="analytic",
                        help="physics backend for the grid")
    parser.add_argument("--duration", type=float, default=0.3,
                        help="simulated seconds per scenario")
    parser.add_argument("--seed", type=int, default=20260808,
                        help="sweep master seed (scenario seeds derive "
                             "from it)")
    parser.add_argument("--hang-index", type=int, default=1,
                        help="grid index of the scenario that hangs")
    parser.add_argument("--crash-index", type=int, default=2,
                        help="grid index of the scenario that kills its "
                             "worker process")
    parser.add_argument("--max-attempts", type=int, default=2,
                        help="retry budget before quarantine")
    parser.add_argument("--max-events", type=int, default=500_000,
                        help="guard event budget (what stops the hang)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes kept alive at a time")
    parser.add_argument("--lease-timeout", type=float, default=2.0,
                        help="seconds without a heartbeat before a dead "
                             "worker's lease may be taken over")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="wall-clock budget per transport before the "
                             "harness gives up")
    parser.add_argument("--records-out", default="",
                        help="write the fault plan and quarantine records "
                             "(JSON) here — always on failure, also on "
                             "success when set")
    return parser


def keep_workers_until_complete(coordinator: ClusterCoordinator,
                                worker_args: list[str], env: dict,
                                count: int, timeout: float) -> int:
    """Respawn up to ``count`` worker processes until the grid completes.

    Returns the number of worker deaths observed (the crash-loop scenario
    kills its claimant with exit code 137 each round until quarantined).
    """
    procs: dict[int, subprocess.Popen] = {}
    serial = deaths = 0
    deadline = time.monotonic() + timeout
    try:
        while not coordinator.is_complete():
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"chaos sweep did not complete within {timeout:.0f}s")
            for slot in range(count):
                proc = procs.get(slot)
                if proc is not None and proc.poll() is None:
                    continue
                if proc is not None:
                    print(f"[chaos] worker slot {slot} died with exit code "
                          f"{proc.returncode}; respawning")
                    deaths += 1
                serial += 1
                procs[slot] = subprocess.Popen(
                    [sys.executable, "-m", "repro.cluster.worker",
                     "--worker-id", f"chaos-w{serial}", "--cache-dir", "",
                     *worker_args],
                    env=env, stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL)
            time.sleep(0.25)
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in procs.values():
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
    return deaths


def run_chaos_sweep(specs, args, faults: ScenarioFaultPlan,
                    transport_kind: str, work_dir: Path):
    """One guarded, faulted cluster sweep; returns (merged, records)."""
    guard = GuardPolicy(max_events=args.max_events, wall_deadline=60.0,
                        max_attempts=args.max_attempts)
    coordinator = ClusterCoordinator(
        specs, args.duration, work_dir / f"cluster-{transport_kind}",
        master_seed=args.seed, num_shards=args.workers,
        lease_timeout=args.lease_timeout, clock_skew_tolerance=0.5,
        guard=guard)
    coordinator.write_plan()
    env = dict(os.environ, PYTHONPATH="src",
               REPRO_SCENARIO_FAULTS=faults.to_env())
    env.pop("REPRO_OBS", None)  # workers need no obs artifacts here

    server = None
    try:
        if transport_kind == "socket":
            server = ClusterCoordinatorServer(coordinator)
            server.start_background()
            worker_args = ["--coordinator", server.address]
        else:
            worker_args = ["--cluster-dir", str(coordinator.cluster_dir)]
        deaths = keep_workers_until_complete(
            coordinator, worker_args, env, args.workers, args.timeout)
    finally:
        if server is not None:
            server.stop()

    records = coordinator.quarantine_records()
    print(f"[chaos] {transport_kind}: {deaths} worker death(s), "
          f"{len(records)} quarantine record(s)")
    return coordinator.merge(), records


def check_transport(kind: str, merged, records, serial, args) -> list[str]:
    """Acceptance checks for one transport; returns failure descriptions."""
    poisoned = {args.hang_index: "timeout", args.crash_index: "crash"}
    failures = []
    quarantined = sorted(index for index, outcome in enumerate(merged.outcomes)
                         if outcome.status == "quarantined")
    if quarantined != sorted(poisoned):
        failures.append(f"{kind}: quarantined indices {quarantined}, "
                        f"expected {sorted(poisoned)}")
    by_index = {record.index: record for record in records}
    for index, status in poisoned.items():
        record = by_index.get(index)
        if record is None:
            failures.append(f"{kind}: no durable quarantine record for "
                            f"index {index}")
        elif record.status != status:
            failures.append(f"{kind}: index {index} quarantined as "
                            f"[{record.status}], expected [{status}]")
    survivors = [outcome for index, outcome in enumerate(merged.outcomes)
                 if index not in poisoned]
    expected = [outcome for index, outcome in enumerate(serial.outcomes)
                if index not in poisoned]
    if survivors != expected:
        failures.append(f"{kind}: surviving outcomes diverged from the "
                        f"serial sweep")
    return failures


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    specs = single_kind_scenarios(
        "Lab", kinds=("NL", "CK", "MD"), loads=("Low", "High"),
        max_pairs_options=(1,), origins=("A",), include_md_k255=False,
        attempt_batch_size=40, backend=args.backend)
    for index in (args.hang_index, args.crash_index):
        if not 0 <= index < len(specs):
            raise SystemExit(f"poison index {index} outside the "
                             f"{len(specs)}-scenario grid")
    faults = ScenarioFaultPlan(
        hang=frozenset({specs[args.hang_index].name}),
        crash=frozenset({specs[args.crash_index].name}))
    print(f"[chaos] {len(specs)} scenarios; hang={specs[args.hang_index].name} "
          f"crash={specs[args.crash_index].name} "
          f"(budget {args.max_attempts} attempt(s))")

    serial = SweepRunner(specs, args.duration, master_seed=args.seed).run()

    kinds = (["filesystem", "socket"] if args.transport == "both"
             else [args.transport])
    failures = []
    collected = {}
    with tempfile.TemporaryDirectory(prefix="chaos-sweep-") as tmp:
        for kind in kinds:
            merged, records = run_chaos_sweep(specs, args, faults, kind,
                                              Path(tmp))
            collected[kind] = [record.to_dict() for record in records]
            problems = check_transport(kind, merged, records, serial, args)
            if problems:
                failures.extend(problems)
                for problem in problems:
                    print(f"[chaos] FAIL: {problem}", file=sys.stderr)
            else:
                print(f"[chaos] {kind}: exactly "
                      f"{{{args.hang_index}, {args.crash_index}}} "
                      f"quarantined, survivors identical to serial -- OK")

    if args.records_out or failures:
        out = Path(args.records_out or "chaos_records.json")
        out.write_text(json.dumps(
            {"seed": args.seed, "fault_plan": faults.to_dict(),
             "transports": kinds, "failures": failures,
             "quarantine_records": collected}, indent=2))
        print(f"[chaos] fault plan and quarantine records written to {out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
