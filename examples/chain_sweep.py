#!/usr/bin/env python3
"""Sweep repeater-chain topologies on the cluster path.

Runs a :func:`repro.runtime.chain_grid` — swap-ASAP repeater chains of
several lengths, each link a full MHP/EGP stack on one shared event engine —
through the sharded cluster coordinator, exactly like the single-link grids
in ``examples/cluster_sweep.py``.  The merged result carries the topology
fields: per-hop link digests (``hops``) and the end-to-end delivery
statistics (``end_to_end`` — pairs, fidelity, latency, swap count).

    python examples/chain_sweep.py                        # 3..4-node chains
    python examples/chain_sweep.py --lengths 3 4 5 --duration 2 --shards 4
    python examples/chain_sweep.py --backend analytic --out chains.json

``--smoke`` runs the CI equivalence check: the same grid executed by a
serial ``SweepRunner`` and by the sharded cluster path must merge into
field-for-field identical outcomes (same seeds, same per-hop and end-to-end
numbers, same event counts).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.cluster import ClusterCoordinator
from repro.runtime import SweepRunner, chain_grid


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lengths", type=int, nargs="+", default=[3, 4],
                        help="chain lengths (nodes) to sweep")
    parser.add_argument("--hardware", default="Lab",
                        choices=("Lab", "QL2020"),
                        help="per-link hardware scenario")
    parser.add_argument("--load", default="Ultra",
                        choices=("Low", "High", "Ultra"),
                        help="per-link offered load")
    parser.add_argument("--duration", type=float, default=1.0,
                        help="simulated seconds per scenario")
    parser.add_argument("--shards", type=int, default=2,
                        help="number of shards to plan")
    parser.add_argument("--workers", type=int, default=None,
                        help="local worker processes (default: one per shard)")
    parser.add_argument("--seed", type=int, default=12345,
                        help="master seed (per-scenario seeds are derived)")
    parser.add_argument("--cluster-dir", default=".chain_cluster",
                        help="shared directory for plan/leases/results")
    parser.add_argument("--batch", type=int, default=50,
                        help="MHP attempt batch size (larger = faster)")
    parser.add_argument("--backend", default=None,
                        help="physics backend: density (exact, default), "
                             "analytic or analytic-exact; falls back to "
                             "$REPRO_BACKEND")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: assert the sharded sweep merges "
                             "field-for-field identical to a serial sweep")
    parser.add_argument("--out", default="",
                        help="write the merged sweep result JSON here")
    return parser


def main() -> int:
    args = build_parser().parse_args()
    specs = chain_grid(lengths=tuple(args.lengths),
                       hardwares=(args.hardware,), loads=(args.load,),
                       attempt_batch_size=args.batch, backend=args.backend)
    print(f"chain grid: {len(specs)} scenario(s) — "
          + ", ".join(spec.name for spec in specs))

    coordinator = ClusterCoordinator(
        specs, args.duration, args.cluster_dir, master_seed=args.seed,
        num_shards=args.shards)
    started = time.perf_counter()
    result = coordinator.run_local(workers=args.workers, reset=True)
    wall = time.perf_counter() - started

    print(f"\n{'scenario':<28}{'links':>6}{'e2e pairs':>10}{'fidelity':>10}"
          f"{'swaps':>7}")
    for outcome in result.outcomes:
        if not outcome.ok:
            print(f"{outcome.scenario_name:<28}error")
            continue
        e2e = outcome.end_to_end or {}
        fidelity = e2e.get("fidelity")
        print(f"{outcome.scenario_name:<28}{e2e.get('links', 0):>6}"
              f"{e2e.get('pairs', 0):>10}"
              f"{'-' if fidelity is None else format(fidelity, '.4f'):>10}"
              f"{e2e.get('swaps', 0):>7}")
    print(f"\n{len(result.completed)} ok / {len(result.failed)} failed "
          f"in {wall:.1f}s wall time")

    if args.smoke:
        serial = SweepRunner(specs, args.duration,
                             master_seed=args.seed).run()
        mismatches = [
            (a.scenario_name, field)
            for a, b in zip(serial.outcomes, result.outcomes)
            for field in ("scenario_name", "seed", "summary", "hops",
                          "end_to_end", "events_processed", "status")
            if getattr(a, field) != getattr(b, field)
        ]
        if mismatches:
            print(f"SMOKE FAILED: serial != sharded on {mismatches}")
            return 1
        print(f"smoke ok: serial == sharded field-for-field over "
              f"{len(specs)} chain scenario(s)")

    if args.out:
        result.save(args.out)
        print(f"merged sweep result written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
