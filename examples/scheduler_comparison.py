#!/usr/bin/env python3
"""Compare FCFS and weighted-fair-queueing scheduling on a mixed workload.

Reproduces (at small scale) the observation of the paper's Section 6.3: giving
network-layer (NL) requests strict priority sharply reduces their latency at a
modest cost to measure-directly (MD) traffic, while throughput is largely
unaffected.

Run with::

    python examples/scheduler_comparison.py
"""

from __future__ import annotations

from repro.hardware import lab_scenario
from repro.runtime.scenarios import USAGE_PATTERNS
from repro.runtime.runner import SimulationRun


def main(simulated_seconds: float = 6.0) -> None:
    pattern = USAGE_PATTERNS["MoreNL"]
    print(f"Workload pattern: {pattern.name} "
          f"(mostly NL traffic, plus CK and MD) on the Lab scenario")
    print(f"{'scheduler':<12}{'kind':<6}{'throughput (1/s)':<18}"
          f"{'request latency (s)':<20}")
    for scheduler in ("FCFS", "HigherWFQ"):
        run = SimulationRun(lab_scenario(), pattern.specs, scheduler=scheduler,
                            seed=17, attempt_batch_size=100)
        summary = run.run(simulated_seconds).summary
        for kind in ("NL", "CK", "MD"):
            throughput = summary.throughput.get(kind, 0.0)
            latency = summary.average_request_latency.get(kind)
            latency_text = f"{latency:.3f}" if latency is not None else "-"
            print(f"{scheduler:<12}{kind:<6}{throughput:<18.2f}{latency_text:<20}")
    print("\nStrict NL priority (HigherWFQ) keeps NL latency low; FCFS lets "
          "large MD requests delay it.")


if __name__ == "__main__":
    main()
