#!/usr/bin/env python3
"""Run a scenario grid through the parallel sweep engine.

By default this runs a 12-scenario single-kind sub-grid of the paper's
Section-6.2 long runs over a 2-worker pool with a resume cache, then prints a
per-scenario metrics table.  The full 169-scenario paper grid is one flag
away (expect a long run at realistic durations):

    python examples/sweep_grid.py                       # quick sub-grid
    python examples/sweep_grid.py --workers 4 --duration 1.0
    python examples/sweep_grid.py --paper-grid --duration 120 --out grid.json

Interrupt a sweep and re-run the same command: cached scenarios are skipped
and only the remainder is simulated.  Results are deterministic in the master
seed regardless of worker count.
"""

from __future__ import annotations

import argparse
import time

from repro.runtime import SweepRunner, paper_grid, single_kind_scenarios


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hardware", default="Lab",
                        choices=("Lab", "QL2020"),
                        help="hardware scenario for the sub-grid")
    parser.add_argument("--duration", type=float, default=0.4,
                        help="simulated seconds per scenario")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes")
    parser.add_argument("--seed", type=int, default=12345,
                        help="master seed (per-scenario seeds are derived)")
    parser.add_argument("--cache-dir", default=".sweep_cache",
                        help="resume cache directory ('' disables caching)")
    parser.add_argument("--paper-grid", action="store_true",
                        help="run the full 169-scenario paper grid")
    parser.add_argument("--batch", type=int, default=50,
                        help="MHP attempt batch size (larger = faster)")
    parser.add_argument("--backend", default=None,
                        help="physics backend: density (exact, default), "
                             "analytic (closed-form fast path) or "
                             "analytic-exact; falls back to $REPRO_BACKEND")
    parser.add_argument("--engine", default=None,
                        help="event engine: heap (reference, default), "
                             "calendar (bucket queue, hot-path fast path) "
                             "or ladder; falls back to $REPRO_ENGINE")
    parser.add_argument("--out", default="",
                        help="write the sweep result JSON to this path")
    return parser


def main() -> None:
    args = build_parser().parse_args()
    if args.paper_grid:
        specs = paper_grid(attempt_batch_size=args.batch,
                           backend=args.backend, engine=args.engine)
    else:
        specs = single_kind_scenarios(
            args.hardware, kinds=("NL", "CK", "MD"), loads=("Low", "High"),
            max_pairs_options=(1,), origins=("A", "B"),
            include_md_k255=False, attempt_batch_size=args.batch,
            backend=args.backend, engine=args.engine)
    print(f"Sweeping {len(specs)} scenarios x {args.duration:.2f} simulated "
          f"seconds on {args.workers} worker(s), master seed {args.seed}, "
          f"backend {specs[0].backend_name()}, "
          f"engine {specs[0].engine_name()}")

    done = 0

    def progress(outcome) -> None:
        nonlocal done
        done += 1
        tag = "cached" if outcome.from_cache else (
            "ok" if outcome.ok else "FAILED")
        print(f"  [{done:>3}/{len(specs)}] {outcome.scenario_name:<40} {tag}")

    runner = SweepRunner(specs, duration=args.duration,
                         master_seed=args.seed, workers=args.workers,
                         cache_dir=args.cache_dir or None,
                         on_outcome=progress)
    started = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - started

    print(f"\n{'scenario':<40}{'status':<8}{'pairs':>6}{'T (1/s)':>9}"
          f"{'avg F':>7}{'RL (s)':>8}")
    for outcome in result.outcomes:
        if not outcome.ok:
            print(f"{outcome.scenario_name:<40}{'error':<8}")
            continue
        summary = outcome.summary
        pairs = sum(summary.pairs_delivered.values())
        fidelities = summary.average_fidelity.values()
        fidelity = (f"{sum(fidelities) / len(fidelities):.3f}"
                    if fidelities else "-")
        latencies = summary.average_request_latency.values()
        latency = (f"{sum(latencies) / len(latencies):.3f}"
                   if latencies else "-")
        print(f"{outcome.scenario_name:<40}{'ok':<8}{pairs:>6}"
              f"{summary.throughput_total():>9.2f}{fidelity:>7}{latency:>8}")

    cached = sum(outcome.from_cache for outcome in result.outcomes)
    print(f"\n{len(result.completed)} ok / {len(result.failed)} failed / "
          f"{cached} from cache in {wall:.1f}s wall time")
    if args.cache_dir:
        # Distinguishes plain misses from entries that exist but were
        # skipped (different CACHE_VERSION, different backend, corrupt),
        # with the reason per scenario.
        print(runner.cache_report().describe())
    if args.out:
        result.save(args.out)
        print(f"sweep result written to {args.out}")


if __name__ == "__main__":
    main()
