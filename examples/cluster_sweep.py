#!/usr/bin/env python3
"""Run a scenario grid as a sharded cluster sweep with work stealing.

The coordinator partitions the grid into shards with a cost model
(auto-loaded from a previously recorded ``cost_model.json`` when present,
or calibrated from an explicit prior sweep result via ``--calibrate-from``),
writes the plan into ``--cluster-dir``, and runs local worker processes
through the same filesystem protocol real multi-machine deployments use.
Results stream through per-worker sinks (JSONL by default; try ``--sink
columnar`` for the append-only per-field segments) and merge into a
canonical sweep result that is field-for-field identical to a serial
``SweepRunner`` run; the merged wall-clocks are recorded back into the cost
model so the next sweep plans better:

    python examples/cluster_sweep.py                        # quick sub-grid
    python examples/cluster_sweep.py --shards 4 --workers 4 --sink columnar
    python examples/cluster_sweep.py --paper-grid --backend analytic \
        --duration 30 --shards 8 --out grid.json

Multi-machine over a shared filesystem: run this once with ``--plan-only``
against a shared directory, then start one worker per machine with

    python -m repro.cluster.worker --cluster-dir /shared/dir

and finally re-invoke with ``--merge-only`` to collect the result.  For
clusters *without* a shared filesystem, use the TCP coordinator instead
(see the README's cluster-architecture section):

    python -m repro.cluster.serve --port 7766 --paper-grid ...
    python -m repro.cluster.worker --coordinator <host>:7766

Re-planning the same grid into the same directory resumes it (recalibrated
shard costs do not make it a "different" sweep); planning a genuinely
different sweep there needs ``--reset`` or a fresh ``--cluster-dir``.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.cluster import ClusterCoordinator, RecordedCostModel
from repro.runtime import SweepResult, paper_grid, single_kind_scenarios


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hardware", default="Lab",
                        choices=("Lab", "QL2020"),
                        help="hardware scenario for the sub-grid")
    parser.add_argument("--duration", type=float, default=0.4,
                        help="simulated seconds per scenario")
    parser.add_argument("--shards", type=int, default=3,
                        help="number of shards to plan")
    parser.add_argument("--workers", type=int, default=None,
                        help="local worker processes (default: one per shard)")
    parser.add_argument("--seed", type=int, default=12345,
                        help="master seed (per-scenario seeds are derived)")
    parser.add_argument("--cluster-dir", default=".sweep_cluster",
                        help="shared directory for plan/leases/results")
    parser.add_argument("--sink", default="jsonl",
                        choices=("json", "jsonl", "columnar"),
                        help="result sink format workers write through")
    parser.add_argument("--cache-dir", default="",
                        help="shared resume-cache directory ('' disables)")
    parser.add_argument("--calibrate-from", default="",
                        help="prior sweep-result JSON to calibrate the "
                             "cost model from")
    parser.add_argument("--paper-grid", action="store_true",
                        help="run the full 169-scenario paper grid")
    parser.add_argument("--batch", type=int, default=50,
                        help="MHP attempt batch size (larger = faster)")
    parser.add_argument("--backend", default=None,
                        help="physics backend: density (exact, default), "
                             "analytic (closed-form fast path) or "
                             "analytic-exact; falls back to $REPRO_BACKEND")
    parser.add_argument("--reset", action="store_true",
                        help="discard state a previous (different) sweep "
                             "left in --cluster-dir")
    parser.add_argument("--plan-only", action="store_true",
                        help="write plan.json and exit (workers run "
                             "elsewhere via python -m repro.cluster.worker)")
    parser.add_argument("--merge-only", action="store_true",
                        help="skip execution and merge existing parts")
    parser.add_argument("--out", default="",
                        help="write the merged sweep result JSON here")
    return parser


def main() -> None:
    args = build_parser().parse_args()
    if args.paper_grid:
        specs = paper_grid(attempt_batch_size=args.batch,
                           backend=args.backend)
    else:
        specs = single_kind_scenarios(
            args.hardware, kinds=("NL", "CK", "MD"), loads=("Low", "High"),
            max_pairs_options=(1,), origins=("A", "B"),
            include_md_k255=False, attempt_batch_size=args.batch,
            backend=args.backend)

    cost_model = None
    if args.calibrate_from:
        prior = SweepResult.load(args.calibrate_from)
        cost_model = RecordedCostModel.from_results([prior])
        print(f"cost model calibrated from {args.calibrate_from}: "
              f"{cost_model.observations()} observation(s)")

    coordinator = ClusterCoordinator(
        specs, args.duration, args.cluster_dir, master_seed=args.seed,
        num_shards=args.shards, sink=args.sink, cost_model=cost_model,
        cache_dir=args.cache_dir or None)
    if cost_model is None:
        auto = coordinator.effective_cost_model()
        if auto is not None:
            print(f"cost model auto-loaded from "
                  f"{coordinator.cost_model_path()}: "
                  f"{auto.observations()} observation(s)")
    plan = coordinator.plan()
    print(f"Planned {len(specs)} scenarios x {args.duration:.2f} simulated "
          f"seconds into {plan.num_shards} shard(s), backend "
          f"{specs[0].backend_name()}, sink {args.sink}")
    for shard_id, (shard, cost) in enumerate(zip(plan.shards,
                                                 plan.shard_costs)):
        print(f"  shard {shard_id}: {len(shard):>3} scenario(s), "
              f"estimated cost {cost:8.2f}")

    if args.plan_only:
        path = coordinator.write_plan(reset=args.reset)
        print(f"plan written to {path}; start workers with:\n"
              f"  python -m repro.cluster.worker --cluster-dir "
              f"{args.cluster_dir}")
        return

    started = time.perf_counter()
    if args.merge_only:
        result = coordinator.merge()
        recorded = coordinator.record_costs(result)
        if recorded is not None:
            print(f"cost model updated at {recorded}")
    else:
        # run_local records the merged wall-clocks into the cost model.
        result = coordinator.run_local(workers=args.workers,
                                       reset=args.reset)
    wall = time.perf_counter() - started

    print(f"\n{'scenario':<40}{'status':<8}{'pairs':>6}{'T (1/s)':>9}")
    for outcome in result.outcomes[:20]:
        if not outcome.ok:
            print(f"{outcome.scenario_name:<40}{'error':<8}")
            continue
        pairs = sum(outcome.summary.pairs_delivered.values())
        print(f"{outcome.scenario_name:<40}{'ok':<8}{pairs:>6}"
              f"{outcome.summary.throughput_total():>9.2f}")
    if len(result.outcomes) > 20:
        print(f"... ({len(result.outcomes) - 20} more)")

    status = coordinator.status()
    print(f"\n{len(result.completed)} ok / {len(result.failed)} failed "
          f"across {status['scenarios']} scenarios in {wall:.1f}s wall time")
    if args.out:
        result.save(args.out)
        print(f"merged sweep result written to {args.out}")


if __name__ == "__main__":
    main()
