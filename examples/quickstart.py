#!/usr/bin/env python3
"""Quickstart: request one entangled pair over the link layer.

Builds the Lab scenario network (two NV nodes, a heralding midpoint, the MHP
and EGP protocol stack), submits a single create-and-keep CREATE request from
node A and prints the resulting OK messages at both nodes.

Run with::

    python examples/quickstart.py

Set ``REPRO_BACKEND=analytic`` to run the same example on the closed-form
physics fast path (see ``repro.backends``).
"""

from __future__ import annotations

from repro.core.messages import EntanglementRequest, Priority, RequestType
from repro.hardware import lab_scenario
from repro.network import LinkLayerNetwork
from repro.quantum.states import BellIndex


def main() -> None:
    network = LinkLayerNetwork(lab_scenario(), scheduler="FCFS", seed=42,
                               attempt_batch_size=50)

    delivered = []
    for name, node in network.nodes.items():
        node.egp.add_ok_listener(lambda ok, n=name: delivered.append((n, ok)))
        node.egp.add_error_listener(
            lambda err, n=name: print(f"[{n}] error: {err.error.value} "
                                      f"({err.detail})"))

    request = EntanglementRequest(
        remote_node_id="B",
        request_type=RequestType.KEEP,
        number=1,
        consecutive=True,
        priority=Priority.CK,
        min_fidelity=0.64,
    )
    print("Submitting CREATE request at node A "
          f"(create_id={request.create_id}, F_min={request.min_fidelity}) ...")
    network.node_a.create(request)

    network.run(duration=2.0)

    if not delivered:
        print("No entanglement delivered within the simulated window.")
        return
    for node_name, ok in delivered:
        print(f"[{node_name}] OK: entanglement_id={tuple(ok.entanglement_id)} "
              f"qubit={ok.logical_qubit_id} goodness={ok.goodness:.3f} "
              f"delivered_at={ok.goodness_time * 1e3:.2f} ms")
    pair = delivered[0][1].pair
    print(f"True fidelity of the delivered pair to |Psi+>: "
          f"{pair.fidelity(BellIndex.PSI_PLUS):.3f}")


if __name__ == "__main__":
    main()
