#!/usr/bin/env python3
"""Qubit transmission (SQ use case) by teleporting over delivered K pairs.

Requests several create-and-keep pairs on the Lab scenario and teleports a
data qubit over each one as it is delivered, showing how the link-layer pair
fidelity bounds the teleportation fidelity.

Run with::

    python examples/teleportation_over_link_layer.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.teleportation import teleport
from repro.core.messages import EntanglementRequest, Priority, RequestType
from repro.hardware import lab_scenario
from repro.network import LinkLayerNetwork
from repro.quantum.states import BellIndex


def main(number_of_pairs: int = 5) -> None:
    network = LinkLayerNetwork(lab_scenario(), scheduler="FCFS", seed=99,
                               attempt_batch_size=50)
    rng = np.random.default_rng(5)
    data_qubit = np.array([np.cos(0.3), np.exp(0.4j) * np.sin(0.3)],
                          dtype=complex)

    teleported = []

    def on_ok(node_name, ok):
        if node_name != "A" or ok.logical_qubit_id is None:
            return
        pair = ok.pair
        result = teleport(data_qubit, pair, rng=rng)
        teleported.append((ok, pair.fidelity(BellIndex.PSI_PLUS),
                           result.fidelity))
        # Hand the memory back to the link layer for the next pair.
        network.nodes["A"].egp.release_delivered_pair(ok.logical_qubit_id)

    def on_ok_b(ok):
        if ok.logical_qubit_id is not None:
            network.nodes["B"].egp.release_delivered_pair(ok.logical_qubit_id)

    network.node_a.egp.add_ok_listener(lambda ok: on_ok("A", ok))
    network.node_b.egp.add_ok_listener(on_ok_b)

    request = EntanglementRequest(
        remote_node_id="B",
        request_type=RequestType.KEEP,
        number=number_of_pairs,
        consecutive=True,
        priority=Priority.CK,
        min_fidelity=0.64,
    )
    print(f"Requesting {number_of_pairs} create-and-keep pairs and "
          f"teleporting a qubit over each ...")
    network.node_a.create(request)
    network.run(duration=3.0)

    if not teleported:
        print("No pairs delivered in the simulated window.")
        return
    print(f"{'pair':<6}{'EPR fidelity':<15}{'teleport fidelity':<18}")
    for index, (ok, pair_fidelity, tele_fidelity) in enumerate(teleported, 1):
        print(f"{index:<6}{pair_fidelity:<15.3f}{tele_fidelity:<18.3f}")
    average = np.mean([f for _, _, f in teleported])
    print(f"Average teleportation fidelity: {average:.3f} "
          f"(bounded by the link-layer pair quality)")


if __name__ == "__main__":
    main()
