#!/usr/bin/env python3
"""Run a seeded fault-injection sweep and check it merges identical to serial.

The protocol-hardening acceptance check, as a CLI: three workers execute a
scenario grid through :class:`~repro.cluster.faults.FaultyTransport`
wrappers that drop, duplicate, reset, delay and stale-replay their protocol
operations, one worker crashes mid-scenario at a scheduled claim, and the
worker clocks are skewed ±2 simulated seconds — then the merged result is
compared field-for-field against a serial ``SweepRunner`` run of the same
grid.  Exit status 0 means identical; on a mismatch the failing seed and
the consumed fault schedules are printed and written to
``--schedule-out`` so the run can be replayed exactly:

    python examples/fault_injection_sweep.py --seed 20260808
    python examples/fault_injection_sweep.py --transport socket --seed 7
    python examples/fault_injection_sweep.py --transport both \
        --seed $RANDOM --schedule-out fault_schedule.json

Every fault decision is a pure function of ``(seed, operation, nth call)``,
so a failure reproduces from the seed alone regardless of timing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster import (
    ClusterCoordinator,
    ClusterWorker,
    FaultSchedule,
    FaultyTransport,
    InjectedWorkerCrash,
    TransportError,
)
from repro.cluster.coordinator import done_path
from repro.cluster.serve import ClusterCoordinatorServer
from repro.runtime import SweepRunner, single_kind_scenarios


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=20260808,
                        help="fault-schedule seed (worker schedules derive "
                             "from it); the one number needed to replay")
    parser.add_argument("--transport", default="both",
                        choices=("filesystem", "socket", "both"),
                        help="transport(s) to run the faulted sweep over")
    parser.add_argument("--backend", default="analytic",
                        help="physics backend for the grid")
    parser.add_argument("--duration", type=float, default=0.05,
                        help="simulated seconds per scenario")
    parser.add_argument("--master-seed", type=int, default=77,
                        help="sweep master seed (scenario seeds derive "
                             "from it)")
    parser.add_argument("--drop", type=float, default=0.1,
                        help="per-delivery drop probability")
    parser.add_argument("--reset", type=float, default=0.1,
                        help="per-delivery connection-reset probability")
    parser.add_argument("--duplicate", type=float, default=0.1,
                        help="per-delivery duplication probability")
    parser.add_argument("--replay", type=float, default=0.05,
                        help="per-delivery stale-replay probability")
    parser.add_argument("--skew", type=float, default=2.0,
                        help="simulated clock skew in seconds (worker 1 "
                             "runs ahead, worker 2 behind)")
    parser.add_argument("--schedule-out", default="",
                        help="write the consumed fault schedules (JSON) "
                             "here — always on mismatch, also on success "
                             "when set")
    return parser


def worker_schedules(args: argparse.Namespace) -> list[FaultSchedule]:
    """Three derived schedules: a crasher, a chaotic peer, a skewed peer."""
    return [
        FaultSchedule(seed=args.seed, drop=args.drop,
                      duplicate=args.duplicate, crash_op="claim",
                      crash_call=2, crash_mode="after",
                      clock_skew=args.skew),
        FaultSchedule(seed=args.seed + 1, drop=args.drop, reset=args.reset,
                      duplicate=args.duplicate, replay=args.replay,
                      delay=0.2, delay_seconds=0.001, clock_skew=args.skew),
        FaultSchedule(seed=args.seed + 2, drop=args.drop, reset=args.reset,
                      duplicate=args.duplicate, replay=args.replay,
                      clock_skew=-args.skew),
    ]


def backdate_stale_leases(coordinator: ClusterCoordinator,
                          seconds: float = 3600.0) -> int:
    """Age every unfinished lease past staleness (a crashed worker's lease
    would otherwise only be reclaimed after the real lease timeout)."""
    past = time.time() - seconds
    aged = 0
    for lease in (coordinator.cluster_dir / "tasks").glob("*.lease"):
        if not done_path(coordinator.cluster_dir, int(lease.stem)).exists():
            os.utime(lease, (past, past))
            aged += 1
    return aged


def run_faulted_sweep(specs, args, transport_kind: str, work_dir: Path):
    """Drive three faulted workers over one transport; returns the merged
    result and the consumed schedules."""
    coordinator = ClusterCoordinator(
        specs, args.duration, work_dir / f"cluster-{transport_kind}",
        master_seed=args.master_seed, num_shards=3, lease_timeout=120.0,
        clock_skew_tolerance=max(5.0, args.skew + 1.0))
    coordinator.write_plan()
    server = None
    if transport_kind == "socket":
        server = ClusterCoordinatorServer(coordinator)
        server.start_background()

    def make_transport(schedule):
        if transport_kind == "socket":
            return FaultyTransport.over_socket(server.address, schedule,
                                               retry_delay=0.0)
        return FaultyTransport.over_filesystem(coordinator.cluster_dir,
                                               schedule, retry_delay=0.0)

    schedules = worker_schedules(args)
    workers = [ClusterWorker(make_transport(schedule), f"w{i}", shard=i,
                             cache_dir=None)
               for i, schedule in enumerate(schedules)]
    crashed = set()
    try:
        for _ in range(2000):
            progressed = False
            for position, worker in enumerate(workers):
                if position in crashed:
                    continue
                try:
                    if worker.step() is not None:
                        progressed = True
                except InjectedWorkerCrash as crash:
                    print(f"[faults] worker {position} died: {crash}")
                    crashed.add(position)
                    progressed = True
                except TransportError:
                    progressed = True  # injected outage burst; retry
            if coordinator.is_complete():
                break
            if not progressed and backdate_stale_leases(coordinator) == 0:
                raise RuntimeError("no progress and no stale lease: "
                                   "protocol deadlock")
        else:
            raise RuntimeError("faulted sweep did not complete")
    finally:
        for worker in workers:
            worker.close()
        if server is not None:
            server.stop()

    injected = sum(len(schedule.injected) for schedule in schedules)
    print(f"[faults] {transport_kind}: {injected} fault(s) injected, "
          f"{len(crashed)} worker crash(es)")
    return coordinator.merge(), schedules


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    specs = single_kind_scenarios(
        "Lab", kinds=("NL", "CK", "MD"), loads=("Low", "High"),
        max_pairs_options=(1, 3), origins=("A", "B"),
        include_md_k255=False, attempt_batch_size=40, backend=args.backend)
    print(f"[faults] seed {args.seed}: {len(specs)} scenarios over "
          f"{args.transport} transport(s), skew ±{args.skew:.1f}s")
    serial = SweepRunner(specs, args.duration,
                         master_seed=args.master_seed).run()

    kinds = (["filesystem", "socket"] if args.transport == "both"
             else [args.transport])
    failures = []
    consumed = {}
    with tempfile.TemporaryDirectory(prefix="fault-sweep-") as tmp:
        for kind in kinds:
            merged, schedules = run_faulted_sweep(specs, args, kind,
                                                  Path(tmp))
            consumed[kind] = [schedule.to_dict() for schedule in schedules]
            if merged == serial:
                print(f"[faults] {kind}: merged result identical to serial "
                      f"({len(merged.outcomes)} outcomes) -- OK")
            else:
                failures.append(kind)
                print(f"[faults] {kind}: MISMATCH against serial sweep",
                      file=sys.stderr)

    if args.schedule_out or failures:
        out = Path(args.schedule_out or "fault_schedule.json")
        out.write_text(json.dumps(
            {"seed": args.seed, "transports": kinds, "failures": failures,
             "schedules": consumed}, indent=2))
        print(f"[faults] consumed schedules written to {out}")
    if failures:
        print(f"[faults] FAILED on {failures}; replay with "
              f"--seed {args.seed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
