#!/usr/bin/env python3
"""Quantum key distribution over the measure-directly (MD) service.

The MD use case of the paper (Section 3.3) targets applications such as QKD
that consume many measured pairs and post-process the classical outcomes.
This example submits MD CREATE requests on the QL2020 scenario, collects the
measurement records at both nodes, sifts them, estimates the QBER and reports
the asymptotic secret-key yield.

Run with::

    python examples/qkd_over_md_service.py
"""

from __future__ import annotations

from repro.apps.qkd import QKDSession
from repro.core.messages import EntanglementRequest, Priority, RequestType
from repro.hardware import ql2020_scenario
from repro.network import LinkLayerNetwork


def main(simulated_seconds: float = 20.0, pairs_per_request: int = 25) -> None:
    network = LinkLayerNetwork(ql2020_scenario(), scheduler="FCFS", seed=7,
                               attempt_batch_size=100)
    session = QKDSession(key_basis="Z")
    session.attach(network)

    request = EntanglementRequest(
        remote_node_id="B",
        request_type=RequestType.MEASURE,
        number=pairs_per_request,
        consecutive=True,
        priority=Priority.MD,
        min_fidelity=0.64,
        purpose_id=1,
    )
    print(f"Submitting an MD CREATE request for {pairs_per_request} pairs "
          f"on the QL2020 link ...")
    network.node_a.create(request)
    network.run(duration=simulated_seconds)

    stats = session.statistics()
    print(f"Raw measured pairs      : {stats.raw_pairs}")
    print(f"Sifted key bits (Z)     : {stats.sifted_bits}")
    if stats.qber is not None:
        print(f"QBER (key basis)        : {stats.qber:.3f}")
    for basis, qber in sorted(stats.qber_by_basis.items()):
        print(f"  QBER in {basis}             : {qber:.3f}")
    print(f"Asymptotic key fraction : {stats.key_fraction:.3f}")
    print(f"Secret key bits         : {stats.secret_key_bits:.1f}")
    if stats.key_fraction == 0:
        print("QBER too high for key generation — exactly the trade-off the "
              "paper's F_min parameter controls.")


if __name__ == "__main__":
    main()
